//! The paper's evaluation workload end-to-end: a 3×3 sliding median over
//! an integer grid, run through all three pipeline configurations
//! (§III-E / §IV-D), printing the byte accounting each produces.
//!
//! ```sh
//! cargo run --release --example sliding_median [grid-side]
//! ```

use scihadoop::compress::DeflateCodec;
use scihadoop::core::transform::TransformCodec;
use scihadoop::grid::{Shape, Variable};
use scihadoop::mapreduce::{Counter, Framing, JobConfig};
use scihadoop::queries::median::{SlidingMedian, SlidingMedianVariant};
use scihadoop::queries::KeyLayout;
use std::sync::Arc;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    let var =
        Variable::random_i32("grid", Shape::new(vec![n, n]), 1_000_000, 42).expect("valid grid");
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let base = JobConfig::default()
        .with_reducers(5)
        .with_slots(10, 5)
        .with_framing(Framing::SequenceFile);

    println!("sliding 3x3 median over a {n}x{n} grid ({} cells)\n", n * n);
    println!(
        "{:<26} {:>14} {:>14} {:>12} {:>12}",
        "variant", "raw bytes", "materialized", "records", "splits"
    );

    let mut reference = None;
    for (label, variant) in [
        ("plain keys (baseline)", SlidingMedianVariant::Plain),
        (
            "transform+deflate codec",
            SlidingMedianVariant::PlainWithCodec(Arc::new(TransformCodec::with_defaults(
                Arc::new(DeflateCodec::new()),
            ))),
        ),
        (
            "key aggregation",
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 64 << 20,
            },
        ),
    ] {
        let mut q = SlidingMedian::new(layout.clone(), variant);
        q.num_splits = 16;
        q.base_config = base.clone();
        let run = q.run(&var).expect("query runs");

        // Every variant must agree on every median.
        match &reference {
            None => reference = Some(run.medians.clone()),
            Some(r) => assert_eq!(&run.medians, r, "{label} disagrees with baseline"),
        }

        let c = &run.result.counters;
        println!(
            "{:<26} {:>14} {:>14} {:>12} {:>12}",
            label,
            c.get(Counter::MapOutputBytes),
            c.get(Counter::MapOutputMaterializedBytes),
            c.get(Counter::MapOutputRecords),
            c.get(Counter::RouteSplitRecords) + c.get(Counter::SortSplitRecords),
        );
    }
    println!("\nall three variants produced identical medians ✓");
}

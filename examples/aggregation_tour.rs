//! Figures 5–7 reproduced: space-filling-curve numbering, range
//! collapsing, routing splits, and overlap splits, on grids small enough
//! to print.
//!
//! ```sh
//! cargo run --release --example aggregation_tour
//! ```

use scihadoop::core::aggregate::{
    group_equal, overlap_split, route_split, AggregateKey, AggregateRecord, Aggregator,
    RangePartitioner,
};
use scihadoop::grid::Coord;
use scihadoop::sfc::{Curve, CurveRun, ZOrderCurve};

fn main() {
    let curve = ZOrderCurve::with_bits(2, 2);

    // --- Fig. 6: cells numbered by the curve, region collapsed to ranges.
    println!("Z-order numbering of a 4x4 grid (Fig. 6):\n");
    for x in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|y| format!("{:>2}", curve.index_of(&[x, y]).unwrap()))
            .collect();
        println!("   {}", row.join(" "));
    }

    // The shaded region of Fig. 6 — its indices collapse to
    // "6-7, 9-10, 13" on the curve.
    let region = [[1u32, 2], [1, 3], [2, 1], [3, 0], [2, 3]];
    let mut agg = Aggregator::new(curve.clone(), 1 << 20);
    for c in region {
        agg.push(&Coord::new(vec![c[0] as i32, c[1] as i32]), &[0u8])
            .unwrap();
    }
    let runs: Vec<String> = agg
        .flush()
        .iter()
        .map(|r| {
            if r.key.run.start == r.key.run.end {
                format!("{}", r.key.run.start)
            } else {
                format!("{}-{}", r.key.run.start, r.key.run.end)
            }
        })
        .collect();
    println!("\nregion collapses to curve ranges: {}\n", runs.join(", "));

    // --- §IV-B case 1: routing split at partition boundaries.
    let rec = AggregateRecord::new(
        AggregateKey::new(0, CurveRun { start: 3, end: 12 }),
        (3..=12u8).collect(),
        1,
    )
    .unwrap();
    let partitioner = RangePartitioner::uniform(4, 16);
    println!("routing the aggregate key [3,12] to 4 reducers (4 cells each):");
    for (p, piece) in route_split(&rec, &partitioner, 1) {
        println!(
            "   reducer {p} gets [{}, {}] ({} cells)",
            piece.key.run.start,
            piece.key.run.end,
            piece.key.cell_count()
        );
    }

    // --- §IV-B case 2 / Fig. 7: overlap splitting at the reducer.
    let a = AggregateRecord::new(
        AggregateKey::new(0, CurveRun { start: 0, end: 9 }),
        vec![b'a'; 10],
        1,
    )
    .unwrap();
    let b = AggregateRecord::new(
        AggregateKey::new(0, CurveRun { start: 5, end: 14 }),
        vec![b'b'; 10],
        1,
    )
    .unwrap();
    println!("\noverlapping keys [0,9] and [5,14] split on overlap boundaries (Fig. 7):");
    let pieces = overlap_split(vec![a, b], 1);
    for piece in &pieces {
        println!(
            "   [{}, {}] from mapper '{}'",
            piece.key.run.start, piece.key.run.end, piece.values[0] as char
        );
    }
    println!("\nafter grouping, equal ranges reduce together:");
    for (key, values) in group_equal(pieces) {
        println!(
            "   [{}, {}]: {} contribution(s)",
            key.run.start,
            key.run.end,
            values.len()
        );
    }
}

//! Fig. 2 reproduced: dump the serialized key stream of a `windspeed1`
//! grid walk, highlight a detected linear sequence, and show what the
//! transform does to the stream.
//!
//! ```sh
//! cargo run --release --example inspect_stream
//! ```

use scihadoop::core::transform::{detect_sequences, StridePredictor, TransformConfig};
use scihadoop::grid::{Coord, GridKey, VariableId};

fn hexdump(data: &[u8], rows: usize, highlight: impl Fn(usize) -> bool) {
    for r in 0..rows {
        let base = r * 16;
        if base >= data.len() {
            break;
        }
        let line = &data[base..(base + 16).min(data.len())];
        let hex: Vec<String> = line
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if highlight(base + i) {
                    format!("[{b:02x}]")
                } else {
                    format!(" {b:02x} ")
                }
            })
            .collect();
        let ascii: String = line
            .iter()
            .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
            .collect();
        println!("{base:06x}  {}  {ascii}", hex.join(""));
    }
}

fn main() {
    // Keys exactly as Hadoop would serialize them: Text("windspeed1") +
    // three big-endian i32 coordinates, walking a grid row-major.
    let mut stream = Vec::new();
    for x in 0..4i32 {
        for y in 0..4i32 {
            for z in 0..20i32 {
                GridKey::new(
                    VariableId::Name("windspeed1".into()),
                    Coord::new(vec![x, y, z]),
                )
                .write(&mut stream);
            }
        }
    }

    println!(
        "serialized key stream ({} bytes, 23 bytes/key):\n",
        stream.len()
    );

    // Detect the strongest linear sequences (the Fig. 2 caption's
    // δ=0x0a, s=47, φ=34 was for their 47-byte records; ours are 23).
    let reports = detect_sequences(&stream, 64, 4000);
    let best = reports
        .iter()
        .find(|r| r.delta != 0)
        .expect("a changing byte sequence exists");
    println!(
        "strongest changing sequence: delta=0x{:02x}, stride={}, phase={} (support {})\n",
        best.delta, best.stride, best.phase, best.support
    );

    let (s, phi) = (best.stride, best.phase);
    hexdump(&stream, 12, |i| i % s == phi);

    // What the transform leaves behind.
    let mut predictor = StridePredictor::new(TransformConfig::default());
    let transformed = predictor.forward(&stream);
    let zeros = transformed.iter().filter(|&&b| b == 0).count();
    println!(
        "\nafter the stride-predictive transform: {zeros}/{} bytes are zero ({:.1}%)",
        transformed.len(),
        100.0 * zeros as f64 / transformed.len() as f64
    );
    println!("\ntransformed stream (same offsets):\n");
    hexdump(&transformed, 12, |_| false);

    // Which strides the adaptive detector ended up trusting.
    println!("\ntop strides after adaptation:");
    for r in predictor.stride_reports().into_iter().take(4) {
        println!(
            "   stride {:>3}  active={}  hit rate {:>5.1}%  best run {}",
            r.stride,
            r.active,
            100.0 * r.hit_rate(),
            r.best_run
        );
    }
}

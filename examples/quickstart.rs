//! Quickstart: the two key-compression approaches in twenty lines each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scihadoop::compress::{Codec, DeflateCodec};
use scihadoop::core::aggregate::Aggregator;
use scihadoop::core::transform::TransformCodec;
use scihadoop::grid::{Coord, GridWalker, RowMajorWalker};
use scihadoop::sfc::ZOrderCurve;
use std::sync::Arc;

fn main() {
    // -- §III: the stride-predictive transform as a codec ----------------
    // A mapper walking a 40³ grid serializes 768,000 bytes of keys.
    let keys = RowMajorWalker::cube(40, 3).key_stream_be();

    let deflate = DeflateCodec::new();
    let transform = TransformCodec::with_defaults(Arc::new(DeflateCodec::new()));

    let plain = deflate.compress(&keys);
    let transformed = transform.compress(&keys);
    assert_eq!(transform.decompress(&transformed).unwrap(), keys);

    println!("key stream:         {:>9} bytes", keys.len());
    println!("deflate:            {:>9} bytes", plain.len());
    println!(
        "transform+deflate:  {:>9} bytes  ({}x better than deflate alone)",
        transformed.len(),
        plain.len() / transformed.len().max(1)
    );

    // -- §IV: key aggregation over a space-filling curve ------------------
    // 4096 per-cell keys collapse into a handful of Z-order ranges.
    let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, 6), 1 << 20);
    for x in 0..64 {
        for y in 0..64 {
            agg.push(&Coord::new(vec![x, y]), &(x * 64 + y).to_be_bytes())
                .unwrap();
        }
    }
    let records = agg.flush();
    let simple_key_bytes = 64 * 64 * 8; // two 4-byte ints per key
    let aggregate_key_bytes: usize = records.iter().map(|r| r.key.to_bytes().len()).sum();
    println!();
    println!(
        "simple keys:        {:>9} bytes ({} keys)",
        simple_key_bytes,
        64 * 64
    );
    println!(
        "aggregate keys:     {:>9} bytes ({} range{})",
        aggregate_key_bytes,
        records.len(),
        if records.len() == 1 { "" } else { "s" }
    );
}

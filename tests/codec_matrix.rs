//! Every codec × every framing through the full engine, plus corruption
//! behaviour at the engine boundary.

use scihadoop::compress::{BzipCodec, Codec, CompressError, DeflateCodec, IdentityCodec, RleCodec};
use scihadoop::core::transform::{TransformCodec, TransformConfig};
use scihadoop::mapreduce::{
    Counter, Emit, FnMapper, FnReducer, Framing, InputSplit, Job, JobConfig, KvPair,
};
use std::collections::HashMap;
use std::sync::Arc;

fn codecs() -> Vec<Arc<dyn Codec>> {
    vec![
        Arc::new(IdentityCodec),
        Arc::new(RleCodec),
        Arc::new(DeflateCodec::new()),
        Arc::new(BzipCodec::with_level(1)),
        Arc::new(TransformCodec::with_defaults(Arc::new(DeflateCodec::new()))),
        Arc::new(TransformCodec::with_defaults(Arc::new(
            BzipCodec::with_level(1),
        ))),
        Arc::new(TransformCodec::new(
            TransformConfig::fixed(vec![12]),
            Arc::new(IdentityCodec),
        )),
    ]
}

fn run_count_job(codec: Arc<dyn Codec>, framing: Framing) -> HashMap<Vec<u8>, u64> {
    // Grid-walk shaped keys so compressing codecs have structure to find.
    let pairs: Vec<KvPair> = (0..600u32)
        .map(|i| {
            let key: Vec<u8> = [
                (i / 100).to_be_bytes(),
                ((i / 10) % 10).to_be_bytes(),
                (i % 10).to_be_bytes(),
            ]
            .concat();
            KvPair::new(key, vec![1u8])
        })
        .collect();
    let splits: Vec<InputSplit> = pairs
        .chunks(150)
        .map(|c| InputSplit::new(c.to_vec()))
        .collect();
    let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v)
    }));
    let reducer = Arc::new(FnReducer(
        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            out.emit(k, &(values.len() as u64).to_be_bytes());
        },
    ));
    let result = Job::new(
        JobConfig::default()
            .with_reducers(3)
            .with_codec(codec)
            .with_framing(framing),
    )
    .run(splits, mapper, reducer)
    .unwrap();
    assert!(result.counters.get(Counter::MapOutputMaterializedBytes) > 0);
    result
        .all_outputs()
        .into_iter()
        .map(|p| (p.key, u64::from_be_bytes(p.value.try_into().unwrap())))
        .collect()
}

#[test]
fn every_codec_and_framing_produces_identical_answers() {
    let reference = run_count_job(Arc::new(IdentityCodec), Framing::SequenceFile);
    assert_eq!(reference.len(), 600);
    for codec in codecs() {
        for framing in [Framing::SequenceFile, Framing::IFile] {
            let name = codec.name();
            let got = run_count_job(codec.clone(), framing);
            assert_eq!(got, reference, "codec {name} framing {framing:?}");
        }
    }
}

#[test]
fn transform_codecs_decompress_each_others_rejections() {
    // A stream produced by one transform config must be refused by a
    // codec with a different stride universe instead of corrupting data.
    let a = TransformCodec::new(TransformConfig::adaptive(100), Arc::new(IdentityCodec));
    let b = TransformCodec::new(TransformConfig::adaptive(64), Arc::new(IdentityCodec));
    let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_be_bytes()).collect();
    let z = a.compress(&data);
    assert!(matches!(b.decompress(&z), Err(CompressError::Corrupt(_))));
    assert_eq!(a.decompress(&z).unwrap(), data);
}

#[test]
fn codec_throughput_counters_are_populated() {
    let pairs: Vec<KvPair> = (0..2000u32)
        .map(|i| KvPair::new(i.to_be_bytes().to_vec(), vec![0u8; 16]))
        .collect();
    let splits = vec![InputSplit::new(pairs)];
    let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v)
    }));
    let reducer = Arc::new(FnReducer(
        |k: &[u8], _values: &[&[u8]], out: &mut dyn Emit| out.emit(k, b"done"),
    ));
    let result = Job::new(JobConfig::default().with_codec(Arc::new(DeflateCodec::new())))
        .run(splits, mapper, reducer)
        .unwrap();
    assert!(result.stats.compress_nanos > 0);
    assert!(result.stats.decompress_nanos > 0);
    assert!(result.stats.spill_nanos > 0);
    assert!(result.stats.merge_nanos > 0);
    assert!(
        result.stats.map_output_materialized_bytes < result.stats.map_output_bytes,
        "deflate should compress 16-byte-constant values"
    );
}

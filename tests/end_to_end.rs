//! Cross-crate integration: full queries through the engine, checked
//! against sequential oracles, under every pipeline configuration.

use scihadoop::compress::{BzipCodec, DeflateCodec, RleCodec};
use scihadoop::core::transform::TransformCodec;
use scihadoop::grid::{Shape, Variable};
use scihadoop::mapreduce::{Counter, Framing, JobConfig};
use scihadoop::queries::average::SlidingAverage;
use scihadoop::queries::histogram::Histogram;
use scihadoop::queries::median::{SlidingMedian, SlidingMedianVariant};
use scihadoop::queries::{oracle, KeyLayout};
use std::sync::Arc;

fn grid(n: u32, seed: u64) -> Variable {
    Variable::random_i32("grid", Shape::new(vec![n, n]), 100_000, seed).unwrap()
}

fn layout() -> KeyLayout {
    KeyLayout::Indexed { index: 0, ndims: 2 }
}

#[test]
fn median_all_variants_agree_with_oracle() {
    let var = grid(24, 1);
    let expected = oracle::sliding_median(&var, 3).unwrap();
    let variants: Vec<(&str, SlidingMedianVariant)> = vec![
        ("plain", SlidingMedianVariant::Plain),
        (
            "deflate",
            SlidingMedianVariant::PlainWithCodec(Arc::new(DeflateCodec::new())),
        ),
        (
            "bzip",
            SlidingMedianVariant::PlainWithCodec(Arc::new(BzipCodec::with_level(1))),
        ),
        (
            "transform+deflate",
            SlidingMedianVariant::PlainWithCodec(Arc::new(TransformCodec::with_defaults(
                Arc::new(DeflateCodec::new()),
            ))),
        ),
        (
            "aggregated",
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 1 << 20,
            },
        ),
    ];
    for (name, variant) in variants {
        let run = SlidingMedian::new(layout(), variant).run(&var).unwrap();
        assert_eq!(run.medians, expected, "variant {name}");
    }
}

#[test]
fn median_5x5_window_matches_oracle() {
    let var = grid(16, 2);
    let mut q = SlidingMedian::new(layout(), SlidingMedianVariant::Plain);
    q.window = 5;
    let run = q.run(&var).unwrap();
    assert_eq!(run.medians, oracle::sliding_median(&var, 5).unwrap());
    // Aggregated too (25 slots per cell).
    let mut q = SlidingMedian::new(
        layout(),
        SlidingMedianVariant::Aggregated {
            buffer_bytes: 1 << 20,
        },
    );
    q.window = 5;
    let run = q.run(&var).unwrap();
    assert_eq!(run.medians, oracle::sliding_median(&var, 5).unwrap());
}

#[test]
fn median_3d_grid_matches_oracle() {
    let var = Variable::random_i32("g3", Shape::new(vec![7, 6, 5]), 1000, 3).unwrap();
    let layout = KeyLayout::Indexed { index: 0, ndims: 3 };
    for variant in [
        SlidingMedianVariant::Plain,
        SlidingMedianVariant::Aggregated {
            buffer_bytes: 1 << 20,
        },
    ] {
        let run = SlidingMedian::new(layout.clone(), variant)
            .run(&var)
            .unwrap();
        assert_eq!(run.medians, oracle::sliding_median(&var, 3).unwrap());
    }
}

#[test]
fn named_key_layout_works_end_to_end() {
    // The paper's expensive windspeed1 spelling must still be correct.
    let var = grid(12, 4);
    let named = KeyLayout::Named {
        name: "windspeed1".into(),
        ndims: 2,
    };
    let run = SlidingMedian::new(named, SlidingMedianVariant::Plain)
        .run(&var)
        .unwrap();
    assert_eq!(run.medians, oracle::sliding_median(&var, 3).unwrap());
}

#[test]
fn named_keys_cost_more_than_indexed_keys() {
    // §I: name vs index changes only key bytes, and by 7 per record.
    let var = grid(16, 5);
    let indexed = SlidingMedian::new(layout(), SlidingMedianVariant::Plain)
        .run(&var)
        .unwrap();
    let named = SlidingMedian::new(
        KeyLayout::Named {
            name: "windspeed1".into(),
            ndims: 2,
        },
        SlidingMedianVariant::Plain,
    )
    .run(&var)
    .unwrap();
    let records = indexed.result.counters.get(Counter::MapOutputRecords);
    assert_eq!(
        records,
        named.result.counters.get(Counter::MapOutputRecords)
    );
    let delta = named.result.counters.get(Counter::MapOutputKeyBytes)
        - indexed.result.counters.get(Counter::MapOutputKeyBytes);
    // Indexed 2-D key: 4+8=12 B; named: 1+10+8=19 B; delta 7 B/record.
    assert_eq!(delta, 7 * records);
}

#[test]
fn average_and_histogram_agree_with_oracles() {
    let var = grid(20, 6);
    let avg = SlidingAverage::new(layout(), true).run(&var).unwrap();
    assert_eq!(avg.means, oracle::sliding_mean(&var, 3).unwrap());
    let h = Histogram::new(16, 0, 100_000).run(&var).unwrap();
    assert_eq!(h.counts, oracle::histogram(&var, 16, 0, 100_000).unwrap());
}

#[test]
fn reducer_and_slot_counts_do_not_change_answers() {
    let var = grid(18, 7);
    let expected = oracle::sliding_median(&var, 3).unwrap();
    for (reducers, map_slots, splits) in [(1, 1, 1), (3, 2, 5), (7, 8, 13)] {
        for variant in [
            SlidingMedianVariant::Plain,
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 1 << 18,
            },
        ] {
            let mut q = SlidingMedian::new(layout(), variant);
            q.num_splits = splits;
            q.base_config = JobConfig::default()
                .with_reducers(reducers)
                .with_slots(map_slots, 2);
            let run = q.run(&var).unwrap();
            assert_eq!(
                run.medians, expected,
                "reducers={reducers} slots={map_slots} splits={splits}"
            );
        }
    }
}

#[test]
fn framing_affects_bytes_not_answers() {
    let var = grid(14, 8);
    let expected = oracle::sliding_median(&var, 3).unwrap();
    let mut totals = Vec::new();
    for framing in [Framing::SequenceFile, Framing::IFile] {
        let mut q = SlidingMedian::new(layout(), SlidingMedianVariant::Plain);
        q.base_config = JobConfig::default().with_reducers(2).with_framing(framing);
        let run = q.run(&var).unwrap();
        assert_eq!(run.medians, expected);
        totals.push(run.result.stats.map_output_bytes);
    }
    // SequenceFile framing (6 B/record) costs more than IFile (2 B).
    assert!(totals[0] > totals[1]);
}

#[test]
fn rle_codec_runs_through_the_engine() {
    let var = grid(12, 9);
    let run = SlidingMedian::new(
        layout(),
        SlidingMedianVariant::PlainWithCodec(Arc::new(RleCodec)),
    )
    .run(&var)
    .unwrap();
    assert_eq!(run.medians, oracle::sliding_median(&var, 3).unwrap());
}

#[test]
fn aggregation_reduces_record_count_by_orders_of_magnitude() {
    // The heart of Fig. 8: aggregate records ≪ simple records.
    let var = grid(32, 10);
    let plain = SlidingMedian::new(layout(), SlidingMedianVariant::Plain)
        .run(&var)
        .unwrap();
    let agg = SlidingMedian::new(
        layout(),
        SlidingMedianVariant::Aggregated {
            buffer_bytes: 64 << 20,
        },
    )
    .run(&var)
    .unwrap();
    let plain_records = plain.result.counters.get(Counter::MapOutputRecords);
    let agg_records = agg.result.counters.get(Counter::MapOutputRecords);
    assert!(
        agg_records * 50 < plain_records,
        "{agg_records} aggregate vs {plain_records} simple records"
    );
}

#[test]
fn aggregated_median_works_on_every_curve() {
    use scihadoop::queries::CurveKind;
    let var = grid(20, 11);
    let expected = oracle::sliding_median(&var, 3).unwrap();
    let mut key_bytes = Vec::new();
    for curve in [CurveKind::ZOrder, CurveKind::Hilbert, CurveKind::RowMajor] {
        let mut q = SlidingMedian::new(
            layout(),
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 1 << 20,
            },
        );
        q.curve = curve;
        let run = q.run(&var).unwrap();
        assert_eq!(run.medians, expected, "curve {curve:?}");
        key_bytes.push((curve, run.result.counters.get(Counter::MapOutputKeyBytes)));
    }
    // Hilbert must aggregate at least as well as Z-order on this workload
    // (Moon et al.; fewer runs → fewer aggregate keys → fewer key bytes).
    let get = |k: scihadoop::queries::CurveKind| key_bytes.iter().find(|(c, _)| *c == k).unwrap().1;
    assert!(
        get(CurveKind::Hilbert) <= get(CurveKind::ZOrder),
        "hilbert {} vs z-order {}",
        get(CurveKind::Hilbert),
        get(CurveKind::ZOrder)
    );
}

//! Property-based tests over the core invariants (proptest).

use proptest::collection::vec;
use proptest::prelude::*;
use scihadoop::compress::{BzipCodec, Codec, DeflateCodec, RleCodec};
use scihadoop::core::aggregate::{
    group_equal, overlap_split, route_split, AggregateKey, AggregateRecord, Aggregator,
    RangePartitioner,
};
use scihadoop::core::transform::{StridePredictor, TransformConfig};
use scihadoop::grid::Coord;
use scihadoop::mapreduce::{Emit, FnMapper, FnReducer, InputSplit, Job, JobConfig, KvPair};
use scihadoop::sfc::{Curve, CurveRun, HilbertCurve, RowMajorCurve, ZOrderCurve};
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- codecs ---------------------------------------------------------

    #[test]
    fn deflate_roundtrips(data in vec(any::<u8>(), 0..4096)) {
        let c = DeflateCodec::new();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn bzip_roundtrips(data in vec(any::<u8>(), 0..4096)) {
        let c = BzipCodec::with_level(1);
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrips(data in vec(any::<u8>(), 0..4096)) {
        let c = RleCodec;
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn deflate_rejects_flipped_bits(data in vec(any::<u8>(), 64..512), flip in 16usize..64) {
        let c = DeflateCodec::new();
        let mut z = c.compress(&data);
        let i = flip % z.len();
        z[i] ^= 0x01;
        // Either an error or (if the flip hit dead padding) the original.
        if let Ok(out) = c.decompress(&z) {
            prop_assert_eq!(out, data);
        }
    }

    // ---- the transform --------------------------------------------------

    #[test]
    fn transform_roundtrips_any_bytes(
        data in vec(any::<u8>(), 0..4096),
        max_stride in 1usize..64,
        adaptive in any::<bool>(),
    ) {
        let config = TransformConfig {
            max_stride,
            adaptive,
            ..TransformConfig::default()
        };
        let t = StridePredictor::new(config.clone()).forward(&data);
        prop_assert_eq!(t.len(), data.len());
        let back = StridePredictor::new(config).inverse(&t);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn transform_chunked_equals_oneshot(
        data in vec(any::<u8>(), 1..4096),
        chunk in 1usize..257,
    ) {
        let config = TransformConfig::adaptive(32);
        let one = StridePredictor::new(config.clone()).forward(&data);
        let mut p = StridePredictor::new(config);
        let mut chunked = Vec::new();
        for c in data.chunks(chunk) {
            chunked.extend_from_slice(&p.forward(c));
        }
        prop_assert_eq!(one, chunked);
    }

    // ---- space-filling curves -------------------------------------------

    #[test]
    fn curves_are_bijective(
        coords in vec(0u32..256, 2..4),
    ) {
        let ndims = coords.len();
        let curves: Vec<Box<dyn Curve>> = vec![
            Box::new(ZOrderCurve::with_bits(ndims, 8)),
            Box::new(HilbertCurve::with_bits(ndims, 8)),
            Box::new(RowMajorCurve::with_bits(ndims, 8)),
        ];
        for c in &curves {
            let idx = c.index_of(&coords).unwrap();
            prop_assert_eq!(&c.coords_of(idx).unwrap(), &coords, "curve {}", c.name());
        }
    }

    #[test]
    fn curve_indices_are_distinct(
        a in vec(0u32..64, 2..3),
        b in vec(0u32..64, 2..3),
    ) {
        prop_assume!(a != b && a.len() == b.len());
        for c in [
            Box::new(ZOrderCurve::with_bits(a.len(), 6)) as Box<dyn Curve>,
            Box::new(HilbertCurve::with_bits(a.len(), 6)),
        ] {
            prop_assert_ne!(c.index_of(&a).unwrap(), c.index_of(&b).unwrap());
        }
    }

    // ---- aggregation ----------------------------------------------------

    #[test]
    fn aggregate_pipeline_preserves_cell_values(
        cells in proptest::collection::btree_map(0u32..64, any::<u8>(), 1..64),
        parts in 1usize..6,
    ) {
        // Push distinct 1-D cells through the aggregation library, split
        // them for routing, then verify every (cell, value) survives.
        let curve = RowMajorCurve::with_bits(1, 6);
        let mut agg = Aggregator::new(curve, 1 << 20);
        for (&x, &v) in &cells {
            agg.push(&Coord::new(vec![x as i32]), &[v]).unwrap();
        }
        let records = agg.flush();
        let partitioner = RangePartitioner::uniform(parts, 64);
        let mut seen: HashMap<u128, u8> = HashMap::new();
        for rec in &records {
            for (p, piece) in route_split(rec, &partitioner, 1) {
                prop_assert!(p < parts);
                for i in piece.key.run.start..=piece.key.run.end {
                    let v = piece.value_at(i, 1).unwrap()[0];
                    prop_assert!(seen.insert(i, v).is_none(), "cell {i} duplicated");
                }
            }
        }
        prop_assert_eq!(seen.len(), cells.len());
        for (&x, &v) in &cells {
            prop_assert_eq!(seen[&(x as u128)], v);
        }
    }

    #[test]
    fn overlap_split_produces_equal_or_disjoint(
        ranges in vec((0u64..200, 1u64..40), 1..12),
    ) {
        let records: Vec<AggregateRecord> = ranges
            .iter()
            .map(|&(start, len)| {
                let run = CurveRun {
                    start: start as u128,
                    end: (start + len - 1) as u128,
                };
                AggregateRecord::new(
                    AggregateKey::new(0, run),
                    vec![0u8; len as usize],
                    1,
                )
                .unwrap()
            })
            .collect();
        let total_cells: u128 = records.iter().map(|r| r.key.cell_count()).sum();
        let pieces = overlap_split(records, 1);
        // Invariant: pairwise equal-or-disjoint.
        for i in 0..pieces.len() {
            for j in i + 1..pieces.len() {
                let (a, b) = (&pieces[i].key.run, &pieces[j].key.run);
                prop_assert!(
                    a == b || !a.overlaps(b),
                    "{a:?} and {b:?} overlap unequal"
                );
            }
        }
        // Invariant: no cells created or destroyed.
        let split_cells: u128 = pieces.iter().map(|r| r.key.cell_count()).sum();
        prop_assert_eq!(split_cells, total_cells);
        // Grouping never loses a record.
        let grouped = group_equal(pieces.clone());
        let grouped_records: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(grouped_records, pieces.len());
    }

    // ---- the engine vs a sequential reference ----------------------------

    #[test]
    fn engine_matches_sequential_reference(
        words in vec(0u16..50, 1..200),
        reducers in 1usize..5,
        split_size in 1usize..40,
    ) {
        // Job: count occurrences of each key.
        let pairs: Vec<KvPair> = words
            .iter()
            .map(|w| KvPair::new(w.to_be_bytes().to_vec(), vec![1u8]))
            .collect();
        let mut expected: HashMap<Vec<u8>, u64> = HashMap::new();
        for p in &pairs {
            *expected.entry(p.key.clone()).or_default() += 1;
        }

        let splits: Vec<InputSplit> = pairs
            .chunks(split_size)
            .map(|c| InputSplit::new(c.to_vec()))
            .collect();
        let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(k, v)
        }));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
                out.emit(k, &(values.len() as u64).to_be_bytes());
            },
        ));
        let result = Job::new(JobConfig::default().with_reducers(reducers))
            .run(splits, mapper, reducer)
            .unwrap();
        let got: HashMap<Vec<u8>, u64> = result
            .all_outputs()
            .into_iter()
            .map(|p| (p.key, u64::from_be_bytes(p.value.try_into().unwrap())))
            .collect();
        prop_assert_eq!(got, expected);
    }
}

//! IFile v3 property suite: front-coded sorted-block segments must
//! decode byte-identical record streams to the flat v2 format across
//! adversarial key distributions, and the block-skipping merge must
//! agree with the flat merge on every input.

use proptest::collection::vec;
use proptest::prelude::*;
use scihadoop::compress::{Codec, DeflateCodec, IdentityCodec};
use scihadoop::mapreduce::{
    merge_sorted_runs, BlockMergeStream, DefaultKeySemantics, Framing, IFileReader, IFileWriter,
    KvPair, RawSegment,
};
use std::sync::Arc;

fn write_segment(pairs: &[(Vec<u8>, Vec<u8>)], version: u8, budget: usize) -> Vec<u8> {
    let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
    let mut w = match version {
        2 => IFileWriter::new(Framing::IFile, codec),
        3 => IFileWriter::v3_with_budget(
            Framing::IFile,
            codec,
            Arc::new(DefaultKeySemantics),
            budget,
        ),
        _ => unreachable!(),
    };
    for (k, v) in pairs {
        w.append(k, v);
    }
    w.close().data
}

fn read_pairs(data: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    IFileReader::open(data, &IdentityCodec)
        .unwrap()
        .into_records()
        .into_iter()
        .map(|p| (p.key, p.value))
        .collect()
}

// ---- key distributions ------------------------------------------------

/// The design target: long shared path prefixes, short varying tails.
fn prefix_heavy_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    vec(
        (
            (0u32..500, vec(any::<u8>(), 0..6)).prop_map(|(n, tail)| {
                let mut k = format!("sensor/site-{:05}/", n).into_bytes();
                k.extend_from_slice(&tail);
                k
            }),
            vec(any::<u8>(), 0..24),
        ),
        0..64,
    )
}

/// Uniformly random keys: little to share, front coding must not lose.
fn random_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    vec((vec(any::<u8>(), 0..40), vec(any::<u8>(), 0..24)), 0..64)
}

/// Shared prefixes past the 255-byte mark, exercising multi-byte vints
/// in the shared-length field.
fn long_shared_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    vec(
        (
            (0u32..50, vec(any::<u8>(), 0..4)).prop_map(|(n, tail)| {
                let mut k = vec![b'p'; 300];
                k.extend_from_slice(format!("{:04}", n).as_bytes());
                k.extend_from_slice(&tail);
                k
            }),
            vec(any::<u8>(), 0..24),
        ),
        0..48,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn v3_roundtrips_prefix_heavy(
        pairs in prefix_heavy_pairs(),
        budget in prop_oneof![Just(1usize), Just(64), Just(512), Just(1 << 16)],
    ) {
        let data = write_segment(&pairs, 3, budget);
        prop_assert_eq!(read_pairs(&data), pairs);
    }

    #[test]
    fn v3_roundtrips_random_keys(
        pairs in random_pairs(),
        budget in prop_oneof![Just(1usize), Just(64), Just(512)],
    ) {
        let data = write_segment(&pairs, 3, budget);
        prop_assert_eq!(read_pairs(&data), pairs);
    }

    #[test]
    fn v3_roundtrips_long_shared_prefixes(
        pairs in long_shared_pairs(),
        budget in prop_oneof![Just(64usize), Just(512), Just(1 << 16)],
    ) {
        let data = write_segment(&pairs, 3, budget);
        prop_assert_eq!(read_pairs(&data), pairs);
    }

    #[test]
    fn v3_decodes_byte_identical_to_v2_prefix_heavy(pairs in prefix_heavy_pairs()) {
        let v2 = write_segment(&pairs, 2, 0);
        let v3 = write_segment(&pairs, 3, 64);
        prop_assert_eq!(read_pairs(&v2), read_pairs(&v3));
    }

    #[test]
    fn v3_decodes_byte_identical_to_v2_random(pairs in random_pairs()) {
        let v2 = write_segment(&pairs, 2, 0);
        let v3 = write_segment(&pairs, 3, 64);
        prop_assert_eq!(read_pairs(&v2), read_pairs(&v3));
    }

    #[test]
    fn v3_decodes_byte_identical_to_v2_long_shared(pairs in long_shared_pairs()) {
        let v2 = write_segment(&pairs, 2, 0);
        let v3 = write_segment(&pairs, 3, 512);
        prop_assert_eq!(read_pairs(&v2), read_pairs(&v3));
    }

    #[test]
    fn v3_roundtrips_under_a_real_codec(pairs in prefix_heavy_pairs()) {
        let codec = DeflateCodec::new();
        let mut w = IFileWriter::v3_with_budget(
            Framing::IFile,
            Arc::new(DeflateCodec::new()),
            Arc::new(DefaultKeySemantics),
            128,
        );
        for (k, v) in &pairs {
            w.append(k, v);
        }
        let seg = w.close();
        let got: Vec<(Vec<u8>, Vec<u8>)> = IFileReader::open(&seg.data, &codec)
            .unwrap()
            .into_records()
            .into_iter()
            .map(|p| (p.key, p.value))
            .collect();
        prop_assert_eq!(got, pairs);
    }

    #[test]
    fn block_merge_agrees_with_materializing_merge(
        runs in vec(prefix_heavy_pairs(), 1..6),
        budget in prop_oneof![Just(1usize), Just(64), Just(512)],
    ) {
        let ks = DefaultKeySemantics;
        let sorted_runs: Vec<Vec<KvPair>> = runs
            .iter()
            .map(|r| {
                let mut run: Vec<KvPair> = r
                    .iter()
                    .map(|(k, v)| KvPair::new(k.clone(), v.clone()))
                    .collect();
                run.sort();
                run
            })
            .collect();
        let sealed: Vec<Vec<u8>> = sorted_runs
            .iter()
            .map(|r| {
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = r
                    .iter()
                    .map(|p| (p.key.clone(), p.value.clone()))
                    .collect();
                write_segment(&pairs, 3, budget)
            })
            .collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &IdentityCodec).unwrap())
            .collect();
        let mut stream = BlockMergeStream::new(&segments, &ks).unwrap();
        let mut streamed = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            streamed.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        prop_assert_eq!(streamed, merge_sorted_runs(sorted_runs, &ks));
    }

    #[test]
    fn v3_bit_flips_always_detected(
        pairs in prefix_heavy_pairs(),
        bit_frac in 0.0f64..1.0,
    ) {
        let data = write_segment(&pairs, 3, 64);
        let bit = ((data.len() as f64 * 8.0 - 1.0) * bit_frac) as usize;
        let mut corrupt = data.clone();
        corrupt[bit / 8] ^= 1u8 << (bit % 8);
        prop_assert!(
            IFileReader::open(&corrupt, &IdentityCodec).is_err(),
            "bit flip at {} undetected in {}-byte v3 segment", bit, data.len()
        );
    }
}

// ---- degenerate distributions (deterministic) --------------------------

#[test]
fn v3_roundtrips_single_repeated_key() {
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..500u16)
        .map(|i| (b"the-one-key".to_vec(), i.to_be_bytes().to_vec()))
        .collect();
    for budget in [1usize, 64, 1 << 16] {
        let data = write_segment(&pairs, 3, budget);
        assert_eq!(read_pairs(&data), pairs, "budget {budget}");
    }
    // Every key after the first shares everything with its predecessor.
    let v2 = write_segment(&pairs, 2, 0);
    let v3 = write_segment(&pairs, 3, 1 << 16);
    assert!(v3.len() < v2.len());
}

#[test]
fn v3_roundtrips_empty_keys() {
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..100u16)
        .map(|i| (Vec::new(), i.to_be_bytes().to_vec()))
        .collect();
    for budget in [1usize, 64] {
        let data = write_segment(&pairs, 3, budget);
        assert_eq!(read_pairs(&data), pairs, "budget {budget}");
    }
}

#[test]
fn front_coding_shrinks_prefix_heavy_segments() {
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..2000)
        .map(|i| {
            (
                format!("climate/temperature/cell-{:08}", i).into_bytes(),
                (i as u64).to_be_bytes().to_vec(),
            )
        })
        .collect();
    let v2 = write_segment(&pairs, 2, 0);
    let v3 = write_segment(&pairs, 3, 4096);
    assert!(
        v3.len() < v2.len(),
        "prefix-heavy keys must shrink: v2 {} bytes, v3 {} bytes",
        v2.len(),
        v3.len()
    );
    assert_eq!(read_pairs(&v2), read_pairs(&v3));
}

//! Equivalence properties for the shuffle hot path.
//!
//! The engine's arena-backed spill and streaming k-way merge replaced a
//! materialize-everything reference pipeline (`SortBuffer`,
//! `merge_sorted_runs`, whole-run `sort_split`). These properties pin the
//! refactor to the reference semantics: byte-identical spill segments,
//! identical job outputs, and identical record/byte/split counters across
//! random workloads, spill thresholds, and key semantics (stock keys and
//! Z-order aggregate keys). The comparison-free sort paths (prefix radix
//! spill sort, loser-tree merge) are additionally pinned byte-identical
//! to their retained comparator references (`sort_partition_by_compare`,
//! `HeapMergeStream`, `merge_sorted_runs`).

use proptest::collection::vec;
use proptest::prelude::*;
use scihadoop::compress::{Codec, DeflateCodec, IdentityCodec};
use scihadoop::core::aggregate::{AggregateKey, AggregateKeyOps, RangePartitioner};
use scihadoop::mapreduce::{
    for_each_group, merge_sorted_runs, Counter, Emit, FnMapper, FnReducer, Framing,
    HeapMergeStream, IFileReader, IFileWriter, InputSplit, Job, JobConfig, KeySemantics, KvPair,
    MergeStream, RawSegment, SpillArena,
};
use scihadoop::sfc::CurveRun;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Reference pipeline: the engine's pre-arena semantics, reimplemented on
// the reference primitives the engine keeps for exactly this purpose.
// ---------------------------------------------------------------------------

/// One spilled segment: `(partition, data, raw, key, value, framing)` bytes.
type SpilledSegment = (usize, Vec<u8>, u64, u64, u64, u64);

/// A reduce function over one `(key, values)` group.
type RefReducer = dyn Fn(&[u8], &[&[u8]], &mut dyn Emit);

#[derive(Debug, Default, PartialEq, Eq)]
struct RefCounters {
    map_output_records: u64,
    route_split_records: u64,
    sort_split_records: u64,
    spills: u64,
    map_output_bytes: u64,
    map_output_key_bytes: u64,
    map_output_value_bytes: u64,
    map_output_framing_bytes: u64,
    map_output_materialized_bytes: u64,
    shuffle_bytes: u64,
    reduce_input_groups: u64,
    reduce_input_records: u64,
}

struct RefConfig {
    parts: usize,
    spill_threshold: usize,
    framing: Framing,
    codec: Arc<dyn Codec>,
    ks: Arc<dyn KeySemantics>,
}

/// Run one map task the pre-arena way: route into per-partition owned
/// pair vectors, spill (stable sort + write) past the threshold, merge
/// multi-spill partitions.
fn ref_map_task(cfg: &RefConfig, split: &[KvPair], c: &mut RefCounters) -> Vec<(usize, Vec<u8>)> {
    let mut staged: Vec<Vec<KvPair>> = (0..cfg.parts).map(|_| Vec::new()).collect();
    let mut payload = 0usize;
    let mut segments: Vec<SpilledSegment> = Vec::new();

    let mut spill =
        |staged: &mut Vec<Vec<KvPair>>, payload: &mut usize, segments: &mut Vec<SpilledSegment>| {
            if *payload == 0 {
                return;
            }
            c.spills += 1;
            for (partition, pairs) in staged.iter_mut().enumerate() {
                if pairs.is_empty() {
                    continue;
                }
                let mut run = std::mem::take(pairs);
                run.sort_by(|a, b| cfg.ks.compare(&a.key, &b.key));
                let mut w = IFileWriter::new(cfg.framing, cfg.codec.clone());
                for p in &run {
                    w.append_pair(p);
                }
                let seg = w.close();
                segments.push((
                    partition,
                    seg.data.clone(),
                    seg.raw_bytes,
                    seg.key_bytes,
                    seg.value_bytes,
                    seg.framing_bytes(),
                ));
            }
            *payload = 0;
        };

    for record in split {
        let routed = cfg.ks.route(record.clone(), cfg.parts);
        if routed.len() > 1 {
            c.route_split_records += routed.len() as u64 - 1;
        }
        for (partition, pair) in routed {
            c.map_output_records += 1;
            payload += pair.key.len() + pair.value.len();
            staged[partition].push(pair);
        }
        if payload >= cfg.spill_threshold {
            spill(&mut staged, &mut payload, &mut segments);
        }
    }
    spill(&mut staged, &mut payload, &mut segments);

    // Merge multi-spill partitions (decompress, k-way merge, rewrite).
    let multi = (0..cfg.parts).any(|p| segments.iter().filter(|(sp, ..)| *sp == p).count() > 1);
    if multi {
        let mut merged: Vec<(usize, Vec<u8>, u64, u64, u64, u64)> = Vec::new();
        for p in 0..cfg.parts {
            let mine: Vec<_> = segments.iter().filter(|(sp, ..)| *sp == p).collect();
            match mine.len() {
                0 => {}
                1 => merged.push(mine[0].clone()),
                _ => {
                    let runs: Vec<Vec<KvPair>> = mine
                        .iter()
                        .map(|(_, data, ..)| {
                            IFileReader::open(data, cfg.codec.as_ref())
                                .expect("segment reads back")
                                .into_records()
                        })
                        .collect();
                    let run = merge_sorted_runs(runs, cfg.ks.as_ref());
                    let mut w = IFileWriter::new(cfg.framing, cfg.codec.clone());
                    for pair in &run {
                        w.append_pair(pair);
                    }
                    let seg = w.close();
                    merged.push((
                        p,
                        seg.data.clone(),
                        seg.raw_bytes,
                        seg.key_bytes,
                        seg.value_bytes,
                        seg.framing_bytes(),
                    ));
                }
            }
        }
        segments = merged;
    }

    for (_, data, raw, key, value, framing) in &segments {
        c.map_output_bytes += raw;
        c.map_output_key_bytes += key;
        c.map_output_value_bytes += value;
        c.map_output_framing_bytes += framing;
        c.map_output_materialized_bytes += data.len() as u64;
    }
    segments
        .into_iter()
        .map(|(p, data, ..)| (p, data))
        .collect()
}

/// Run one reduce task the pre-arena way: materialize every run, k-way
/// merge, whole-run `sort_split`, re-sort, group, reduce.
fn ref_reduce_task(
    cfg: &RefConfig,
    segments: Vec<Vec<u8>>,
    reducer: &RefReducer,
    c: &mut RefCounters,
) -> Vec<KvPair> {
    let runs: Vec<Vec<KvPair>> = segments
        .iter()
        .map(|data| {
            IFileReader::open(data, cfg.codec.as_ref())
                .expect("segment reads back")
                .into_records()
        })
        .collect();
    let merged = merge_sorted_runs(runs, cfg.ks.as_ref());
    let before = merged.len();
    let mut records = cfg.ks.sort_split(merged);
    if records.len() > before {
        c.sort_split_records += (records.len() - before) as u64;
    }
    records.sort_by(|a, b| cfg.ks.compare(&a.key, &b.key));
    let mut out = Vec::new();
    for_each_group(&records, cfg.ks.as_ref(), |key, values| {
        c.reduce_input_groups += 1;
        c.reduce_input_records += values.len() as u64;
        reducer(key, values, &mut |k: &[u8], v: &[u8]| {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        });
    });
    out
}

/// The full reference job over `splits` with an identity mapper.
fn ref_job(
    cfg: &RefConfig,
    splits: &[Vec<KvPair>],
    reducer: &RefReducer,
) -> (Vec<Vec<KvPair>>, RefCounters) {
    let mut c = RefCounters::default();
    let mut per_reducer: Vec<Vec<Vec<u8>>> = (0..cfg.parts).map(|_| Vec::new()).collect();
    for split in splits {
        for (partition, data) in ref_map_task(cfg, split, &mut c) {
            per_reducer[partition].push(data);
        }
    }
    for segments in &per_reducer {
        c.shuffle_bytes += segments.iter().map(|s| s.len() as u64).sum::<u64>();
    }
    let outputs = per_reducer
        .into_iter()
        .map(|segments| ref_reduce_task(cfg, segments, reducer, &mut c))
        .collect();
    (outputs, c)
}

/// Run the engine on the same inputs (serial slots so segment order is
/// the split order, as in the reference).
fn engine_job(cfg: &RefConfig, splits: &[Vec<KvPair>]) -> scihadoop::mapreduce::JobResult {
    let config = JobConfig::default()
        .with_reducers(cfg.parts)
        .with_slots(1, 1)
        .with_codec(cfg.codec.clone())
        .with_key_semantics(cfg.ks.clone())
        .with_framing(cfg.framing)
        .with_spill_buffer(cfg.spill_threshold);
    let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v);
    }));
    let reducer = Arc::new(FnReducer(concat_reducer));
    Job::new(config)
        .run(
            splits
                .iter()
                .map(|records| InputSplit::new(records.clone()))
                .collect(),
            mapper,
            reducer,
        )
        .expect("engine job runs")
}

/// Reducer whose output depends on the exact grouping and value order:
/// key → value count ++ concatenated values.
fn concat_reducer(key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
    let mut payload = (values.len() as u32).to_be_bytes().to_vec();
    for v in values {
        payload.extend_from_slice(v);
    }
    out.emit(key, &payload);
}

fn assert_engine_matches_reference(cfg: &RefConfig, splits: &[Vec<KvPair>]) {
    let (ref_outputs, ref_c) = ref_job(cfg, splits, &concat_reducer);
    let result = engine_job(cfg, splits);
    assert_eq!(result.outputs, ref_outputs, "job outputs diverged");
    let get = |counter| result.counters.get(counter);
    let actual = RefCounters {
        map_output_records: get(Counter::MapOutputRecords),
        route_split_records: get(Counter::RouteSplitRecords),
        sort_split_records: get(Counter::SortSplitRecords),
        spills: get(Counter::Spills),
        map_output_bytes: get(Counter::MapOutputBytes),
        map_output_key_bytes: get(Counter::MapOutputKeyBytes),
        map_output_value_bytes: get(Counter::MapOutputValueBytes),
        map_output_framing_bytes: get(Counter::MapOutputFramingBytes),
        map_output_materialized_bytes: get(Counter::MapOutputMaterializedBytes),
        shuffle_bytes: get(Counter::ShuffleBytes),
        reduce_input_groups: get(Counter::ReduceInputGroups),
        reduce_input_records: get(Counter::ReduceInputRecords),
    };
    assert_eq!(actual, ref_c, "counters diverged");
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Small keys from a narrow alphabet (collisions likely) + short values.
fn plain_splits(keys: &[(u8, u8)], values: &[Vec<u8>], num_splits: usize) -> Vec<Vec<KvPair>> {
    let records: Vec<KvPair> = keys
        .iter()
        .zip(values.iter().cycle())
        .map(|(&(a, b), v)| KvPair::new(vec![b'k', a % 8, b % 4], v.clone()))
        .collect();
    let chunk = records.len().div_ceil(num_splits).max(1);
    records.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Aggregate-key records: random (variable, start, len) runs over a
/// small curve span so runs overlap and cross partition boundaries.
fn aggregate_splits(runs: &[(u8, u8, u8)], width: usize, num_splits: usize) -> Vec<Vec<KvPair>> {
    let records: Vec<KvPair> = runs
        .iter()
        .map(|&(var, start, len)| {
            let start = start as u128 % 120;
            let len = 1 + len as u128 % 12;
            let key = AggregateKey::new(
                var as u32 % 2,
                CurveRun {
                    start,
                    end: start + len - 1,
                },
            );
            let values: Vec<u8> = (0..len as usize * width)
                .map(|i| (start as usize + i) as u8)
                .collect();
            KvPair::new(key.to_bytes(), values)
        })
        .collect();
    let chunk = records.len().div_ceil(num_splits).max(1);
    records.chunks(chunk).map(|c| c.to_vec()).collect()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Map side, in isolation: staging through the arena and sorting its
    /// index produces byte-identical segments to staging owned pairs and
    /// sorting them.
    #[test]
    fn arena_segments_are_byte_identical_to_pair_sorting(
        keys in vec((any::<u8>(), any::<u8>()), 1..150),
        values in vec(vec(any::<u8>(), 0..10), 1..20),
        parts in 1usize..5,
    ) {
        let ks = scihadoop::mapreduce::DefaultKeySemantics;
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut arena = SpillArena::new(parts);
        let mut staged: Vec<Vec<KvPair>> = (0..parts).map(|_| Vec::new()).collect();
        for (&(a, b), v) in keys.iter().zip(values.iter().cycle()) {
            let key = vec![a % 16, b];
            let p = ks.partition(&key, parts);
            arena.append(p, &key, v);
            staged[p].push(KvPair::new(key, v.clone()));
        }
        for (p, run) in staged.iter_mut().enumerate() {
            arena.sort_partition(p, &ks);
            run.sort_by(|a, b| ks.compare(&a.key, &b.key));

            let mut wa = IFileWriter::new(Framing::IFile, codec.clone());
            for (k, v) in arena.pairs(p) {
                wa.append(k, v);
            }
            let mut wr = IFileWriter::new(Framing::IFile, codec.clone());
            for pair in run.iter() {
                wr.append_pair(pair);
            }
            let (sa, sr) = (wa.close(), wr.close());
            prop_assert_eq!(&sa.data, &sr.data, "partition {} bytes", p);
            prop_assert_eq!(sa.records, sr.records);
            prop_assert_eq!(sa.key_bytes, sr.key_bytes);
            prop_assert_eq!(sa.value_bytes, sr.value_bytes);
        }
    }

    /// Whole pipeline, stock key semantics: outputs and counters match
    /// the reference across random spill thresholds and split counts.
    #[test]
    fn engine_matches_reference_on_plain_keys(
        keys in vec((any::<u8>(), any::<u8>()), 0..200),
        values in vec(vec(any::<u8>(), 0..12), 1..12),
        parts in 1usize..4,
        num_splits in 1usize..4,
        threshold in 8usize..2048,
        deflate in any::<bool>(),
    ) {
        let cfg = RefConfig {
            parts,
            spill_threshold: threshold,
            framing: Framing::SequenceFile,
            codec: if deflate {
                Arc::new(DeflateCodec::new())
            } else {
                Arc::new(IdentityCodec)
            },
            ks: Arc::new(scihadoop::mapreduce::DefaultKeySemantics),
        };
        let splits = plain_splits(&keys, &values, num_splits);
        assert_engine_matches_reference(&cfg, &splits);
    }

    /// Map-side radix spill sort vs the retained comparator sort: the
    /// `(prefix, index)` LSD radix path with tie-run fallback must be
    /// byte-identical (order *and* stability) to the stable comparator
    /// sort, for stock and aggregate key semantics alike.
    #[test]
    fn radix_spill_sort_is_byte_identical_to_comparator_sort(
        keys in vec((any::<u8>(), any::<u8>()), 1..200),
        runs in vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        aggregate in any::<bool>(),
    ) {
        let ks: Arc<dyn KeySemantics> = if aggregate {
            Arc::new(AggregateKeyOps::new(RangePartitioner::uniform(2, 256), 1))
        } else {
            Arc::new(scihadoop::mapreduce::DefaultKeySemantics)
        };
        let records: Vec<KvPair> = if aggregate {
            aggregate_splits(&runs, 1, 1).remove(0)
        } else {
            plain_splits(&keys, &[vec![9u8]], 1).remove(0)
        };
        let mut fast = SpillArena::new(1);
        let mut reference = SpillArena::new(1);
        for (i, r) in records.iter().enumerate() {
            // Distinct values expose any stability difference.
            let tag = (i as u32).to_be_bytes();
            fast.append(0, &r.key, &tag);
            reference.append(0, &r.key, &tag);
        }
        fast.sort_partition(0, ks.as_ref());
        reference.sort_partition_by_compare(0, ks.as_ref());
        let fast_pairs: Vec<(Vec<u8>, Vec<u8>)> =
            fast.pairs(0).map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let ref_pairs: Vec<(Vec<u8>, Vec<u8>)> =
            reference.pairs(0).map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        prop_assert_eq!(fast_pairs, ref_pairs);
    }

    /// Reduce-side loser-tree merge vs both references: the prefix-keyed
    /// loser tree must yield exactly the sequence of the retained heap
    /// stream and of the materializing merge, including tie-break order
    /// across runs with duplicated keys.
    #[test]
    fn loser_tree_merge_is_identical_to_heap_and_materializing_merges(
        keys in vec((any::<u8>(), any::<u8>()), 1..200),
        runs in vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        num_runs in 1usize..7,
        aggregate in any::<bool>(),
    ) {
        let ks: Arc<dyn KeySemantics> = if aggregate {
            Arc::new(AggregateKeyOps::new(RangePartitioner::uniform(2, 256), 1))
        } else {
            Arc::new(scihadoop::mapreduce::DefaultKeySemantics)
        };
        let records: Vec<KvPair> = if aggregate {
            aggregate_splits(&runs, 1, 1).remove(0)
        } else {
            plain_splits(&keys, &[vec![9u8]], 1).remove(0)
        };
        // Deal records round-robin into sorted runs, tagging values so
        // any cross-run tie-break difference shows up.
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut sorted_runs: Vec<Vec<KvPair>> = (0..num_runs).map(|_| Vec::new()).collect();
        for (i, r) in records.iter().enumerate() {
            sorted_runs[i % num_runs]
                .push(KvPair::new(r.key.clone(), (i as u32).to_be_bytes().to_vec()));
        }
        for run in &mut sorted_runs {
            run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        }
        let sealed: Vec<Vec<u8>> = sorted_runs
            .iter()
            .map(|run| {
                let mut w = IFileWriter::new(Framing::IFile, codec.clone());
                for p in run {
                    w.append_pair(p);
                }
                w.close().data
            })
            .collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, codec.as_ref()).expect("segment reads back"))
            .collect();
        let mut tree = MergeStream::new(&segments, ks.as_ref()).expect("merge opens");
        let mut tree_out = Vec::new();
        while let Some((k, v)) = tree.next().expect("merge streams") {
            tree_out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        let mut heap = HeapMergeStream::new(&segments, ks.as_ref()).expect("merge opens");
        let mut heap_out = Vec::new();
        while let Some((k, v)) = heap.next().expect("merge streams") {
            heap_out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        let materialized = merge_sorted_runs(sorted_runs, ks.as_ref());
        prop_assert_eq!(&tree_out, &materialized, "loser tree vs materializing merge");
        prop_assert_eq!(&heap_out, &materialized, "heap stream vs materializing merge");
    }

    /// Whole pipeline, Z-order aggregate keys: route splits, overlap
    /// sort-splits and their counters match the reference. This pins the
    /// lazy windowed `sort_split` (and its skip-the-resort fast path) to
    /// the whole-run reference semantics.
    #[test]
    fn engine_matches_reference_on_aggregate_keys(
        runs in vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        parts in 1usize..4,
        num_splits in 1usize..4,
        threshold in 8usize..4096,
        width in 1usize..3,
    ) {
        let partitioner = RangePartitioner::uniform(parts, 256);
        let cfg = RefConfig {
            parts,
            spill_threshold: threshold,
            framing: Framing::IFile,
            codec: Arc::new(IdentityCodec),
            ks: Arc::new(AggregateKeyOps::new(partitioner, width)),
        };
        let splits = aggregate_splits(&runs, width, num_splits);
        assert_engine_matches_reference(&cfg, &splits);
    }
}

//! Property suite for the `KeySemantics::sort_prefix` contract:
//!
//! > `sort_prefix(a) < sort_prefix(b)` ⇒ `compare(a, b) == Less`
//!
//! checked for every shipped implementation — the default bytewise
//! semantics over arbitrary byte strings, and the aggregate-key
//! semantics over valid keys (with curve indices from real Z-order
//! mappings, including boundary coordinates), junk byte strings, and
//! starts straddling the 48-bit prefix clamp. The engine's radix spill
//! sort and loser-tree merge are only correct because of this
//! implication, so a violation here is a corruption bug, not a perf
//! regression.

use proptest::collection::vec;
use proptest::prelude::*;
use scihadoop::core::aggregate::{AggregateKey, AggregateKeyOps, RangePartitioner};
use scihadoop::mapreduce::{bytewise_sort_prefix, DefaultKeySemantics, KeySemantics};
use scihadoop::sfc::{index_prefix48, Curve, CurveRun, ZOrderCurve};
use std::cmp::Ordering;

/// Assert the contract over every ordered pair of `keys`, plus the
/// monotonicity restatement (`compare Less` ⇒ `prefix <=`).
fn check_contract(ks: &dyn KeySemantics, keys: &[Vec<u8>]) -> Result<(), TestCaseError> {
    for a in keys {
        for b in keys {
            let (pa, pb) = (ks.sort_prefix(a), ks.sort_prefix(b));
            if pa < pb {
                prop_assert_eq!(
                    ks.compare(a, b),
                    Ordering::Less,
                    "prefix order must imply key order: {:?} vs {:?}",
                    a,
                    b
                );
            }
            if ks.compare(a, b) == Ordering::Less {
                prop_assert!(
                    pa <= pb,
                    "prefix must be monotone over key order: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
    }
    Ok(())
}

fn aggregate_ops() -> AggregateKeyOps {
    AggregateKeyOps::new(RangePartitioner::uniform(4, 1 << 20), 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default semantics: arbitrary byte strings of any length, with a
    /// bias toward shared prefixes and embedded zero bytes (the cases
    /// where zero-extension could go wrong).
    #[test]
    fn default_prefix_contract_over_arbitrary_bytes(
        random in vec(vec(any::<u8>(), 0..14), 2..24),
        stems in vec(vec(0u8..3, 0..10), 0..12),
    ) {
        // Low-entropy stems manufacture prefix collisions and \x00 runs.
        let mut keys = random;
        keys.extend(stems);
        check_contract(&DefaultKeySemantics, &keys)?;
    }

    /// Aggregate semantics over valid keys whose starts are genuine
    /// Z-order curve indices — coordinates span the full u32 range, so
    /// curve indices cross the 48-bit clamp boundary.
    #[test]
    fn aggregate_prefix_contract_over_zorder_keys(
        coords in vec((any::<u32>(), any::<u32>()), 1..16),
        small in vec((0u32..300, 0u32..300), 1..16),
        variables in vec(0u32..4, 1..6),
        lens in vec(1u64..200, 1..8),
    ) {
        let curve = ZOrderCurve::new(2);
        let ops = aggregate_ops();
        let mut keys = Vec::new();
        for (i, &(x, y)) in coords.iter().chain(small.iter()).enumerate() {
            let start = curve.index_of(&[x, y]).expect("2x32-bit coords fit");
            let len = lens[i % lens.len()] as u128;
            let variable = variables[i % variables.len()];
            let end = start.saturating_add(len - 1);
            keys.push(AggregateKey::new(variable, CurveRun { start, end }).to_bytes());
        }
        check_contract(&ops, &keys)?;
    }

    /// Aggregate semantics must also survive junk: random byte strings
    /// (any length, including truncated keys) mixed with valid keys.
    /// The positional packing makes the prefix order-preserving for the
    /// bytewise comparator over *all* inputs, parseable or not.
    #[test]
    fn aggregate_prefix_contract_over_junk_and_valid_keys(
        junk in vec(vec(any::<u8>(), 0..40), 0..12),
        starts in vec(any::<u64>(), 1..8),
        variables in vec(any::<u32>(), 1..4),
    ) {
        let ops = aggregate_ops();
        let mut keys = junk;
        for (i, &s) in starts.iter().enumerate() {
            // Shift some starts past the 48-bit clamp.
            let start = (s as u128) << (8 * (i % 4));
            let variable = variables[i % variables.len()];
            keys.push(
                AggregateKey::new(variable, CurveRun { start, end: start }).to_bytes(),
            );
            // Truncations of valid keys are adversarial junk too.
            let full = keys.last().expect("just pushed").clone();
            keys.push(full[..full.len().min(3 + i % 20)].to_vec());
        }
        check_contract(&ops, &keys)?;
    }

    /// The default prefix ties exactly when the first 8 bytes tie, and
    /// `index_prefix48` is monotone — spot restatements of the pieces
    /// the two implementations are built from.
    #[test]
    fn prefix_building_blocks_are_monotone(
        a in any::<u128>(),
        b in any::<u128>(),
        key in vec(any::<u8>(), 0..20),
    ) {
        if a <= b {
            prop_assert!(index_prefix48(a) <= index_prefix48(b));
        } else {
            prop_assert!(index_prefix48(a) >= index_prefix48(b));
        }
        let mut first8 = [0u8; 8];
        let n = key.len().min(8);
        first8[..n].copy_from_slice(&key[..n]);
        prop_assert_eq!(bytewise_sort_prefix(&key), u64::from_be_bytes(first8));
    }
}

/// Boundary coordinates deserve a deterministic pass: curve corners,
/// the 48-bit clamp, and negative grid coordinates rejected upstream
/// (signed coordinates must be offset non-negative before indexing, so
/// the key layer only ever sees unsigned indices — asserted here).
#[test]
fn aggregate_prefix_boundary_coordinates() {
    let curve = ZOrderCurve::new(2);
    let ops = aggregate_ops();
    let corners = [
        [0u32, 0],
        [0, u32::MAX],
        [u32::MAX, 0],
        [u32::MAX, u32::MAX],
        [1 << 23, 1 << 24],
        [(1 << 24) - 1, (1 << 24) - 1],
    ];
    let mut keys = Vec::new();
    for c in &corners {
        let start = curve.index_of(c).expect("corners fit");
        for len in [1u128, 1 << 30] {
            let end = start.saturating_add(len - 1);
            keys.push(AggregateKey::new(1, CurveRun { start, end }).to_bytes());
        }
    }
    for a in &keys {
        for b in &keys {
            if ops.sort_prefix(a) < ops.sort_prefix(b) {
                assert_eq!(ops.compare(a, b), Ordering::Less, "{a:?} vs {b:?}");
            }
        }
    }
    // Negative coordinates never reach the curve: the grid layer rejects
    // them, so aggregate keys cannot embed a "negative" index.
    use scihadoop::grid::Coord;
    assert!(curve.index_of_coord(&Coord::new(vec![-1, 5])).is_err());
    assert!(curve.index_of_coord(&Coord::new(vec![0, 5])).is_ok());
}

//! # scihadoop — intermediate-key compression for MapReduce, in Rust
//!
//! A from-scratch reproduction of *"Compressing Intermediate Keys between
//! Mappers and Reducers in SciHadoop"* (Crume, Buck, Maltzahn, Brandt —
//! SC 2012 Companion).
//!
//! The facade crate re-exports the whole workspace:
//!
//! * [`grid`] — n-dimensional scientific grids and Writable-style keys
//! * [`sfc`] — space-filling curves (Z-order, Hilbert, row-major)
//! * [`compress`] — generic codecs built from scratch (Deflate-, Bzip-style)
//! * [`core`] — the paper's contribution: the stride-predictive byte
//!   transform (§III) and space-filling-curve key aggregation (§IV)
//! * [`mapreduce`] — a multi-threaded MapReduce engine with an IFile-style
//!   intermediate format and pluggable codecs
//! * [`cluster`] — a cost-model cluster simulator for the end-to-end
//!   experiments (§III-E, §IV-D)
//! * [`queries`] — scientific queries (sliding median et al.) used by the
//!   paper's evaluation
//!
//! ## Quickstart
//!
//! ```
//! use scihadoop::core::aggregate::Aggregator;
//! use scihadoop::grid::{Coord, Shape};
//! use scihadoop::sfc::ZOrderCurve;
//!
//! // Aggregate per-cell keys of a 4x4 tile into Z-order ranges.
//! let mut agg = Aggregator::new(ZOrderCurve::new(2), 1 << 20);
//! for x in 0..4 {
//!     for y in 0..4 {
//!         agg.push(&Coord::new(vec![x, y]), b"value").unwrap();
//!     }
//! }
//! let runs = agg.flush();
//! assert_eq!(runs.len(), 1, "a full aligned tile is one curve range");
//! ```

pub use scihadoop_cluster as cluster;
pub use scihadoop_compress as compress;
pub use scihadoop_core as core;
pub use scihadoop_grid as grid;
pub use scihadoop_mapreduce as mapreduce;
pub use scihadoop_queries as queries;
pub use scihadoop_sfc as sfc;

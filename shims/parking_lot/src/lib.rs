//! Offline stand-in for the `parking_lot` crate, implementing the small
//! API surface this workspace uses on top of `std::sync`.
//!
//! Vendored because the build environment has no access to crates.io.
//! Poisoning is transparently ignored (parking_lot locks do not poison),
//! so panicking while holding a lock behaves the same as the real crate
//! from the caller's point of view.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly
/// (no `Result`), matching `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock; guards are returned directly, as in `parking_lot`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Vendored because the build environment has no access to crates.io.
//! Implements exactly what this workspace uses: `StdRng` seeded from a
//! `u64`, and `Rng::random_range` over integer and float ranges. The
//! generator is xoshiro256++, seeded via SplitMix64 — deterministic and
//! high quality, though the streams differ from upstream `rand` (all
//! in-repo consumers only require determinism, not specific values).

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range (subset of `rand::distr` machinery).
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open, as in `rand 0.9`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine for the
                // deterministic synthetic workloads this shim feeds.
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i32..1000), b.random_range(0i32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10i32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-0.05f32..0.05);
            assert!((-0.05..0.05).contains(&f));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i32> = (0..32).map(|_| a.random_range(0..1_000_000)).collect();
        let vb: Vec<i32> = (0..32).map(|_| b.random_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 700), "skewed: {buckets:?}");
    }
}

//! Test-runner plumbing: configuration, the per-test RNG, and case
//! outcomes.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — discard the case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generator (xoshiro256++) seeded from the test name, so
/// every run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a 64-bit value (SplitMix64 expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 128 bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        (((self.next_u64() as u128) * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}

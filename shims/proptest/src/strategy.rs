//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-yields-a-clone-of-one-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies of one value type (built by
/// the `prop_oneof!` macro).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> OneOf<T> {
    /// Build from pre-boxed arms.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    /// Box one strategy as an arm.
    pub fn arm<S>(strat: S) -> Box<dyn Fn(&mut TestRng) -> T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strat.generate(rng))
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

// ---- numeric ranges -----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = (((rng.next_u64() as u128) * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        self.start + rng.next_u128() % span
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- regex-literal string strategies ------------------------------------

/// String literals are strategies generating matching strings, like
/// upstream proptest. Supported subset: literal chars, `[...]` classes
/// with ranges, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated [class] in pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            for c in chars[j]..=chars[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!class.is_empty(), "empty char class in pattern");
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {quantifier} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad {m,n}"),
                        hi.parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = body.parse().expect("bad {m}");
                        (n, n)
                    }
                }
            } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
                i += 1;
                match chars[i - 1] {
                    '?' => (0usize, 1usize),
                    '*' => (0, 8),
                    _ => (1, 8),
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- any::<T>() ---------------------------------------------------------

/// Types with a full-domain strategy.
pub trait ArbitraryValue: Sized {
    /// Generate anywhere in the domain, biased toward edge values the
    /// way upstream proptest is.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // 1-in-8 cases pick an edge value; otherwise uniform.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] =
                        [<$t>::MIN, <$t>::MIN.wrapping_add(1), 0, 1, <$t>::MAX];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        if rng.below(8) == 0 {
            [0u128, 1, u128::MAX][rng.below(3) as usize]
        } else {
            rng.next_u128()
        }
    }
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: ArbitraryValue, const N: usize> ArbitraryValue for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

// ---- tuples -------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v = (-5i32..7).generate(&mut r);
            assert!((-5..7).contains(&v));
            let u = (0u128..500).generate(&mut r);
            assert!(u < 500);
        }
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            seen.insert((0u8..4).generate(&mut r));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn map_and_just_and_oneof() {
        let mut r = rng();
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        assert_eq!(Just(41).generate(&mut r), 41);
        let one = crate::prop_oneof![Just(1usize), Just(2), Just(3)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(one.generate(&mut r));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u32..4, 10i64..12, any::<bool>()).generate(&mut r);
        assert!(a < 4);
        assert!((10..12).contains(&b));
        let _: bool = c;
    }

    #[test]
    fn any_hits_edges_eventually() {
        let mut r = rng();
        let mut saw_max = false;
        for _ in 0..2000 {
            if u8::arbitrary_value(&mut r) == u8::MAX {
                saw_max = true;
            }
        }
        assert!(saw_max);
    }
}

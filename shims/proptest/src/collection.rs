//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Size specification for collection strategies: an exact length or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of values from `element`, length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `BTreeSet` of values from `element`; if the element domain is too
/// small to reach the drawn size, a smaller set is produced (matching
/// upstream's best-effort behaviour without its rejection machinery).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut tries = 0usize;
        while out.len() < n && tries < n * 10 + 16 {
            out.insert(self.element.generate(rng));
            tries += 1;
        }
        out
    }
}

/// Strategy for `BTreeMap<K, V>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// `BTreeMap` with keys from `key` and values from `value`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut tries = 0usize;
        while out.len() < n && tries < n * 10 + 16 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            tries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    fn rng() -> TestRng {
        TestRng::from_seed(5)
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(vec(0u8..10, 3).generate(&mut r).len(), 3);
            let n = vec(any::<u8>(), 2..5).generate(&mut r).len();
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn set_and_map_sizes_within_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = btree_set(0u32..1000, 1..8).generate(&mut r);
            assert!((1..8).contains(&s.len()));
            let m = btree_map(0u32..1000, any::<u8>(), 1..8).generate(&mut r);
            assert!((1..8).contains(&m.len()));
        }
    }

    #[test]
    fn small_domains_saturate_gracefully() {
        let mut r = rng();
        let s = btree_set(0u32..2, 1..64).generate(&mut r);
        assert!(!s.is_empty() && s.len() <= 2);
    }
}

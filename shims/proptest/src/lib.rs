//! Offline stand-in for the `proptest` crate.
//!
//! Vendored because the build environment has no access to crates.io.
//! Implements the subset this workspace uses: the `proptest!` macro,
//! numeric-range / tuple / `any` / `Just` / `prop_map` / `prop_oneof!`
//! strategies, `collection::{vec, btree_set, btree_map}`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the case number; generation is deterministic per test name, so
//! failures reproduce exactly), and value streams differ from upstream
//! proptest. Every in-repo property is distribution-agnostic, so only
//! determinism and domain coverage matter.

#![allow(clippy::type_complexity)] // vendored stand-in, keeps upstream-ish signatures

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Top-level entry point: a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, data in vec(any::<u8>(), 0..100)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal muncher: one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $cfg;
            let strats = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(config.cases);
            while ran < config.cases && attempts < max_attempts {
                attempts += 1;
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strats, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {} (attempt {}): {}",
                            stringify!($name),
                            ran + 1,
                            attempts,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `left != right`\n  both: {:?}",
                            l
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `left != right`: {}\n  both: {:?}",
                            format!($($fmt)+),
                            l
                        )),
                    );
                }
            }
        }
    };
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::OneOf::arm($strat)),+
        ])
    };
}

//! Offline stand-in for the `criterion` crate.
//!
//! Vendored because the build environment has no access to crates.io.
//! Implements the workspace's benchmark surface — groups, throughput,
//! `bench_function` / `bench_with_input`, `b.iter` — with a simple
//! adaptive timing loop (median of samples) and plain-text reporting.
//! No statistical regression analysis, plots, or HTML output.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration unit, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark's display identity: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples of an adaptively chosen
    /// batch size. The routine's result is black-boxed so the work is not
    /// optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~5 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(per_iter);
        }
    }

    fn median_ns(&mut self) -> f64 {
        assert!(!self.samples.is_empty(), "bench closure never called iter");
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.samples[self.samples.len() / 2]
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/bench` path.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Throughput declared for the group, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Work units per second implied by the median time, if a throughput
    /// was declared.
    pub fn per_second(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Bytes(n) | Throughput::Elements(n) => n as f64,
            };
            units * 1e9 / self.median_ns
        })
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.record(id, b);
        self
    }

    /// Benchmark a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.record(id, b);
        self
    }

    fn record(&mut self, id: String, mut b: Bencher) {
        let m = Measurement {
            id,
            median_ns: b.median_ns(),
            throughput: self.throughput,
        };
        match m.per_second() {
            Some(rate) if matches!(m.throughput, Some(Throughput::Elements(_))) => {
                println!(
                    "{:<60} {:>14.0} ns/iter {:>16.0} elem/s",
                    m.id, m.median_ns, rate
                )
            }
            Some(rate) => println!(
                "{:<60} {:>14.0} ns/iter {:>16.0} B/s",
                m.id, m.median_ns, rate
            ),
            None => println!("{:<60} {:>14.0} ns/iter", m.id, m.median_ns),
        }
        self.criterion.measurements.push(m);
    }

    /// End the group (report already emitted incrementally).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Everything measured so far, in execution order.
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone())
            .bench_function("base", f);
        self
    }
}

/// Group several bench functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1000)).sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.measurements.len(), 2);
        assert!(c.measurements[0].median_ns > 0.0);
        assert!(c.measurements[0].per_second().unwrap() > 0.0);
        assert_eq!(c.measurements[1].id, "g/sum/8");
    }
}

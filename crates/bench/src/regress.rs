//! The perf-regression gate: compare a fresh bench run against the
//! committed `BENCH_*.json` baselines and the run-ledger history.
//!
//! Thresholds are noise-aware by construction rather than by fudging:
//!
//! * **Budget fields** are *paired* measurements the benches already
//!   compute from interleaved median batches (e.g. the traced-vs-
//!   untraced overhead percentages, the CRC trailer overhead). Pairing
//!   cancels machine speed, so a fixed ceiling is meaningful on any
//!   host.
//! * **Ratio fields** are deterministic byte counts (segment sizes from
//!   seeded workloads), identical across machines — those get tight
//!   tolerances against the committed baseline.
//! * **Ledger history** groups records by full config fingerprint.
//!   Deterministic byte counters must be *identical* across a group;
//!   wall-clock only gates when a group has enough history for a median
//!   and only flags slowdowns.
//!
//! Raw `median_ns` numbers are deliberately never compared across
//! files: they are machine-dependent and a fresh-vs-committed
//! comparison would gate on hardware, not code.

use crate::json::Json;
use crate::ledger::parse_ledger;
use scihadoop_mapreduce::obs::LedgerRecord;
use scihadoop_mapreduce::Counter;
use std::path::Path;

/// An absolute ceiling/floor on a paired benchmark field.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Which committed BENCH file carries the field.
    pub file: &'static str,
    /// The field name.
    pub field: &'static str,
    /// Upper bound, if any.
    pub max: Option<f64>,
    /// Lower bound, if any.
    pub min: Option<f64>,
}

/// Every budget the gate enforces. The obs overheads, the CRC trailer
/// budget, and the shuffle-spill budget restate the limits DESIGN.md
/// pins (≤3% tracing, ≤6% CRC, ≤10% end-to-end spill serving, ≤5%
/// end-to-end wire-lz compression); the ifile bounds protect the
/// paper-facing v3 compression result (0.288× committed, gated at
/// ≤0.35×) and its skip rate; the lz-vs-deflate floor protects the
/// fast-codec throughput claim (≥3× deflate compress, §"LZ-class
/// codec" in DESIGN.md).
pub const BUDGETS: &[Budget] = &[
    Budget {
        file: "BENCH_obs.json",
        field: "map_sort_spill_overhead_percent",
        max: Some(3.0),
        min: None,
    },
    Budget {
        file: "BENCH_obs.json",
        field: "merge_reduce_overhead_percent",
        max: Some(3.0),
        min: None,
    },
    Budget {
        file: "BENCH_obs.json",
        field: "map_sort_spill_ledger_overhead_percent",
        max: Some(3.0),
        min: None,
    },
    Budget {
        file: "BENCH_shuffle.json",
        field: "crc_trailer_overhead_pct",
        max: Some(6.0),
        min: None,
    },
    Budget {
        file: "BENCH_shuffle.json",
        field: "shuffle_spill_overhead_pct",
        max: Some(10.0),
        min: None,
    },
    Budget {
        file: "BENCH_shuffle.json",
        field: "wire_lz_overhead_pct",
        max: Some(5.0),
        min: None,
    },
    Budget {
        file: "BENCH_codec.json",
        field: "size_regression_percent",
        max: Some(1.0),
        min: None,
    },
    Budget {
        file: "BENCH_codec.json",
        field: "lz_vs_deflate_compress_speedup",
        max: None,
        min: Some(3.0),
    },
    Budget {
        file: "BENCH_ifile.json",
        field: "v3_over_v2_bytes",
        max: Some(0.35),
        min: None,
    },
    Budget {
        file: "BENCH_ifile.json",
        field: "block_skip_rate_disjoint",
        max: None,
        min: Some(0.8),
    },
];

/// A deterministic field compared fresh-vs-baseline with a relative
/// tolerance. Only byte-derived fields belong here.
#[derive(Debug, Clone, Copy)]
pub struct RatioCheck {
    /// Which BENCH file carries the field.
    pub file: &'static str,
    /// The field name.
    pub field: &'static str,
    /// Allowed relative deviation from the committed baseline.
    pub rel_tol: f64,
}

/// Deterministic fresh-vs-baseline checks. The ifile segment byte
/// counts come from a seeded workload, so any deviation means the
/// writer or the workload changed — either way the baseline is stale.
pub const RATIO_CHECKS: &[RatioCheck] = &[
    RatioCheck {
        file: "BENCH_ifile.json",
        field: "v2_segment_bytes",
        rel_tol: 0.001,
    },
    RatioCheck {
        file: "BENCH_ifile.json",
        field: "v3_segment_bytes",
        rel_tol: 0.001,
    },
    RatioCheck {
        file: "BENCH_ifile.json",
        field: "v3_over_v2_bytes",
        rel_tol: 0.01,
    },
];

/// Counters that must be byte-identical across runs of the same config
/// on the same workload. Merge-order-sensitive (`blocks_skipped`) and
/// fault-path counters are deliberately absent.
const DETERMINISTIC_COUNTERS: &[Counter] = &[
    Counter::MapInputRecords,
    Counter::MapOutputRecords,
    Counter::MapOutputBytes,
    Counter::MapOutputKeyBytes,
    Counter::MapOutputValueBytes,
    Counter::MapOutputFramingBytes,
    Counter::MapOutputMaterializedBytes,
    Counter::MapOutputSegments,
    Counter::MapOutputKeySavedBytes,
    Counter::BlocksWritten,
    Counter::CombineInputRecords,
    Counter::CombineOutputRecords,
    Counter::Spills,
    Counter::ShuffleBytes,
    Counter::ReduceInputRecords,
    Counter::ReduceInputGroups,
    Counter::ReduceOutputRecords,
    Counter::ReduceOutputBytes,
];

/// Latest-vs-median wall-clock slowdown tolerance for ledger groups.
/// Wall clocks are the one genuinely noisy signal the ledger gates on,
/// so the bar is high and only slowdowns count.
pub const LEDGER_WALL_SLOWDOWN_TOLERANCE: f64 = 0.75;

/// Ceiling on the share of distributed reduce-side wall time the
/// coordinator spent blocked waiting for unfinished map output
/// (`shuffle_fetch_wait_percent`). Fetch-while-map overlap means *some*
/// waiting is the design working; waiting for nearly the whole reduce
/// phase means the pipelining has regressed to a serial barrier.
pub const SHUFFLE_FETCH_WAIT_MAX_PERCENT: f64 = 90.0;

/// One evaluated check.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Human-readable check identity (`file · field` or ledger group).
    pub name: String,
    /// The observed value.
    pub value: String,
    /// The limit it was held against.
    pub limit: String,
    /// Whether the check passed.
    pub ok: bool,
}

impl GateCheck {
    fn pass(name: String, value: String, limit: String) -> GateCheck {
        GateCheck {
            name,
            value,
            limit,
            ok: true,
        }
    }

    fn fail(name: String, value: String, limit: String) -> GateCheck {
        GateCheck {
            name,
            value,
            limit,
            ok: false,
        }
    }
}

/// Evaluate every budget that applies to `file` against `doc`. A
/// missing field fails: a silently dropped budget field would otherwise
/// disable its gate forever.
pub fn check_budgets(doc: &Json, file: &str) -> Vec<GateCheck> {
    let mut out = Vec::new();
    for b in BUDGETS.iter().filter(|b| b.file == file) {
        let name = format!("{file} · {}", b.field);
        let limit = match (b.max, b.min) {
            (Some(max), None) => format!("<= {max}"),
            (None, Some(min)) => format!(">= {min}"),
            (Some(max), Some(min)) => format!("{min} ..= {max}"),
            (None, None) => "(unbounded)".to_string(),
        };
        match doc.get(b.field).and_then(Json::as_f64) {
            None => out.push(GateCheck::fail(name, "missing".into(), limit)),
            Some(v) => {
                let ok = b.max.is_none_or(|max| v <= max) && b.min.is_none_or(|min| v >= min);
                let check = if ok {
                    GateCheck::pass(name, format!("{v}"), limit)
                } else {
                    GateCheck::fail(name, format!("{v}"), limit)
                };
                out.push(check);
            }
        }
    }
    out
}

/// Evaluate the deterministic fresh-vs-baseline ratio checks for `file`.
pub fn check_ratios(fresh: &Json, baseline: &Json, file: &str) -> Vec<GateCheck> {
    let mut out = Vec::new();
    for r in RATIO_CHECKS.iter().filter(|r| r.file == file) {
        let name = format!("{file} · {} vs baseline", r.field);
        let limit = format!("rel dev <= {}", r.rel_tol);
        match (
            fresh.get(r.field).and_then(Json::as_f64),
            baseline.get(r.field).and_then(Json::as_f64),
        ) {
            (Some(f), Some(b)) => {
                let dev = if b == 0.0 {
                    if f == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    ((f - b) / b).abs()
                };
                let value = format!("{f} vs {b} (dev {dev:.4})");
                if dev <= r.rel_tol {
                    out.push(GateCheck::pass(name, value, limit));
                } else {
                    out.push(GateCheck::fail(name, value, limit));
                }
            }
            (f, b) => out.push(GateCheck::fail(
                name,
                format!(
                    "fresh {}, baseline {}",
                    if f.is_some() { "present" } else { "missing" },
                    if b.is_some() { "present" } else { "missing" }
                ),
                limit,
            )),
        }
    }
    out
}

/// Full-config fingerprint: records only compare within identical
/// (label, config, workload-shape) groups.
fn fingerprint(r: &LedgerRecord) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:?}|{}|{}",
        r.label,
        r.config.codec,
        r.config.block_kib,
        r.config.num_reducers,
        r.config.map_slots,
        r.config.reduce_slots,
        r.config.spill_buffer_bytes,
        r.config.framing,
        r.config.ifile_version,
        r.config.combiner,
        r.config.fault_seed,
        r.config.task_retries,
        r.job.num_maps,
    )
}

/// Gate the ledger history: within each config group, deterministic
/// byte counters must be identical (clean runs only — fault schedules
/// interleave with thread timing), and with three or more runs of
/// history the latest wall clock must not exceed the group median by
/// more than [`LEDGER_WALL_SLOWDOWN_TOLERANCE`].
pub fn check_ledger_history(records: &[LedgerRecord]) -> Vec<GateCheck> {
    let mut out = Vec::new();
    let mut groups: Vec<(String, Vec<&LedgerRecord>)> = Vec::new();
    for r in records {
        let fp = fingerprint(r);
        match groups.iter_mut().find(|(g, _)| *g == fp) {
            Some((_, members)) => members.push(r),
            None => groups.push((fp, vec![r])),
        }
    }

    for (_, members) in &groups {
        let first = members[0];
        let group = format!("ledger · {} ({} runs)", first.label, members.len());
        if members.len() < 2 {
            continue;
        }

        if first.config.fault_seed.is_none() {
            let mut mismatches = Vec::new();
            for &c in DETERMINISTIC_COUNTERS {
                let v0 = first.counters.get(c);
                if members.iter().any(|m| m.counters.get(c) != v0) {
                    mismatches.push(c.name());
                }
            }
            if mismatches.is_empty() {
                out.push(GateCheck::pass(
                    format!("{group} · byte determinism"),
                    format!("{} counters identical", DETERMINISTIC_COUNTERS.len()),
                    "exact".into(),
                ));
            } else {
                out.push(GateCheck::fail(
                    format!("{group} · byte determinism"),
                    format!("drifted: {}", mismatches.join(", ")),
                    "exact".into(),
                ));
            }
        }

        if members.len() >= 3 {
            let mut walls: Vec<u64> = members
                .iter()
                .map(|m| m.job.map_wall_nanos + m.job.reduce_wall_nanos)
                .collect();
            let latest = *walls.last().expect("non-empty group");
            walls.sort_unstable();
            let median = walls[walls.len() / 2];
            let limit = median as f64 * (1.0 + LEDGER_WALL_SLOWDOWN_TOLERANCE);
            let name = format!("{group} · wall vs median");
            let value = format!("{latest} ns vs median {median} ns");
            if median == 0 || (latest as f64) <= limit {
                out.push(GateCheck::pass(
                    name,
                    value,
                    format!("<= median × {}", 1.0 + LEDGER_WALL_SLOWDOWN_TOLERANCE),
                ));
            } else {
                out.push(GateCheck::fail(
                    name,
                    value,
                    format!("<= median × {}", 1.0 + LEDGER_WALL_SLOWDOWN_TOLERANCE),
                ));
            }
        }
    }
    out
}

/// Gate the distributed runs' shuffle pipelining: for every record that
/// carries fetch-wait time (only distributed coordinators charge
/// `ShuffleFetchWaitNanos`), the wait as a share of aggregate
/// reduce-slot wall time must stay under
/// [`SHUFFLE_FETCH_WAIT_MAX_PERCENT`]. In-process records (wait = 0)
/// produce no check.
pub fn check_shuffle_wait(records: &[LedgerRecord]) -> Vec<GateCheck> {
    let mut out = Vec::new();
    for r in records {
        let wait = r.counters.get(Counter::ShuffleFetchWaitNanos);
        if wait == 0 {
            continue;
        }
        let slot_wall = (r.job.reduce_wall_nanos * r.config.reduce_slots.max(1)).max(1);
        let percent = 100.0 * wait as f64 / slot_wall as f64;
        let name = format!("ledger · {} · shuffle_fetch_wait_percent", r.label);
        let value = format!("{percent:.1}% ({wait} ns of {slot_wall} slot-ns)");
        let limit = format!("<= {SHUFFLE_FETCH_WAIT_MAX_PERCENT}");
        if percent <= SHUFFLE_FETCH_WAIT_MAX_PERCENT {
            out.push(GateCheck::pass(name, value, limit));
        } else {
            out.push(GateCheck::fail(name, value, limit));
        }
    }
    out
}

/// The four committed BENCH baselines.
pub const BENCH_FILES: &[&str] = &[
    "BENCH_obs.json",
    "BENCH_shuffle.json",
    "BENCH_codec.json",
    "BENCH_ifile.json",
];

/// Run the whole gate. For each BENCH file, budgets run against the
/// fresh copy when one exists in `fresh_dir` (that is the regression
/// check) and otherwise against the committed baseline (that still
/// catches a bad baseline being committed); ratio checks need both
/// copies. `ledger`, when given, adds the history checks.
pub fn run_gate(fresh_dir: &Path, baseline_dir: &Path, ledger: Option<&Path>) -> Vec<GateCheck> {
    let mut out = Vec::new();
    // A missing file is an expected state (not every CI job regenerates
    // every bench); an unreadable one is a violation.
    let read = |file: &str, dir: &Path| -> Result<Option<Json>, String> {
        match std::fs::read_to_string(dir.join(file)) {
            Err(_) => Ok(None),
            Ok(text) => crate::json::parse(&text).map(Some),
        }
    };

    for file in BENCH_FILES {
        let fresh = match read(file, fresh_dir) {
            Ok(v) => v,
            Err(e) => {
                out.push(GateCheck::fail(
                    format!("{file} (fresh)"),
                    format!("unparseable: {e}"),
                    "valid JSON".into(),
                ));
                None
            }
        };
        let baseline = match read(file, baseline_dir) {
            Ok(v) => v,
            Err(e) => {
                out.push(GateCheck::fail(
                    format!("{file} (baseline)"),
                    format!("unparseable: {e}"),
                    "valid JSON".into(),
                ));
                None
            }
        };
        match (&fresh, &baseline) {
            (Some(f), Some(b)) => {
                out.extend(check_budgets(f, file));
                out.extend(check_ratios(f, b, file));
            }
            (Some(f), None) => out.extend(check_budgets(f, file)),
            (None, Some(b)) => out.extend(check_budgets(b, file)),
            (None, None) => out.push(GateCheck::fail(
                (*file).to_string(),
                "missing in both fresh and baseline dirs".into(),
                "present".into(),
            )),
        }
    }

    if let Some(path) = ledger {
        match std::fs::read_to_string(path) {
            Err(e) => out.push(GateCheck::fail(
                format!("ledger {}", path.display()),
                format!("unreadable: {e}"),
                "readable".into(),
            )),
            Ok(text) => match parse_ledger(&text) {
                Err(e) => out.push(GateCheck::fail(
                    format!("ledger {}", path.display()),
                    e,
                    "parseable records".into(),
                )),
                Ok(records) => {
                    out.extend(check_ledger_history(&records));
                    out.extend(check_shuffle_wait(&records));
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn budgets_pass_on_the_committed_numbers() {
        let obs = parse(
            r#"{"map_sort_spill_overhead_percent": 1.88,
                "merge_reduce_overhead_percent": -0.35,
                "map_sort_spill_ledger_overhead_percent": 2.1}"#,
        )
        .unwrap();
        let checks = check_budgets(&obs, "BENCH_obs.json");
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");
    }

    #[test]
    fn gate_fails_on_a_degraded_overhead() {
        let degraded = parse(
            r#"{"map_sort_spill_overhead_percent": 9.9,
                "merge_reduce_overhead_percent": -0.35,
                "map_sort_spill_ledger_overhead_percent": 2.1}"#,
        )
        .unwrap();
        let checks = check_budgets(&degraded, "BENCH_obs.json");
        let bad: Vec<_> = checks.iter().filter(|c| !c.ok).collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].name.contains("map_sort_spill_overhead_percent"));
    }

    #[test]
    fn missing_budget_fields_fail_closed() {
        let empty = parse("{}").unwrap();
        let checks = check_budgets(&empty, "BENCH_shuffle.json");
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| !c.ok));
        assert!(checks.iter().all(|c| c.value == "missing"));
    }

    #[test]
    fn lz_throughput_floor_gates_slow_compressors() {
        let fast =
            parse(r#"{"size_regression_percent": 0.5, "lz_vs_deflate_compress_speedup": 12.4}"#)
                .unwrap();
        let checks = check_budgets(&fast, "BENCH_codec.json");
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");
        // A speedup below the 3x floor fails: the fast codec's whole
        // reason to exist is being cheap enough to always leave on.
        let slow =
            parse(r#"{"size_regression_percent": 0.5, "lz_vs_deflate_compress_speedup": 1.2}"#)
                .unwrap();
        let checks = check_budgets(&slow, "BENCH_codec.json");
        let bad: Vec<_> = checks.iter().filter(|c| !c.ok).collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].name.contains("lz_vs_deflate_compress_speedup"));
    }

    #[test]
    fn ratio_checks_flag_byte_drift() {
        let baseline = parse(
            r#"{"v2_segment_bytes": 860010, "v3_segment_bytes": 247996,
                "v3_over_v2_bytes": 0.288}"#,
        )
        .unwrap();
        let same = check_ratios(&baseline, &baseline, "BENCH_ifile.json");
        assert!(same.iter().all(|c| c.ok));
        let drifted = parse(
            r#"{"v2_segment_bytes": 860010, "v3_segment_bytes": 300000,
                "v3_over_v2_bytes": 0.349}"#,
        )
        .unwrap();
        let checks = check_ratios(&drifted, &baseline, "BENCH_ifile.json");
        assert!(checks.iter().any(|c| !c.ok));
    }

    fn record(label: &str, shuffle_bytes: u64, wall: u64) -> LedgerRecord {
        use scihadoop_mapreduce::obs::{LedgerConfig, LedgerJob, PhaseRollup, NUM_PHASES};
        use scihadoop_mapreduce::Counters;
        let counters = Counters::new();
        counters.add(Counter::ShuffleBytes, shuffle_bytes);
        LedgerRecord {
            label: label.into(),
            clock: "thread_cpu".into(),
            host_cpus: 1,
            config: LedgerConfig {
                codec: "identity".into(),
                block_kib: 0,
                num_reducers: 1,
                map_slots: 2,
                reduce_slots: 2,
                spill_buffer_bytes: 1024,
                framing: "sequence_file".into(),
                ifile_version: 2,
                combiner: false,
                task_retries: 0,
                fault_seed: None,
            },
            job: LedgerJob {
                num_maps: 1,
                num_reducers: 1,
                input_bytes: 100,
                map_wall_nanos: wall,
                reduce_wall_nanos: 0,
            },
            counters: counters.snapshot(),
            phases: [PhaseRollup::default(); NUM_PHASES],
            hists: Vec::new(),
        }
    }

    #[test]
    fn ledger_history_demands_byte_determinism() {
        let ok = check_ledger_history(&[record("a", 100, 10), record("a", 100, 12)]);
        assert!(ok.iter().all(|c| c.ok), "{ok:?}");
        let bad = check_ledger_history(&[record("a", 100, 10), record("a", 101, 12)]);
        assert!(bad.iter().any(|c| !c.ok && c.name.contains("determinism")));
    }

    #[test]
    fn ledger_history_flags_wall_slowdowns_only_with_enough_history() {
        // Two runs: no wall check at all.
        let two = check_ledger_history(&[record("a", 1, 100), record("a", 1, 1000)]);
        assert!(two.iter().all(|c| !c.name.contains("wall")));
        // Three runs, latest 10x the median: flagged.
        let slow = check_ledger_history(&[
            record("a", 1, 100),
            record("a", 1, 110),
            record("a", 1, 1100),
        ]);
        assert!(slow.iter().any(|c| !c.ok && c.name.contains("wall")));
        // Latest faster than median: fine.
        let fast =
            check_ledger_history(&[record("a", 1, 100), record("a", 1, 110), record("a", 1, 50)]);
        assert!(fast
            .iter()
            .filter(|c| c.name.contains("wall"))
            .all(|c| c.ok));
    }

    #[test]
    fn shuffle_wait_budget_gates_only_distributed_records() {
        // In-process record: no fetch-wait counter, no check.
        assert!(check_shuffle_wait(&[record("local", 100, 1000)]).is_empty());

        let dist = |wait: u64, reduce_wall: u64| {
            use scihadoop_mapreduce::Counters;
            let mut r = record("dist", 100, 10);
            r.job.reduce_wall_nanos = reduce_wall;
            let counters = Counters::new();
            counters.add(Counter::ShuffleFetchWaitNanos, wait);
            r.counters = counters.snapshot();
            r
        };
        // 500 ns waited of 2 slots × 1000 ns = 25%: fine.
        let ok = check_shuffle_wait(&[dist(500, 1000)]);
        assert_eq!(ok.len(), 1);
        assert!(ok[0].ok, "{ok:?}");
        // 1950 of 2000 slot-ns = 97.5%: the pipelining regressed.
        let bad = check_shuffle_wait(&[dist(1950, 1000)]);
        assert!(!bad[0].ok, "{bad:?}");
        assert!(bad[0].name.contains("shuffle_fetch_wait_percent"));
    }

    #[test]
    fn different_configs_never_compare() {
        let mut other = record("a", 999, 10);
        other.config.ifile_version = 3;
        let checks = check_ledger_history(&[record("a", 100, 10), other]);
        assert!(checks.is_empty(), "singleton groups produce no checks");
    }
}

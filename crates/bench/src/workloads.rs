//! Deterministic workload generators shared by the experiments.

use scihadoop_grid::{GridWalker, RowMajorWalker, Shape, Variable};

/// The Fig. 3 byte stream: "a raw stream of triples of 32-bit integers,
/// taken by walking a grid" — n³ cells × 12 bytes.
pub fn grid_key_stream(n: u32) -> Vec<u8> {
    RowMajorWalker::cube(n, 3).key_stream_be()
}

/// The §I / Fig. 8 dataset: an n³ grid of integers.
pub fn int_cube(n: u32, seed: u64) -> Variable {
    Variable::random_i32("grid", Shape::cube(n, 3), 1_000_000, seed).expect("valid shape")
}

/// The cluster-experiment dataset: an n×n grid of integers (the paper
/// uses 8000×8000; experiments run a scaled-down grid and scale the
/// stats).
pub fn int_square(n: u32, seed: u64) -> Variable {
    Variable::random_i32("grid", Shape::new(vec![n, n]), 1_000_000, seed).expect("valid shape")
}

/// A float field named `windspeed1`, as in the paper's §I example.
pub fn windspeed_cube(n: u32, seed: u64) -> Variable {
    Variable::smooth_f32("windspeed1", Shape::cube(n, 3), seed).expect("valid shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_stream_size_matches_fig3() {
        assert_eq!(grid_key_stream(10).len(), 12_000);
        // The paper's full size: 100³ × 12 = 12,000,000 (too big for a
        // unit test to build twice, checked arithmetically).
        assert_eq!(100u64 * 100 * 100 * 12, 12_000_000);
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(int_cube(8, 1).raw_data(), int_cube(8, 1).raw_data());
        assert_eq!(windspeed_cube(4, 2).name(), "windspeed1");
        assert_eq!(int_square(16, 3).shape().extents(), &[16, 16]);
    }
}

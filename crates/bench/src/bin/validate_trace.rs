//! `validate_trace` — sanity-check the files written by
//! `repro --trace <path> --metrics <path> [--ledger <path>]`.
//!
//! ```text
//! validate_trace <trace.json> <metrics.json> [<ledger.jsonl>]
//! ```
//!
//! Verifies, with the in-tree JSON parser (no external deps):
//!
//! * both files are well-formed JSON;
//! * the Chrome trace contains complete ("X") span events for **all
//!   nine** pipeline stages, with non-negative timestamps/durations,
//!   thread-name metadata, and the v3 counter ("C") tracks;
//! * the metrics report carries the expected schema tag, a clock
//!   designator, per-phase span rollups, and counters;
//! * the derived intermediate breakdown in the metrics report equals
//!   the exported counters **exactly** (the reconciliation the obs
//!   layer promises);
//! * when a ledger is given, every line parses strictly, re-encodes to
//!   the exact input bytes, and the records jointly cover all nine
//!   phases with live counters.
//!
//! Exits 0 when every check passes, 1 otherwise (printing each failure).

use scihadoop_bench::json::{self, Json};
use scihadoop_bench::ledger::parse_line;
use scihadoop_mapreduce::obs::{ALL_PHASES, METRICS_SCHEMA, NUM_PHASES};
use scihadoop_mapreduce::Counter;

fn check_trace(doc: &Json, errs: &mut Vec<String>) {
    let events = match doc.get("traceEvents").and_then(|e| e.as_arr()) {
        Some(events) => events,
        None => {
            errs.push("trace: missing traceEvents array".into());
            return;
        }
    };
    let mut span_names: Vec<&str> = Vec::new();
    let mut counter_names: Vec<&str> = Vec::new();
    let mut thread_names = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        match ph {
            "X" => {
                match ev.get("name").and_then(|n| n.as_str()) {
                    Some(name) => span_names.push(name),
                    None => errs.push(format!("trace: event {i} has no name")),
                }
                for field in ["ts", "dur"] {
                    match ev.get(field).and_then(|v| v.as_f64()) {
                        Some(v) if v >= 0.0 => {}
                        _ => errs.push(format!("trace: event {i} has bad {field}")),
                    }
                }
            }
            "C" => {
                match ev.get("name").and_then(|n| n.as_str()) {
                    Some(name) => counter_names.push(name),
                    None => errs.push(format!("trace: counter event {i} has no name")),
                }
                if !matches!(ev.get("args"), Some(Json::Obj(_))) {
                    errs.push(format!("trace: counter event {i} has no args object"));
                }
            }
            "M" => {
                if ev.get("name").and_then(|n| n.as_str()) == Some("thread_name") {
                    thread_names += 1;
                }
            }
            "i" | "" => {}
            other => errs.push(format!("trace: event {i} has unknown ph {other:?}")),
        }
    }
    for phase in ALL_PHASES {
        if !span_names.contains(&phase.name()) {
            errs.push(format!("trace: no span events for stage {}", phase.name()));
        }
    }
    for track in ["v3_blocks", "v3_key_saved"] {
        if !counter_names.contains(&track) {
            errs.push(format!("trace: no counter track {track:?}"));
        }
    }
    if thread_names == 0 {
        errs.push("trace: no thread_name metadata events".into());
    }
}

fn check_metrics(doc: &Json, errs: &mut Vec<String>) {
    if doc.get("schema").and_then(|s| s.as_str()) != Some(METRICS_SCHEMA) {
        errs.push(format!("metrics: schema tag is not {METRICS_SCHEMA:?}"));
    }
    match doc.get("clock").and_then(|c| c.as_str()) {
        Some("thread_cpu" | "wall") => {}
        other => errs.push(format!("metrics: bad clock designator {other:?}")),
    }
    for phase in ALL_PHASES {
        let count = doc
            .get_path(&["spans", phase.name(), "count"])
            .and_then(|c| c.as_u64());
        match count {
            Some(n) if n > 0 => {}
            _ => errs.push(format!(
                "metrics: no span rollup for stage {}",
                phase.name()
            )),
        }
    }
    let counter = |name: &str| doc.get_path(&["counters", name]).and_then(|v| v.as_u64());
    let derived = |name: &str| {
        doc.get_path(&["derived", "intermediate_breakdown", name])
            .and_then(|v| v.as_u64())
    };
    // The reconciliation promise: histogram-derived bytes == counters.
    for (derived_field, counter_name) in [
        ("segments", "map_output_segments"),
        ("key_bytes", "map_output_key_bytes"),
        ("value_bytes", "map_output_value_bytes"),
        ("framing_bytes", "map_output_framing_bytes"),
        ("raw_bytes", "map_output_bytes"),
        ("materialized_bytes", "map_output_materialized_bytes"),
    ] {
        match (derived(derived_field), counter(counter_name)) {
            (Some(d), Some(c)) if d == c => {}
            (d, c) => errs.push(format!(
                "metrics: derived {derived_field} ({d:?}) != counter {counter_name} ({c:?})"
            )),
        }
    }
    if counter("map_output_bytes") == Some(0) {
        errs.push("metrics: counters recorded no map output".into());
    }
}

/// Every ledger line must parse strictly and re-encode to the exact
/// input bytes; jointly the records must cover all nine phases and
/// carry live counters.
fn check_ledger(text: &str, errs: &mut Vec<String>) {
    let mut phase_counts = [0u64; NUM_PHASES];
    let mut records = 0usize;
    let mut map_output = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Err(e) => errs.push(format!("ledger: line {}: {e}", i + 1)),
            Ok(record) => {
                records += 1;
                if record.to_json_line() != line {
                    errs.push(format!(
                        "ledger: line {} does not re-encode byte-identically",
                        i + 1
                    ));
                }
                for (slot, p) in phase_counts.iter_mut().zip(record.phases.iter()) {
                    *slot += p.count;
                }
                map_output += record.counters.get(Counter::MapOutputBytes);
            }
        }
    }
    if records == 0 {
        errs.push("ledger: no records".into());
        return;
    }
    for (phase, &count) in ALL_PHASES.iter().zip(phase_counts.iter()) {
        if count == 0 {
            errs.push(format!(
                "ledger: no {} spans across any record",
                phase.name()
            ));
        }
    }
    if map_output == 0 {
        errs.push("ledger: records carry no map output bytes".into());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, metrics_path, ledger_path) = match args.as_slice() {
        [t, m] => (t, m, None),
        [t, m, l] => (t, m, Some(l)),
        _ => {
            eprintln!("usage: validate_trace <trace.json> <metrics.json> [<ledger.jsonl>]");
            std::process::exit(2);
        }
    };

    let mut errs: Vec<String> = Vec::new();
    for (label, path, check) in [
        (
            "trace",
            trace_path,
            check_trace as fn(&Json, &mut Vec<String>),
        ),
        ("metrics", metrics_path, check_metrics),
    ] {
        match std::fs::read_to_string(path) {
            Ok(text) => match json::parse(&text) {
                Ok(doc) => check(&doc, &mut errs),
                Err(e) => errs.push(format!("{label}: {e}")),
            },
            Err(e) => errs.push(format!("{label}: cannot read {path}: {e}")),
        }
    }
    if let Some(path) = ledger_path {
        match std::fs::read_to_string(path) {
            Ok(text) => check_ledger(&text, &mut errs),
            Err(e) => errs.push(format!("ledger: cannot read {path}: {e}")),
        }
    }

    if errs.is_empty() {
        println!(
            "ok: trace covers all {} stages and metrics reconcile{}",
            ALL_PHASES.len(),
            if ledger_path.is_some() {
                "; ledger roundtrips byte-identically"
            } else {
                ""
            }
        );
    } else {
        for e in &errs {
            eprintln!("FAIL {e}");
        }
        std::process::exit(1);
    }
}

//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--small] [--trace <path>] [--metrics <path>]
//!       [--ledger <path>] [--reconcile <path>]
//!
//! EXPERIMENT:
//!   intro      §I intermediate-file overhead numbers
//!   fig3       byte-level compression table
//!   strides    §III-A stride ablation (sizes + brute-force slowdown)
//!   fig4       transform time vs file size
//!   fig8       key aggregation data-size breakdown
//!   cluster    §III-E / §IV-D simulated cluster runs
//!   trace      traced pipeline: per-stage spans + histogram breakdowns
//!   model_drift  cost-model predictions vs measured ledger records
//!   curves     §IV-A curve ablation
//!   flush      §IV-A flush-threshold ablation
//!   align      §IV-C alignment ablation
//!   splits     §IV-B key-splitting inflation
//!   coalesce   §IV-B future work: reducer-side re-aggregation
//!   tuning     §III-A detector tuning
//!   scaling    per-cell byte-scaling sanity check
//!   fault_storm  fault-injected run vs clean run (byte-identical recovery)
//!   dist       multi-process shuffle service vs local engine (clean and
//!              fault-seeded runs, byte-identical outputs asserted)
//!   all        everything above except dist (default)
//!
//! --small runs reduced problem sizes (CI-friendly).
//! --workers <n> sets the worker-process count for dist (default 3);
//!   --transport <tcp|uds> picks the socket family (default uds);
//!   --shuffle-mem-kib <n> bounds the coordinator's in-memory shuffle
//!   store (segments past the budget spill to disk and are served back
//!   by positioned reads; 0 spills everything; default auto-sizes from
//!   available memory); --wire-codec <identity|lz> turns on transparent
//!   shuffle compression (segments are lz-compressed once at publish,
//!   spill compressed, ship compressed to capable workers, and are
//!   inflated before the reduce-side CRC check — outputs stay
//!   byte-identical; default identity). Any of these flags implies the
//!   dist experiment when none is named.
//! --codec <name> sets the intermediate-data codec for fault_storm,
//!   composed from: [block-][transform+](identity|rle|lz|deflate|bzip),
//!   e.g. "block-transform+deflate" (the parallel block pipeline over
//!   the stride transform over deflate). --block-kib <n> sets the block
//!   size in KiB for every block- layer (default 256).
//! --ifile-version <1|2|3> sets the intermediate segment format for the
//!   trace and fault_storm experiments: 1 = plain, 2 = CRC-trailed flat
//!   (default), 3 = front-coded sorted blocks with fence-key indexes.
//! --faults <spec> configures the fault_storm plan, e.g.
//!   "seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2"
//!   (keys are optional; rates in [0,1]). --retries <n> sets the
//!   per-task retry budget (default 3; must be >= the plan's cap).
//! --trace <path> writes the traced pipeline's span timeline as Chrome
//!   trace_event JSON (open in about:tracing / Perfetto); --metrics
//!   <path> writes the self-describing JSON metrics report (counters,
//!   histograms, derived byte breakdowns). Either flag implies the
//!   `trace` experiment, as does --ledger.
//! --ledger <path> appends one self-describing JSON-lines run record per
//!   job (config, counters, phase rollups, histograms) — rich records
//!   from the trace/model_drift jobs, engine-hook records from
//!   fault_storm runs. The file accumulates history for the `regress`
//!   perf gate.
//! --reconcile <path> parses an existing ledger file and prints the
//!   cost-model drift report (predicted vs measured per run); a
//!   standalone action that runs no experiment unless one is named.
//! ```

use scihadoop_bench as bench;

struct Sizes {
    intro_n: u32,
    fig3_n: u32,
    stride_n: u32,
    stride_timing_n: u32,
    fig4: Vec<u32>,
    fig8_n: u32,
    cluster_n: u32,
    cluster_splits: usize,
    trace_n: u32,
    trace_records: usize,
    flush_n: u32,
    splits_n: u32,
    tuning_n: u32,
    scaling: Vec<u32>,
    storm_records: usize,
}

impl Sizes {
    fn full() -> Self {
        Sizes {
            intro_n: 100,
            fig3_n: 100,
            stride_n: 100,
            stride_timing_n: 50,
            fig4: vec![20, 40, 60, 80, 100],
            fig8_n: 100,
            cluster_n: 192,
            cluster_splits: 20,
            trace_n: 64,
            trace_records: 5_000,
            flush_n: 64,
            splits_n: 64,
            tuning_n: 50,
            scaling: vec![32, 64, 128],
            storm_records: 20_000,
        }
    }

    fn small() -> Self {
        Sizes {
            intro_n: 20,
            fig3_n: 24,
            stride_n: 24,
            stride_timing_n: 16,
            fig4: vec![12, 20, 28],
            fig8_n: 24,
            cluster_n: 48,
            cluster_splits: 8,
            trace_n: 24,
            trace_records: 600,
            flush_n: 24,
            splits_n: 24,
            tuning_n: 16,
            scaling: vec![16, 32],
            storm_records: 2_000,
        }
    }
}

fn main() {
    // Spawned worker processes re-execute this binary with the
    // SCIHADOOP_DIST_* environment set; divert before any argument
    // parsing (workers are spawned with no arguments).
    match scihadoop_mapreduce::dist::worker_env() {
        Ok(Some(env)) => std::process::exit(bench::dist_worker(&env)),
        Ok(None) => {}
        Err(e) => {
            eprintln!("bad worker environment: {e}");
            std::process::exit(2);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{name} requires a path argument");
                    std::process::exit(2);
                })
            })
            .cloned()
    };
    let trace_path = flag_value("--trace");
    let metrics_path = flag_value("--metrics");
    let ledger_path = flag_value("--ledger");
    let reconcile_path = flag_value("--reconcile");
    let fault_spec = flag_value("--faults").unwrap_or_else(|| {
        "seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2".into()
    });
    let fault_config = scihadoop_mapreduce::FaultConfig::parse(&fault_spec).unwrap_or_else(|e| {
        eprintln!("bad --faults spec: {e}");
        std::process::exit(2);
    });
    let retries: u32 = flag_value("--retries")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--retries requires an unsigned integer, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(3);
    let block_kib: usize = flag_value("--block-kib")
        .map(|v| {
            let kib: usize = v.parse().unwrap_or_else(|_| {
                eprintln!("--block-kib requires an unsigned integer, got {v:?}");
                std::process::exit(2);
            });
            if kib == 0 {
                eprintln!("--block-kib must be non-zero");
                std::process::exit(2);
            }
            kib
        })
        .unwrap_or(scihadoop_compress::DEFAULT_BLOCK_SIZE / 1024);
    let ifile_version = flag_value("--ifile-version")
        .map(|v| {
            scihadoop_mapreduce::IFileVersion::parse(&v).unwrap_or_else(|e| {
                eprintln!("bad --ifile-version: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or_default();
    let codec_name = flag_value("--codec");
    let codec = codec_name.as_ref().map(|name| {
        bench::codec_by_name_with_block_size(name, block_kib * 1024).unwrap_or_else(|e| {
            eprintln!("bad --codec: {e}");
            std::process::exit(2);
        })
    });
    let workers: Option<usize> = flag_value("--workers").map(|v| {
        let n: usize = v.parse().unwrap_or_else(|_| {
            eprintln!("--workers requires an unsigned integer, got {v:?}");
            std::process::exit(2);
        });
        if n == 0 {
            eprintln!("--workers must be non-zero");
            std::process::exit(2);
        }
        n
    });
    let transport = flag_value("--transport").map(|v| {
        scihadoop_mapreduce::Transport::parse(&v).unwrap_or_else(|e| {
            eprintln!("bad --transport: {e}");
            std::process::exit(2);
        })
    });
    let shuffle_mem: Option<usize> = flag_value("--shuffle-mem-kib").map(|v| {
        let kib: usize = v.parse().unwrap_or_else(|_| {
            eprintln!("--shuffle-mem-kib requires an unsigned integer, got {v:?}");
            std::process::exit(2);
        });
        kib << 10
    });
    let wire_codec = flag_value("--wire-codec").map(|v| {
        scihadoop_mapreduce::WireCodec::parse(&v).unwrap_or_else(|e| {
            eprintln!("bad --wire-codec: {e}");
            std::process::exit(2);
        })
    });
    // Positional experiment name: skip flags and their path values. With
    // only --trace/--metrics/--ledger given, default to the trace
    // experiment rather than the full suite; with only --reconcile, run
    // no experiment at all (reconcile is a standalone action).
    let mut which = if workers.is_some()
        || transport.is_some()
        || shuffle_mem.is_some()
        || wire_codec.is_some()
    {
        "dist".to_string()
    } else if trace_path.is_some() || metrics_path.is_some() || ledger_path.is_some() {
        "trace".to_string()
    } else if reconcile_path.is_some() {
        "none".to_string()
    } else {
        "all".to_string()
    };
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--trace"
            || a == "--metrics"
            || a == "--ledger"
            || a == "--reconcile"
            || a == "--faults"
            || a == "--retries"
            || a == "--codec"
            || a == "--block-kib"
            || a == "--ifile-version"
            || a == "--workers"
            || a == "--transport"
            || a == "--shuffle-mem-kib"
            || a == "--wire-codec"
        {
            skip_next = true;
        } else if !a.starts_with("--") {
            which = a.clone();
            break;
        }
    }
    let s = if small { Sizes::small() } else { Sizes::full() };

    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;

    if run("intro") {
        println!("{}", bench::intro_overhead(s.intro_n).render());
        ran = true;
    }
    if run("fig3") {
        println!("{}", bench::fig3(s.fig3_n, 100).0.render());
        ran = true;
    }
    if run("strides") {
        println!(
            "{}",
            bench::stride_ablation(s.stride_n, s.stride_timing_n).render()
        );
        ran = true;
    }
    if run("fig4") {
        println!("{}", bench::fig4(&s.fig4).0.render());
        ran = true;
    }
    if run("fig8") {
        println!("{}", bench::fig8(s.fig8_n, &[1, 10, 100]).0.render());
        ran = true;
    }
    if run("cluster") {
        println!(
            "{}",
            bench::cluster_experiment(s.cluster_n, s.cluster_splits)
                .0
                .render()
        );
        ran = true;
    }
    if run("trace") || trace_path.is_some() || metrics_path.is_some() {
        let (table, trace, counters, records) =
            bench::traced_pipeline(s.trace_n, s.trace_records, ifile_version);
        println!("{}", table.render());
        if let Some(path) = &trace_path {
            let json = scihadoop_mapreduce::obs::chrome_trace_json(&trace);
            std::fs::write(path, json).expect("write chrome trace");
            println!("wrote chrome trace to {path}");
        }
        if let Some(path) = &metrics_path {
            let json = scihadoop_mapreduce::obs::metrics_json(&trace, &counters);
            std::fs::write(path, json).expect("write metrics report");
            println!("wrote metrics report to {path}");
        }
        if let Some(path) = &ledger_path {
            let sink = scihadoop_mapreduce::obs::LedgerSink::with_path(path);
            let appended = records.len();
            for record in records {
                sink.append(record).expect("append ledger record");
            }
            println!("appended {appended} run records to {path}");
        }
        ran = true;
    }
    if run("model_drift") {
        let (table, _) = bench::model_drift(s.trace_n, s.trace_records, ifile_version);
        println!("{}", table.render());
        ran = true;
    }
    if run("curves") {
        println!("{}", bench::curve_ablation(6, 6).render());
        ran = true;
    }
    if run("flush") {
        println!(
            "{}",
            bench::flush_threshold(s.flush_n, &[1 << 10, 1 << 14, 1 << 20, 1 << 26]).render()
        );
        ran = true;
    }
    if run("align") {
        println!("{}", bench::alignment_ablation(&[8, 16, 64, 256]).render());
        ran = true;
    }
    if run("coalesce") {
        println!(
            "{}",
            bench::coalesce_recovery(s.splits_n, &[1, 2, 5, 10, 20]).render()
        );
        ran = true;
    }
    if run("splits") {
        println!(
            "{}",
            bench::split_counts(s.splits_n, &[1, 2, 5, 10, 20]).render()
        );
        ran = true;
    }
    if run("tuning") {
        println!("{}", bench::transform_tuning(s.tuning_n).render());
        ran = true;
    }
    if run("scaling") {
        println!(
            "{}",
            bench::scaling_check(&s.scaling)
                .expect("scaling check")
                .render()
        );
        ran = true;
    }
    if run("fault_storm") {
        let storm_sink = ledger_path
            .as_ref()
            .map(scihadoop_mapreduce::obs::LedgerSink::with_path);
        println!(
            "{}",
            bench::fault_storm_with_codec(
                s.storm_records,
                fault_config.clone(),
                retries,
                codec.clone(),
                ifile_version,
                storm_sink.as_ref(),
            )
            .render()
        );
        if let Some(sink) = &storm_sink {
            println!(
                "appended {} run records to {}",
                sink.len(),
                ledger_path.as_deref().unwrap_or_default()
            );
        }
        ran = true;
    }

    // dist spawns worker processes, so it only runs when asked for
    // explicitly (by name or via --workers/--transport), never as part
    // of `all`.
    if which == "dist" {
        if fault_config.attempt_cap > retries {
            eprintln!(
                "fault plan cap {} exceeds --retries {}; completion is not guaranteed",
                fault_config.attempt_cap, retries
            );
            std::process::exit(2);
        }
        let sink = ledger_path
            .as_ref()
            .map(scihadoop_mapreduce::obs::LedgerSink::with_path);
        let workers = workers.unwrap_or(3);
        let transport = transport.unwrap_or_default();
        let wire_codec = wire_codec.unwrap_or_default();
        let clean = bench::DistJobSpec {
            records: s.storm_records,
            ifile: ifile_version,
            codec: codec_name.clone().unwrap_or_else(|| "identity".into()),
            block_kib,
            ..bench::DistJobSpec::default()
        };
        let faulted = bench::DistJobSpec {
            retries,
            backoff_us: 50,
            faults: Some(fault_spec.clone()),
            ..clean.clone()
        };
        println!(
            "{}",
            bench::dist_equivalence(
                &clean,
                workers,
                transport,
                shuffle_mem,
                wire_codec,
                &[],
                sink.as_ref()
            )
            .render()
        );
        println!(
            "{}",
            bench::dist_equivalence(
                &faulted,
                workers,
                transport,
                shuffle_mem,
                wire_codec,
                &[],
                sink.as_ref()
            )
            .render()
        );
        if let Some(sink) = &sink {
            println!(
                "appended {} run records to {}",
                sink.len(),
                ledger_path.as_deref().unwrap_or_default()
            );
        }
        ran = true;
    }

    if let Some(path) = &reconcile_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read ledger {path}: {e}");
            std::process::exit(2);
        });
        let records = bench::ledger::parse_ledger(&text).unwrap_or_else(|e| {
            eprintln!("bad ledger {path}: {e}");
            std::process::exit(2);
        });
        let (table, _) = bench::drift_table(
            &format!("reconcile: {path} ({} runs)", records.len()),
            &records,
        );
        println!("{}", table.render());
        ran = true;
    }

    if !ran {
        eprintln!("unknown experiment '{which}'; see `repro --help` in the source header");
        std::process::exit(2);
    }
}

//! `regress` — the CI perf-regression gate.
//!
//! ```text
//! regress [--fresh <dir>] [--baseline <dir>] [--ledger <path>]
//! ```
//!
//! Compares freshly generated `BENCH_*.json` reports (in `--fresh`,
//! default `.`) against the committed baselines (in `--baseline`,
//! default `.`) and, when `--ledger` names a JSON-lines run ledger,
//! gates the run history too (byte determinism per config group,
//! latest-vs-median wall clock). Prints every check and exits nonzero
//! if any fails. See `regress.rs` in the library for the threshold
//! rationale — raw timings are never compared across machines.

use scihadoop_bench as bench;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{name} requires an argument");
                    std::process::exit(2);
                })
            })
            .cloned()
    };
    for a in &args {
        if a.starts_with("--") && !["--fresh", "--baseline", "--ledger"].contains(&a.as_str()) {
            eprintln!("unknown flag {a}; usage: regress [--fresh <dir>] [--baseline <dir>] [--ledger <path>]");
            std::process::exit(2);
        }
    }
    let fresh = PathBuf::from(flag_value("--fresh").unwrap_or_else(|| ".".into()));
    let baseline = PathBuf::from(flag_value("--baseline").unwrap_or_else(|| ".".into()));
    let ledger = flag_value("--ledger").map(PathBuf::from);

    let checks = bench::regress::run_gate(&fresh, &baseline, ledger.as_deref().map(Path::new));

    let mut table = bench::Table::new(
        &format!(
            "perf-regression gate: fresh {} vs baseline {}{}",
            fresh.display(),
            baseline.display(),
            ledger
                .as_ref()
                .map(|p| format!(", ledger {}", p.display()))
                .unwrap_or_default()
        ),
        &["check", "value", "limit", "verdict"],
    );
    let mut failures = 0usize;
    for c in &checks {
        table.row(&[
            c.name.clone(),
            c.value.clone(),
            c.limit.clone(),
            if c.ok { "ok".into() } else { "FAIL".into() },
        ]);
        if !c.ok {
            failures += 1;
        }
    }
    table.note(&format!("{} checks, {} failed", checks.len(), failures));
    println!("{}", table.render());

    if failures > 0 {
        std::process::exit(1);
    }
}

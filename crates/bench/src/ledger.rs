//! Parsing run-ledger JSON lines back into
//! [`LedgerRecord`]s via the hand-rolled [`json`](crate::json) parser.
//!
//! The parser is strict: every known field must be present and an
//! exact non-negative integer where the schema says so, and unknown
//! keys are rejected — a record that parses is guaranteed to re-encode
//! (via [`LedgerRecord::to_json_line`]) to the exact input bytes, which
//! is what the ledger validation in CI and the roundtrip proptest rely
//! on.

use crate::json::{parse, Json};
use scihadoop_mapreduce::obs::{
    LedgerConfig, LedgerHist, LedgerJob, LedgerRecord, PhaseRollup, ALL_METRICS, ALL_PHASES,
    LEDGER_SCHEMA, NUM_BUCKETS, NUM_PHASES,
};
use scihadoop_mapreduce::{Counters, ALL_COUNTERS};

fn req<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    req(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("{key:?} is not an exact non-negative integer"))
}

fn req_str(obj: &Json, key: &str) -> Result<String, String> {
    Ok(req(obj, key)?
        .as_str()
        .ok_or_else(|| format!("{key:?} is not a string"))?
        .to_string())
}

fn req_bool(obj: &Json, key: &str) -> Result<bool, String> {
    match req(obj, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{key:?} is not a boolean")),
    }
}

/// Reject keys outside `allowed` — an unknown key would silently vanish
/// on re-encode, breaking the byte-identical roundtrip guarantee.
fn check_keys(obj: &Json, what: &str, allowed: &[&str]) -> Result<(), String> {
    match obj {
        Json::Obj(members) => {
            for (k, _) in members {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("unknown {what} key {k:?}"));
                }
            }
            Ok(())
        }
        _ => Err(format!("{what} is not an object")),
    }
}

/// Parse one ledger record from an already-parsed JSON document.
pub fn parse_record(doc: &Json) -> Result<LedgerRecord, String> {
    check_keys(
        doc,
        "record",
        &[
            "schema",
            "label",
            "clock",
            "host_cpus",
            "config",
            "job",
            "counters",
            "phases",
            "histograms",
        ],
    )?;
    let schema = req_str(doc, "schema")?;
    if schema != LEDGER_SCHEMA {
        return Err(format!(
            "unsupported ledger schema {schema:?} (expected {LEDGER_SCHEMA:?})"
        ));
    }

    let cfg = req(doc, "config")?;
    check_keys(
        cfg,
        "config",
        &[
            "codec",
            "block_kib",
            "num_reducers",
            "map_slots",
            "reduce_slots",
            "spill_buffer_bytes",
            "framing",
            "ifile_version",
            "combiner",
            "task_retries",
            "fault_seed",
        ],
    )?;
    let fault_seed = match req(cfg, "fault_seed")? {
        Json::Null => None,
        v => Some(
            v.as_u64()
                .ok_or_else(|| "\"fault_seed\" is not an integer or null".to_string())?,
        ),
    };
    let config = LedgerConfig {
        codec: req_str(cfg, "codec")?,
        block_kib: req_u64(cfg, "block_kib")?,
        num_reducers: req_u64(cfg, "num_reducers")?,
        map_slots: req_u64(cfg, "map_slots")?,
        reduce_slots: req_u64(cfg, "reduce_slots")?,
        spill_buffer_bytes: req_u64(cfg, "spill_buffer_bytes")?,
        framing: req_str(cfg, "framing")?,
        ifile_version: req_u64(cfg, "ifile_version")?,
        combiner: req_bool(cfg, "combiner")?,
        task_retries: req_u64(cfg, "task_retries")?,
        fault_seed,
    };

    let job_obj = req(doc, "job")?;
    check_keys(
        job_obj,
        "job",
        &[
            "num_maps",
            "num_reducers",
            "input_bytes",
            "map_wall_nanos",
            "reduce_wall_nanos",
        ],
    )?;
    let job = LedgerJob {
        num_maps: req_u64(job_obj, "num_maps")?,
        num_reducers: req_u64(job_obj, "num_reducers")?,
        input_bytes: req_u64(job_obj, "input_bytes")?,
        map_wall_nanos: req_u64(job_obj, "map_wall_nanos")?,
        reduce_wall_nanos: req_u64(job_obj, "reduce_wall_nanos")?,
    };

    let counters_obj = req(doc, "counters")?;
    let counter_names: Vec<&str> = ALL_COUNTERS.iter().map(|c| c.name()).collect();
    check_keys(counters_obj, "counter", &counter_names)?;
    let counters = Counters::new();
    for c in ALL_COUNTERS {
        counters.add(c, req_u64(counters_obj, c.name())?);
    }

    let phases_obj = req(doc, "phases")?;
    let phase_names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
    check_keys(phases_obj, "phase", &phase_names)?;
    let mut phases = [PhaseRollup::default(); NUM_PHASES];
    for (slot, phase) in phases.iter_mut().zip(ALL_PHASES) {
        let p = req(phases_obj, phase.name())?;
        check_keys(p, "phase rollup", &["count", "wall_ns", "cpu_ns"])?;
        *slot = PhaseRollup {
            count: req_u64(p, "count")?,
            wall_ns: req_u64(p, "wall_ns")?,
            cpu_ns: req_u64(p, "cpu_ns")?,
        };
    }

    let hists_obj = req(doc, "histograms")?;
    let mut hists = Vec::new();
    match hists_obj {
        Json::Obj(members) => {
            for (name, h) in members {
                let metric = ALL_METRICS
                    .iter()
                    .copied()
                    .find(|m| m.name() == *name)
                    .ok_or_else(|| format!("unknown metric {name:?}"))?;
                check_keys(h, "histogram", &["count", "sum", "min", "max", "buckets"])?;
                let mut buckets = Vec::new();
                for pair in req(h, "buckets")?
                    .as_arr()
                    .ok_or_else(|| format!("{name:?} buckets is not an array"))?
                {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("{name:?} bucket is not a [index, count] pair"))?;
                    let idx = pair[0]
                        .as_u64()
                        .filter(|&i| i < NUM_BUCKETS as u64)
                        .ok_or_else(|| format!("{name:?} bucket index out of range"))?;
                    let n = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("{name:?} bucket count is not an integer"))?;
                    buckets.push((idx as u8, n));
                }
                hists.push(LedgerHist {
                    metric,
                    count: req_u64(h, "count")?,
                    sum: req_u64(h, "sum")?,
                    min: req_u64(h, "min")?,
                    max: req_u64(h, "max")?,
                    buckets,
                });
            }
        }
        _ => return Err("\"histograms\" is not an object".to_string()),
    }

    Ok(LedgerRecord {
        label: req_str(doc, "label")?,
        clock: req_str(doc, "clock")?,
        host_cpus: req_u64(doc, "host_cpus")?,
        config,
        job,
        counters: counters.snapshot(),
        phases,
        hists,
    })
}

/// Parse one ledger line (a complete JSON document).
pub fn parse_line(line: &str) -> Result<LedgerRecord, String> {
    parse_record(&parse(line)?)
}

/// Parse a whole ledger file: one record per non-empty line.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_line(line).map_err(|e| format!("ledger line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_mapreduce::obs::{Histogram, Metric};
    use scihadoop_mapreduce::Counter;

    fn sample() -> LedgerRecord {
        let counters = Counters::new();
        counters.add(Counter::MapOutputBytes, 4096);
        counters.add(Counter::ShuffleBytes, 2048);
        let mut h = Histogram::new();
        h.record(1);
        h.record(300);
        let mut phases = [PhaseRollup::default(); NUM_PHASES];
        phases[0] = PhaseRollup {
            count: 2,
            wall_ns: 10,
            cpu_ns: 9,
        };
        LedgerRecord {
            label: "parser \"unit\"\ntest".into(),
            clock: "thread_cpu".into(),
            host_cpus: 2,
            config: LedgerConfig {
                codec: "deflate".into(),
                block_kib: 64,
                num_reducers: 2,
                map_slots: 2,
                reduce_slots: 1,
                spill_buffer_bytes: 4096,
                framing: "ifile".into(),
                ifile_version: 3,
                combiner: false,
                task_retries: 2,
                fault_seed: None,
            },
            job: LedgerJob {
                num_maps: 3,
                num_reducers: 2,
                input_bytes: 9999,
                map_wall_nanos: 1111,
                reduce_wall_nanos: 2222,
            },
            counters: counters.snapshot(),
            phases,
            hists: vec![LedgerHist::from_histogram(Metric::SegRawBytes, &h).unwrap()],
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let line = sample().to_json_line();
        let parsed = parse_line(&line).expect("parse");
        assert_eq!(parsed, sample());
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn whole_ledger_files_parse_line_by_line() {
        let line = sample().to_json_line();
        let text = format!("{line}\n\n{line}\n");
        let records = parse_ledger(&text).expect("parse ledger");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], records[1]);
    }

    #[test]
    fn wrong_schema_and_unknown_keys_are_rejected() {
        let line = sample().to_json_line();
        let wrong_schema = line.replace("scihadoop.ledger.v1", "scihadoop.ledger.v9");
        assert!(parse_line(&wrong_schema).is_err());
        let unknown_counter = line.replace("\"spills\":", "\"spoils\":");
        assert!(parse_line(&unknown_counter).is_err());
        let extra_key = line.replacen('{', "{\"extra\":1,", 1);
        assert!(parse_line(&extra_key).is_err());
    }

    #[test]
    fn non_exact_integers_are_rejected() {
        let line = sample().to_json_line();
        let fractional = line.replace("\"host_cpus\":2", "\"host_cpus\":2.5");
        assert!(parse_line(&fractional).is_err());
    }
}

//! Experiment harness: one function per table/figure of the paper.
//!
//! Each function returns a structured report that the `repro` binary
//! prints next to the paper's reference numbers and the Criterion
//! benches time. All workloads are deterministic (seeded).

pub mod codecs;
pub mod distjobs;
pub mod experiments;
pub mod json;
pub mod ledger;
pub mod regress;
pub mod report;
pub mod workloads;

pub use codecs::{codec_by_name, codec_by_name_with_block_size};
pub use distjobs::{dist_worker, DistJobSpec};
pub use experiments::*;
pub use report::Table;

//! One function per paper table/figure (see DESIGN.md §4 for the index).

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::workloads;
use scihadoop_cluster::{scale_stats, ClusterSpec, CostModel};
use scihadoop_compress::{BlockCodec, BzipCodec, Codec, DeflateCodec, IdentityCodec};
use scihadoop_core::aggregate::{expand_record, overlapping_pairs, padding_overhead, Aggregator};
use scihadoop_core::transform::{self, TransformCodec, TransformConfig};
use scihadoop_grid::{BoundingBox, Coord, GridError, Shape};
use scihadoop_mapreduce::obs::{self, IntermediateBreakdown, Recorder, ALL_PHASES};
use scihadoop_mapreduce::record::{Emit, FnMapper, FnReducer, InputSplit};
use scihadoop_mapreduce::{
    run_distributed, Counter, CounterSnapshot, DistConfig, FaultConfig, FaultPlan, Framing,
    IFileVersion, IFileWriter, Job, JobConfig, JobStats, KvPair, Trace, Transport, WireCodec,
};
use scihadoop_queries::{
    median::{MedianRun, SlidingMedian, SlidingMedianVariant},
    KeyLayout,
};
use scihadoop_sfc::{clustering_run_count, Curve, HilbertCurve, RowMajorCurve, ZOrderCurve};
use std::sync::Arc;
use std::time::Instant;

/// §I intro numbers: the cost of independent keys on a n³ float grid.
///
/// Paper (n=100): 26,000,006 B with a variable-index key (450 % overhead)
/// and 33,000,006 B with the name `windspeed1` (625 %); key/value ratio
/// 6.75.
pub fn intro_overhead(n: u32) -> Table {
    let var = workloads::windspeed_cube(n, 7);
    let data_bytes = var.data_bytes();

    let mut table = Table::new(
        &format!("§I intro: intermediate file for a {n}³ grid of f32"),
        &["key layout", "file bytes", "overhead", "key/value ratio"],
    );
    for (label, layout) in [
        ("variable index", KeyLayout::Indexed { index: 0, ndims: 3 }),
        (
            "name \"windspeed1\"",
            KeyLayout::Named {
                name: "windspeed1".into(),
                ndims: 3,
            },
        ),
    ] {
        let mut w = IFileWriter::new(Framing::SequenceFile, Arc::new(IdentityCodec));
        for cell in var.bounds().cells() {
            let mut vbytes = Vec::with_capacity(4);
            var.get(&cell).expect("in range").write_be(&mut vbytes);
            w.append(&layout.encode(&cell), &vbytes);
        }
        let seg = w.close();
        let file = seg.raw_bytes;
        let overhead = (file as f64 - data_bytes as f64) / data_bytes as f64;
        // Key cost per record: the key bytes plus the 4-byte record-length
        // field that exists to delimit each independent key (the
        // key/value-length vints are counted as file overhead, as in
        // Fig. 8). For windspeed1: (23 + 4) / 4 = 6.75, the paper's ratio.
        let ratio = (seg.key_bytes + 4 * seg.records) as f64 / seg.value_bytes as f64;
        table.row(&[
            label.into(),
            format!("{file}"),
            format!("{:.0}%", overhead * 100.0),
            format!("{ratio:.2}"),
        ]);
    }
    table.note("paper (n=100): 26,000,006 B / 450% and 33,000,006 B / 625%, ratio 6.75");
    table
}

/// One Fig. 3 measurement: compressed size and time for a method.
pub struct CompressionPoint {
    /// Method label as in the paper's Fig. 3.
    pub method: &'static str,
    /// Output size in bytes.
    pub size: u64,
    /// Compression wall time.
    pub secs: f64,
}

/// Fig. 3: byte-level compression on the n³ grid-walk stream.
///
/// Paper (n=100): original 12,000,000; gzip 1,630,000 (0.66 s);
/// transform+gzip 33,000 (2.43 s); bzip2 512,000 (12.69 s);
/// transform+bzip2 468 (2.40 s).
pub fn fig3(n: u32, max_stride: usize) -> (Table, Vec<CompressionPoint>) {
    let stream = workloads::grid_key_stream(n);
    let config = TransformConfig::adaptive(max_stride);

    let deflate: Arc<dyn Codec> = Arc::new(DeflateCodec::new());
    let bzip: Arc<dyn Codec> = Arc::new(BzipCodec::new());
    let t_deflate: Arc<dyn Codec> = Arc::new(TransformCodec::new(
        config.clone(),
        Arc::new(DeflateCodec::new()),
    ));
    let t_bzip: Arc<dyn Codec> = Arc::new(TransformCodec::new(
        config.clone(),
        Arc::new(BzipCodec::new()),
    ));
    // Parallel block-framed variants (PR 4): same byte streams cut into
    // independently compressed blocks, so the sizes quantify the frame +
    // per-block-restart overhead against the whole-buffer baselines.
    let b_deflate: Arc<dyn Codec> = Arc::new(BlockCodec::new(Arc::new(DeflateCodec::new())));
    let b_t_deflate: Arc<dyn Codec> = Arc::new(BlockCodec::new(Arc::new(TransformCodec::new(
        config,
        Arc::new(DeflateCodec::new()),
    ))));

    let mut points = vec![CompressionPoint {
        method: "original",
        size: stream.len() as u64,
        secs: 0.0,
    }];
    // Block variants are appended after the paper's four methods so
    // prefix lookups on the original labels keep resolving to them.
    for (method, codec) in [
        ("deflate (gzip-equiv)", &deflate),
        ("transform+deflate", &t_deflate),
        ("bzip (bzip2-equiv)", &bzip),
        ("transform+bzip", &t_bzip),
        ("block-deflate", &b_deflate),
        ("block-transform+deflate", &b_t_deflate),
    ] {
        let t0 = Instant::now();
        let z = codec.compress(&stream);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            codec.decompress(&z).expect("roundtrip"),
            stream,
            "{method} failed roundtrip"
        );
        points.push(CompressionPoint {
            method,
            size: z.len() as u64,
            secs,
        });
    }

    // IFile rows (PR 6): the same walk cut into 12-byte grid keys and
    // materialized as intermediate segments, so the v2→v3 delta is the
    // front-coding win on exactly the stream the paper compresses.
    // Appended after the codec rows to keep prefix lookups stable.
    for (method, version, codec) in [
        ("ifile-v2", 2u8, None),
        ("ifile-v3", 3, None),
        (
            "ifile-v3+deflate",
            3,
            Some(Arc::new(DeflateCodec::new()) as Arc<dyn Codec>),
        ),
    ] {
        let codec = codec.unwrap_or_else(|| Arc::new(IdentityCodec) as Arc<dyn Codec>);
        let t0 = Instant::now();
        let mut w = match version {
            2 => IFileWriter::new(Framing::IFile, codec),
            _ => IFileWriter::v3(
                Framing::IFile,
                codec,
                Arc::new(scihadoop_mapreduce::DefaultKeySemantics),
            ),
        };
        for key in stream.chunks_exact(12) {
            w.append(key, &[]);
        }
        let seg = w.close();
        points.push(CompressionPoint {
            method,
            size: seg.materialized_bytes(),
            secs: t0.elapsed().as_secs_f64(),
        });
    }

    let mut table = Table::new(
        &format!("Fig. 3: byte-level compression of a {n}³ grid-walk key stream"),
        &["method", "size (bytes)", "time"],
    );
    for p in &points {
        table.row(&[p.method.into(), format!("{}", p.size), fmt_secs(p.secs)]);
    }
    table.note(
        "paper (100³): original 12,000,000 / gzip 1,630,000 / transform+gzip 33,000 \
         / bzip2 512,000 / transform+bzip2 468",
    );
    table.note("shape target: transform+bzip ≪ transform+deflate ≪ bzip < deflate ≪ original");
    table.note(
        "block-* rows: parallel 256 KiB block frame; the size gap vs the whole-buffer \
         row is the frame + per-block-restart overhead",
    );
    table.note(
        "ifile-* rows: the stream cut into 12-byte keys and written as an intermediate \
         segment; v3 front-codes shared key prefixes inside sorted blocks",
    );
    (table, points)
}

/// §III-A stride ablation: user-specified single stride vs exhaustive vs
/// adaptive detection, all compressed with the bzip codec.
///
/// Paper: single stride 12 → 1619 B; all strides < 100 → 701 B; the
/// adaptive transform → 468 B (beats exhaustive); brute force is ~4× the
/// adaptive cost at max stride 100 and ~17× at 1000.
pub fn stride_ablation(n: u32, timing_n: u32) -> Table {
    let stream = workloads::grid_key_stream(n);
    let bzip = BzipCodec::new();
    let mut table = Table::new(
        &format!("§III-A stride ablation ({n}³ stream, bzip-compressed sizes)"),
        &["detector", "bzip size (bytes)", "transform time"],
    );
    for (label, config) in [
        ("fixed stride 12", TransformConfig::fixed(vec![12])),
        (
            "all strides < 100 (brute)",
            TransformConfig::brute_force(100),
        ),
        ("adaptive, max 100", TransformConfig::adaptive(100)),
    ] {
        let t0 = Instant::now();
        let transformed = transform::forward(&config, &stream);
        let secs = t0.elapsed().as_secs_f64();
        let size = bzip.compress(&transformed).len();
        assert_eq!(transform::inverse(&config, &transformed), stream);
        table.row(&[label.into(), format!("{size}"), fmt_secs(secs)]);
    }
    table.note("paper sizes: stride-12 1619 B / exhaustive<100 701 B / adaptive 468 B");

    // Brute-vs-adaptive slowdown on a smaller stream (the paper's 4× at
    // max stride 100, 17× at 1000).
    let timing_stream = workloads::grid_key_stream(timing_n);
    for max in [100usize, 1000] {
        let t0 = Instant::now();
        let _ = transform::forward(&TransformConfig::adaptive(max), &timing_stream);
        let adaptive_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = transform::forward(&TransformConfig::brute_force(max), &timing_stream);
        let brute_s = t0.elapsed().as_secs_f64();
        table.row(&[
            format!("brute/adaptive slowdown @ max {max} ({timing_n}³)"),
            format!("{:.1}x", brute_s / adaptive_s.max(1e-9)),
            fmt_secs(brute_s),
        ]);
    }
    table.note("paper slowdowns: ~4x at max stride 100, ~17x at 1000");
    table
}

/// One Fig. 4 sample.
pub struct TransformTimePoint {
    /// Grid side (stream is n³ × 12 bytes).
    pub n: u32,
    /// Input size in bytes.
    pub bytes: u64,
    /// Transform wall time.
    pub secs: f64,
}

/// Fig. 4: transform time versus file size (expected linear — "the
/// transform has constant-sized in-memory state and does not look ahead
/// or behind").
pub fn fig4(sides: &[u32]) -> (Table, Vec<TransformTimePoint>) {
    let config = TransformConfig::default();
    let mut points = Vec::new();
    for &n in sides {
        let stream = workloads::grid_key_stream(n);
        let t0 = Instant::now();
        let _ = transform::forward(&config, &stream);
        points.push(TransformTimePoint {
            n,
            bytes: stream.len() as u64,
            secs: t0.elapsed().as_secs_f64(),
        });
    }
    let mut table = Table::new(
        "Fig. 4: transform time vs file size",
        &["grid", "input", "time", "MB/s"],
    );
    for p in &points {
        table.row(&[
            format!("{}³", p.n),
            fmt_bytes(p.bytes),
            fmt_secs(p.secs),
            format!("{:.1}", p.bytes as f64 / 1e6 / p.secs.max(1e-9)),
        ]);
    }
    table.note("shape target: throughput (MB/s) roughly constant → time linear in size");
    (table, points)
}

/// Byte breakdown of one Fig. 8 bar.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Bar {
    /// Value payload bytes.
    pub values: u64,
    /// Key bytes.
    pub keys: u64,
    /// Per-record framing overhead bytes.
    pub overhead: u64,
}

impl Fig8Bar {
    /// Total intermediate bytes.
    pub fn total(&self) -> u64 {
        self.values + self.keys + self.overhead
    }

    /// Build a bar from a histogram-derived breakdown. "File overhead"
    /// is everything that is neither key nor value payload: per-record
    /// framing plus the per-segment header.
    fn from_breakdown(b: &IntermediateBreakdown) -> Fig8Bar {
        Fig8Bar {
            values: b.value_bytes,
            keys: b.key_bytes,
            overhead: b.framing_bytes + b.header_bytes,
        }
    }
}

/// Derive one standalone segment's byte breakdown through the
/// observability layer's reporting pass — the same
/// [`obs::observe_segment`] → histogram → [`IntermediateBreakdown`]
/// path the engine uses per final map-output segment — instead of
/// ad-hoc field arithmetic.
fn segment_breakdown(seg: &scihadoop_mapreduce::ifile::Segment) -> IntermediateBreakdown {
    let rec = Recorder::new();
    {
        let _att = rec.attach("experiment");
        obs::observe_segment(
            seg.key_bytes,
            seg.value_bytes,
            seg.framing_bytes(),
            seg.key_saved_bytes(),
            seg.raw_bytes,
            seg.materialized_bytes(),
        );
    }
    IntermediateBreakdown::from_trace(&rec.finish())
}

/// Fig. 8: effect of key aggregation on total data size for an n³ grid of
/// integers, in the ideal single-mapper case and partitioned across
/// mappers.
///
/// Paper (100³): values 3.81 MB unchanged; keys collapse from MB to kB;
/// file overhead 1.91 MB → 5.84 kB; "up to 84.5 % reduction ... depending
/// on data types".
pub fn fig8(n: u32, mappers: &[usize]) -> (Table, Vec<(String, Fig8Bar)>) {
    let var = workloads::int_cube(n, 13);
    let mut bars: Vec<(String, Fig8Bar)> = Vec::new();

    // Original: one simple record per cell, 3×4-byte coordinate keys,
    // IFile framing (2 B/record).
    {
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
        for cell in var.bounds().cells() {
            let key: Vec<u8> = cell
                .components()
                .iter()
                .flat_map(|c| c.to_be_bytes())
                .collect();
            let mut vbytes = Vec::with_capacity(4);
            var.get(&cell).expect("in range").write_be(&mut vbytes);
            w.append(&key, &vbytes);
        }
        let seg = w.close();
        bars.push((
            "original".into(),
            Fig8Bar::from_breakdown(&segment_breakdown(&seg)),
        ));
    }

    // Aggregated, for each mapper count: each mapper owns a slab of the
    // grid and aggregates independently (partitioning "results in less
    // aggregation", §IV-D). Slab orientation matters enormously for a
    // Z-order curve: slabs across dimension 0 (the slowest-varying curve
    // dimension) keep long runs, while slabs across the fastest-varying
    // dimension shatter every run — we measure both.
    let bits = (32 - n.leading_zeros()).max(1);
    let slab_dims: &[(usize, &str)] = &[(0, "x-slabs"), (2, "z-slabs")];
    for &m in mappers {
        for &(dim, orient) in slab_dims {
            if m == 1 && dim != 0 {
                continue; // one mapper has no orientation
            }
            let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
            for slab in split_along(&var.bounds(), dim, m) {
                let mut agg = Aggregator::new(ZOrderCurve::with_bits(3, bits), usize::MAX >> 1);
                for cell in slab.cells() {
                    let mut vbytes = Vec::with_capacity(4);
                    var.get(&cell).expect("in range").write_be(&mut vbytes);
                    agg.push(&cell, &vbytes).expect("non-negative grid");
                }
                for rec in agg.flush() {
                    w.append(&rec.key.to_bytes(), &rec.values);
                }
            }
            let seg = w.close();
            let label = if m == 1 {
                "aggregated (1 mapper)".to_string()
            } else {
                format!("aggregated ({m} mappers, {orient})")
            };
            bars.push((label, Fig8Bar::from_breakdown(&segment_breakdown(&seg))));
        }
    }

    let baseline = bars[0].1.total();
    let mut table = Table::new(
        &format!("Fig. 8: key aggregation on a {n}³ grid of i32"),
        &[
            "configuration",
            "values",
            "keys",
            "file overhead",
            "total",
            "reduction",
        ],
    );
    for (label, bar) in &bars {
        table.row(&[
            label.clone(),
            fmt_bytes(bar.values),
            fmt_bytes(bar.keys),
            fmt_bytes(bar.overhead),
            fmt_bytes(bar.total()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - bar.total() as f64 / baseline as f64)
            ),
        ]);
    }
    table.note(
        "paper (100³): values 3.81 MB constant; keys MB→kB; overhead 1.91 MB→5.84 kB; \
         up to 84.5% total reduction",
    );
    table.note(
        "z-slabs slice the fastest-varying Z-order dimension and shatter runs into \
         singletons — partition orientation matters",
    );
    (table, bars)
}

/// Split a box into `parts` slabs along an explicit dimension.
fn split_along(bounds: &BoundingBox, dim: usize, parts: usize) -> Vec<BoundingBox> {
    let extent = bounds.shape().extents()[dim];
    let parts = parts.min(extent as usize).max(1);
    let base = extent / parts as u32;
    let rem = extent % parts as u32;
    let mut out = Vec::with_capacity(parts);
    let mut start = bounds.corner()[dim];
    for p in 0..parts {
        let len = base + if (p as u32) < rem { 1 } else { 0 };
        let mut corner = bounds.corner().clone();
        corner[dim] = start;
        let mut ext = bounds.shape().extents().to_vec();
        ext[dim] = len;
        out.push(BoundingBox::new(corner, Shape::new(ext)).expect("dims agree"));
        start += len as i32;
    }
    out
}

/// One cluster-experiment row.
pub struct ClusterRow {
    /// Variant label.
    pub label: String,
    /// Scaled intermediate (materialized) bytes.
    pub intermediate: u64,
    /// Simulated end-to-end minutes.
    pub minutes: f64,
    /// The run's raw stats (pre-scaling).
    pub stats: JobStats,
}

/// §III-E and §IV-D: the sliding-median query on the simulated 5-node
/// cluster.
///
/// Runs the real query in-process on an n×n grid, scales the measured
/// stats to the paper's 8000×8000, and replays them through the cost
/// model. Paper: baseline 55.5 GB / 183 min; transform+zlib 12.3 GB
/// (−77.8 %) / 377 min (+106 %); aggregation 21.8 GB (−60.7 %) / 131 min
/// (−28.5 %).
pub fn cluster_experiment(n: u32, splits: usize) -> (Table, Vec<ClusterRow>) {
    let var = workloads::int_square(n, 21);
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let base = JobConfig::default()
        .with_reducers(5)
        .with_slots(10, 5)
        .with_framing(Framing::SequenceFile);

    let run = |variant: SlidingMedianVariant| -> MedianRun {
        let mut q = SlidingMedian::new(layout.clone(), variant);
        q.num_splits = splits;
        q.base_config = base.clone();
        q.run(&var).expect("query runs")
    };

    let factor = (8000.0 * 8000.0) / (n as f64 * n as f64);
    let model = CostModel::new(ClusterSpec::paper_cluster());

    let mut rows = Vec::new();
    for (label, variant) in [
        (
            "baseline (plain keys)".to_string(),
            SlidingMedianVariant::Plain,
        ),
        (
            "transform+deflate codec".to_string(),
            SlidingMedianVariant::PlainWithCodec(Arc::new(TransformCodec::with_defaults(
                Arc::new(DeflateCodec::new()),
            ))),
        ),
        (
            "key aggregation".to_string(),
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 64 << 20,
            },
        ),
    ] {
        let result = run(variant);
        let scaled = scale_stats(&result.result.stats, factor);
        let sim = model.simulate(&scaled);
        rows.push(ClusterRow {
            label,
            intermediate: scaled.map_output_materialized_bytes,
            minutes: sim.total_minutes(),
            stats: result.result.stats,
        });
    }

    let base_bytes = rows[0].intermediate as f64;
    let base_min = rows[0].minutes;
    let mut table = Table::new(
        &format!(
            "§III-E / §IV-D: sliding median, {n}² grid scaled to 8000², \
             5 nodes / 10 map slots / 5 reducers"
        ),
        &["variant", "intermediate", "Δ data", "runtime", "Δ runtime"],
    );
    for r in &rows {
        table.row(&[
            r.label.clone(),
            fmt_bytes(r.intermediate),
            format!(
                "{:+.1}%",
                100.0 * (r.intermediate as f64 / base_bytes - 1.0)
            ),
            format!("{:.0} min", r.minutes),
            format!("{:+.1}%", 100.0 * (r.minutes / base_min - 1.0)),
        ]);
    }
    // Phase breakdown in cluster-wide work-minutes (before dividing by
    // slot parallelism), so the contrast's cause is visible: codec CPU
    // dominates the transform variant, byte-driven stages and engine CPU
    // dominate the baseline.
    for r in &rows {
        let sim = model.simulate(&scale_stats(&r.stats, factor));
        let ph = sim.phases;
        let m = |s: f64| format!("{:.1}", s / 60.0);
        table.row(&[
            format!("  {} work-min (pre-sched):", r.label),
            format!(
                "io {}",
                m(ph.map_read_s + ph.map_write_s + ph.reduce_disk_s + ph.output_write_s)
            ),
            format!("shuffle {}", m(ph.shuffle_s)),
            format!("codec {}", m(ph.map_codec_s + ph.reduce_codec_s)),
            format!("engine {}", m(ph.map_cpu_s + ph.reduce_cpu_s)),
        ]);
    }
    table.note("paper: 55.5 GB/183 min → transform 12.3 GB (−77.8%)/377 min (+106%)");
    table.note("paper: → aggregation 21.8 GB (−60.7%)/131 min (−28.5%)");
    table.note("shape target: transform shrinks data but slows runtime; aggregation shrinks both");
    (table, rows)
}

/// Sum reducer/combiner shared by the traced-pipeline wordcount and the
/// distributed job specs (`crate::distjobs`): values are either raw
/// 1-byte counts or 8-byte big-endian partial sums from a previous
/// combine pass.
pub(crate) fn sum_values(k: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
    let total: u64 = values
        .iter()
        .map(|v| {
            if v.len() == 1 {
                v[0] as u64
            } else {
                u64::from_be_bytes((*v).try_into().expect("8-byte partial sum"))
            }
        })
        .sum();
    out.emit(k, &total.to_be_bytes());
}

/// Observability tentpole: run three traced jobs — each against its own
/// [`Recorder`] — and re-derive the paper's Table I (key vs value bytes)
/// and Table II (materialized bytes) views from the merged histograms,
/// reconciling them *exactly* against the merged job counters. Each job
/// also yields a rich [`obs::LedgerRecord`] (config + counters + phase
/// rollups + histograms) for the run ledger.
///
/// Job 1 is a combiner-equipped, multi-spill wordcount — it exercises
/// map emit, sort/spill, combine, IFile write, map-side merge, shuffle
/// fetch, reduce merge and grouping. Job 2 is the aggregated
/// sliding-median query, whose aggregate key semantics keep sort-splits
/// enabled — it exercises the windowed sort-split stage. Job 3 replays a
/// small wordcount under guaranteed first-attempt map faults so the
/// trace carries Retry spans. Between them every pipeline phase records
/// spans.
pub fn traced_pipeline(
    n: u32,
    records: usize,
    ifile_version: IFileVersion,
) -> (Table, Trace, CounterSnapshot, Vec<obs::LedgerRecord>) {
    let mut ledger = Vec::new();

    // Job 1: wordcount with a combiner and a tiny spill buffer (forces
    // several spills per map task, hence a map-side merge).
    let (counters_a, trace_a) = {
        let recorder = Recorder::new();
        let words: Vec<String> = (0..records)
            .map(|i| format!("word-{:04}", i % 60))
            .collect();
        let splits: Vec<InputSplit> = words
            .chunks(128)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let config = JobConfig::default()
            .with_reducers(3)
            .with_slots(2, 2)
            .with_combiner(Arc::new(FnReducer(sum_values)))
            .with_spill_buffer(1 << 10)
            .with_framing(Framing::IFile)
            .with_ifile_version(ifile_version)
            .with_recorder(recorder.clone());
        let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(k, v)
        }));
        let result = Job::new(config.clone())
            .run(splits, mapper, Arc::new(FnReducer(sum_values)))
            .expect("wordcount runs");
        let trace = recorder.finish();
        ledger.push(obs::LedgerRecord::from_run(
            "traced_wordcount",
            &config,
            &result,
            Some(&trace),
        ));
        (result.counters, trace)
    };

    // Job 2: aggregated sliding median; its key semantics keep the
    // engine's conservative sort-split window engaged.
    let (counters_b, trace_b) = {
        let recorder = Recorder::new();
        let var = workloads::int_square(n, 11);
        let mut q = SlidingMedian::new(
            KeyLayout::Indexed { index: 0, ndims: 2 },
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 64 << 20,
            },
        );
        q.base_config = JobConfig::default()
            .with_reducers(3)
            .with_ifile_version(ifile_version)
            .with_recorder(recorder.clone());
        let result = q.run(&var).expect("query runs").result;
        let trace = recorder.finish();
        ledger.push(obs::LedgerRecord::from_run(
            "traced_median",
            &q.base_config,
            &result,
            Some(&trace),
        ));
        (result.counters, trace)
    };

    // Job 3: a deliberately faulty re-run of a small wordcount — every
    // map task fails its first attempt and succeeds on retry, so the
    // trace carries Retry spans (validate_trace demands rollups for
    // every phase, retries included).
    let (counters_c, trace_c) = {
        let recorder = Recorder::new();
        let words: Vec<String> = (0..records.min(200))
            .map(|i| format!("word-{:04}", i % 20))
            .collect();
        let splits: Vec<InputSplit> = words
            .chunks(64)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let config = JobConfig::default()
            .with_reducers(2)
            .with_retries(1)
            .with_ifile_version(ifile_version)
            .with_retry_backoff(std::time::Duration::from_micros(1))
            .with_faults(FaultPlan::new(FaultConfig {
                seed: 1,
                map_error_rate: 1.0,
                attempt_cap: 1,
                ..FaultConfig::default()
            }))
            .with_recorder(recorder.clone());
        let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(k, v)
        }));
        let result = Job::new(config.clone())
            .run(splits, mapper, Arc::new(FnReducer(sum_values)))
            .expect("first-attempt faults are below the retry budget");
        let trace = recorder.finish();
        ledger.push(obs::LedgerRecord::from_run(
            "traced_faulty_wordcount",
            &config,
            &result,
            Some(&trace),
        ));
        (result.counters, trace)
    };

    let counters = counters_a.merge(&counters_b).merge(&counters_c);
    let mut trace = trace_a;
    trace.merge(&trace_b);
    trace.merge(&trace_c);
    let breakdown = IntermediateBreakdown::from_trace(&trace);
    breakdown
        .reconcile(&counters)
        .expect("histogram-derived breakdown must equal the job counters");

    let mut table = Table::new(
        &format!("observability: traced wordcount + aggregated median ({records} records, {n}²)"),
        &["stage", "spans", "wall", "cpu"],
    );
    for phase in ALL_PHASES {
        table.row(&[
            phase.name().into(),
            format!("{}", trace.span_count(phase)),
            fmt_secs(trace.phase_wall_nanos(phase) as f64 / 1e9),
            fmt_secs(trace.phase_cpu_nanos(phase) as f64 / 1e9),
        ]);
    }
    table.note(&format!(
        "Table I view: keys {} / values {} / framing+header {} (key fraction {:.1}%)",
        fmt_bytes(breakdown.key_bytes),
        fmt_bytes(breakdown.value_bytes),
        fmt_bytes(breakdown.framing_bytes + breakdown.header_bytes),
        100.0 * breakdown.key_fraction(),
    ));
    table.note(&format!(
        "Table II view: materialized {} of {} raw across {} segments ({:.1}%)",
        fmt_bytes(breakdown.materialized_bytes),
        fmt_bytes(breakdown.raw_bytes),
        breakdown.segments,
        100.0 * breakdown.materialized_ratio(),
    ));
    table.note("all byte rows re-derived from histograms and reconciled exactly against counters");
    if !trace.warnings.is_empty() {
        table.note(&format!("trace warnings: {:?}", trace.warnings));
    }
    (table, trace, counters, ledger)
}

/// Render model-vs-measured drift for a set of ledger records: each
/// record is replayed through [`CostModel::simulate`] against a
/// [`ClusterSpec::local_host`] spec and reported as per-row predicted vs
/// measured values with signed error. Shared by the `model_drift`
/// experiment and `repro --reconcile <ledger>`.
pub fn drift_table(title: &str, records: &[obs::LedgerRecord]) -> (Table, Vec<obs::DriftReport>) {
    let mut table = Table::new(title, &["run / row", "predicted", "measured", "error"]);
    let mut reports = Vec::new();
    for record in records {
        let model = CostModel::new(ClusterSpec::local_host(record));
        let report = model.reconcile(record);
        table.row(&[
            format!("[{}]", report.label),
            "".into(),
            "".into(),
            "".into(),
        ]);
        for row in &report.rows {
            let fmt = |v: f64| match row.unit {
                "B" => fmt_bytes(v as u64),
                _ => fmt_secs(v),
            };
            table.row(&[
                format!("  {}", row.name),
                fmt(row.predicted),
                fmt(row.measured),
                format!("{:+.1}%", row.error_pct()),
            ]);
        }
        reports.push(report);
    }
    table.note("byte rows are exact identities (error +0.0%); time rows show model drift");
    table.note(
        "spec: local_host — measured slots; net bandwidth measured from socket transfer time when the record is a distributed run, unbounded otherwise",
    );
    (table, reports)
}

/// Model-vs-measured drift: run the traced pipeline, roundtrip each job's
/// [`obs::LedgerRecord`] through its JSON-line encoding and the strict
/// [`crate::ledger`] parser (asserting the re-encode is byte-identical),
/// rebuild [`JobStats`] from the parsed record, replay
/// [`CostModel::simulate`] and report per-phase predicted vs measured
/// values with signed error — the paper's Table I/II style breakdown, but
/// predicted-vs-actual instead of before-vs-after.
pub fn model_drift(
    n: u32,
    records: usize,
    ifile_version: IFileVersion,
) -> (Table, Vec<(obs::LedgerRecord, obs::DriftReport)>) {
    let (_, _, _, ledger) = traced_pipeline(n, records, ifile_version);

    let parsed: Vec<obs::LedgerRecord> = ledger
        .iter()
        .map(|record| {
            let line = record.to_json_line();
            let back = crate::ledger::parse_line(&line)
                .expect("ledger record must parse back through the bench JSON parser");
            assert_eq!(
                back.to_json_line(),
                line,
                "ledger roundtrip must be byte-identical"
            );
            back
        })
        .collect();
    let (table, reports) = drift_table(
        &format!("model drift: cost model vs measured runs ({records} records, {n}²)"),
        &parsed,
    );
    (table, parsed.into_iter().zip(reports).collect())
}

/// Fault-tolerance tentpole: run the same combiner wordcount twice —
/// once clean, once under a seeded fault storm (injected task errors,
/// shuffle-segment corruption, slow tasks) with a bounded retry budget —
/// and assert the faulted run's output is **byte-identical** to the
/// clean run with every semantic counter unchanged. Only the
/// fault-tolerance bookkeeping counters (`TaskRetries`,
/// `ChecksumFailures`, `FaultsInjected`) and the wall-time counters may
/// differ; the faulted snapshot must still satisfy `check_invariants`.
///
/// Panics if recovery is not exact — this experiment is itself the
/// assertion, in the spirit of the paper's "results are identical"
/// claims for its lossless key transforms.
pub fn fault_storm(records: usize, fault_config: FaultConfig, retries: u32) -> Table {
    fault_storm_with_codec(
        records,
        fault_config,
        retries,
        None,
        IFileVersion::default(),
        None,
    )
}

/// [`fault_storm`] with an explicit intermediate-data codec (e.g. the
/// parallel `block-transform+deflate` stack from `codec_by_name`); `None`
/// keeps the default identity codec. Both the clean and the faulted run
/// use the codec, so byte-identical recovery also proves block-framed
/// segments shuffle losslessly while per-block corruption is detected
/// (CRC-32C trailers + block CRCs) and retried.
///
/// When `ledger` is given, both runs append a record through the engine's
/// own runner hook (`JobConfig::with_ledger`) — the clean run as
/// `fault_storm_clean`, the faulted one as `fault_storm_faulted`.
pub fn fault_storm_with_codec(
    records: usize,
    fault_config: FaultConfig,
    retries: u32,
    codec: Option<Arc<dyn Codec>>,
    ifile_version: IFileVersion,
    ledger: Option<&obs::LedgerSink>,
) -> Table {
    assert!(
        fault_config.attempt_cap <= retries,
        "attempt_cap {} exceeds the retry budget {}: completion is not guaranteed",
        fault_config.attempt_cap,
        retries
    );
    let make_splits = || -> Vec<InputSplit> {
        (0..records)
            .map(|i| format!("word-{:05}", i % 97))
            .collect::<Vec<_>>()
            .chunks(128)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect()
    };
    let run = |config: JobConfig| {
        let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(k, v)
        }));
        Job::new(config)
            .run(make_splits(), mapper, Arc::new(FnReducer(sum_values)))
            .expect("faults below the retry budget must not fail the job")
    };
    let codec_label = codec
        .as_ref()
        .map_or_else(|| "identity".to_string(), |c| c.name().to_string());
    let mut base = JobConfig::default()
        .with_reducers(3)
        .with_slots(2, 2)
        .with_framing(Framing::IFile)
        .with_ifile_version(ifile_version);
    if let Some(c) = codec {
        base = base.with_codec(c);
    }
    let header = Framing::IFile.file_overhead() as u64;
    let with_sink = |config: JobConfig, label: &str| match ledger {
        Some(sink) => config.with_ledger(sink.clone(), label),
        None => config,
    };

    let clean = run(with_sink(base.clone(), "fault_storm_clean"));
    let t0 = Instant::now();
    let faulted = run(with_sink(
        base.with_retries(retries)
            .with_retry_backoff(std::time::Duration::from_micros(50))
            .with_faults(FaultPlan::new(fault_config.clone())),
        "fault_storm_faulted",
    ));
    let faulted_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        clean.outputs, faulted.outputs,
        "faulted output must be byte-identical to the clean run"
    );
    faulted
        .counters
        .check_invariants(header)
        .expect("faulted counters must satisfy the accounting invariants");
    let bookkeeping = [
        Counter::TaskRetries,
        Counter::ChecksumFailures,
        Counter::FaultsInjected,
        Counter::CompressNanos,
        Counter::DecompressNanos,
        Counter::MapFnNanos,
        Counter::ReduceFnNanos,
        Counter::SpillNanos,
        Counter::MergeNanos,
        Counter::ShuffleFetchWaitNanos,
        Counter::ShuffleTransferNanos,
    ];
    for c in scihadoop_mapreduce::ALL_COUNTERS {
        if !bookkeeping.contains(&c) {
            assert_eq!(
                clean.counters.get(c),
                faulted.counters.get(c),
                "semantic counter {} drifted under faults",
                c.name()
            );
        }
    }
    let retried = faulted.counters.get(Counter::TaskRetries);
    let checksum = faulted.counters.get(Counter::ChecksumFailures);
    let injected = faulted.counters.get(Counter::FaultsInjected);
    if fault_config.map_error_rate > 0.0 || fault_config.reduce_error_rate > 0.0 {
        assert!(
            retried > 0,
            "error storm caused no retries (seed too quiet?)"
        );
    }
    if fault_config.corrupt_rate > 0.0 {
        assert!(
            checksum > 0,
            "corruption storm produced no checksum failures (seed too quiet?)"
        );
    }

    let mut table = Table::new(
        &format!(
            "fault storm: {records}-record wordcount, codec {codec_label}, seed {}, \
             map/reduce/corrupt/slow = {:.2}/{:.2}/{:.2}/{:.2}, retries {retries}",
            fault_config.seed,
            fault_config.map_error_rate,
            fault_config.reduce_error_rate,
            fault_config.corrupt_rate,
            fault_config.slow_rate,
        ),
        &["counter", "clean run", "faulted run"],
    );
    for c in [
        Counter::MapInputRecords,
        Counter::MapOutputRecords,
        Counter::ReduceInputRecords,
        Counter::ReduceOutputRecords,
        Counter::MapOutputBytes,
    ] {
        table.row(&[
            c.name().into(),
            format!("{}", clean.counters.get(c)),
            format!("{}", faulted.counters.get(c)),
        ]);
    }
    for (name, value) in [
        ("faults_injected", injected),
        ("task_retries", retried),
        ("checksum_failures", checksum),
    ] {
        table.row(&[name.into(), "0".into(), format!("{value}")]);
    }
    table.note(&format!(
        "outputs byte-identical across {} reducer files; faulted wall time {}",
        clean.outputs.len(),
        fmt_secs(faulted_secs)
    ));
    table.note("semantic counters equal; only retry/checksum/fault bookkeeping differs");
    table
}

/// §IV-A curve ablation: clustering quality (runs per query box) and
/// encode throughput for Z-order vs Hilbert vs row-major.
pub fn curve_ablation(bits: u32, box_side: u32) -> Table {
    let curves: Vec<Box<dyn Curve>> = vec![
        Box::new(ZOrderCurve::with_bits(2, bits)),
        Box::new(HilbertCurve::with_bits(2, bits)),
        Box::new(RowMajorCurve::with_bits(2, bits)),
    ];
    let side = 1i32 << bits;
    let step = (side / 7).max(1);
    let mut table = Table::new(
        &format!("§IV-A curve ablation ({box_side}×{box_side} boxes in a {side}×{side} space)"),
        &["curve", "mean runs/box", "encode Mcells/s"],
    );
    for curve in &curves {
        let mut total_runs = 0usize;
        let mut boxes = 0usize;
        for cx in (0..side - box_side as i32).step_by(step as usize) {
            for cy in (0..side - box_side as i32).step_by(step as usize) {
                let b = BoundingBox::new(
                    Coord::new(vec![cx, cy]),
                    Shape::new(vec![box_side, box_side]),
                )
                .expect("dims");
                total_runs += clustering_run_count(curve.as_ref(), &b).expect("in range");
                boxes += 1;
            }
        }
        // Encode throughput.
        let t0 = Instant::now();
        let mut sink = 0u128;
        let reps = 200_000u32;
        for i in 0..reps {
            sink ^= curve
                .index_of(&[i % (side as u32), (i * 7) % (side as u32)])
                .expect("in range");
        }
        let secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        table.row(&[
            curve.name().into(),
            format!("{:.2}", total_runs as f64 / boxes as f64),
            format!("{:.1}", reps as f64 / 1e6 / secs),
        ]);
    }
    table.note("paper: Hilbert clusters better than Z-order but costs more (Moon et al.)");
    table
}

/// §IV-A flush-threshold ablation: aggregation effectiveness vs buffer
/// size ("the effect should be minimal").
pub fn flush_threshold(n: u32, thresholds: &[usize]) -> Table {
    let var = workloads::int_square(n, 31);
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let mut table = Table::new(
        &format!("§IV-A flush-threshold ablation (sliding median, {n}² grid)"),
        &["buffer bytes", "map output", "records"],
    );
    for &t in thresholds {
        let mut q = SlidingMedian::new(
            layout.clone(),
            SlidingMedianVariant::Aggregated { buffer_bytes: t },
        );
        q.base_config = JobConfig::default().with_reducers(4);
        let run = q.run(&var).expect("query runs");
        table.row(&[
            format!("{t}"),
            fmt_bytes(run.result.stats.map_output_bytes),
            format!("{}", run.result.counters.get(Counter::MapOutputRecords)),
        ]);
    }
    table.note("paper: flushing early slightly reduces aggregation; effect should be minimal");
    table
}

/// §IV-C alignment ablation: overlap (pairs needing sort-splits) vs
/// padding overhead, on a sliding-window-style shifted-range workload.
pub fn alignment_ablation(alignments: &[u128]) -> Table {
    // Shifted overlapping ranges like neighbouring mappers' halos.
    let records: Vec<_> = (0..64u128)
        .map(|i| {
            let start = i * 23;
            let end = start + 40;
            scihadoop_core::aggregate::AggregateRecord::new(
                scihadoop_core::aggregate::AggregateKey::new(
                    0,
                    scihadoop_sfc::CurveRun { start, end },
                ),
                vec![0u8; 41],
                1,
            )
            .expect("consistent record")
        })
        .collect();
    let equal_pairs = |recs: &[scihadoop_core::aggregate::AggregateRecord]| -> usize {
        let mut count = 0;
        for i in 0..recs.len() {
            for j in i + 1..recs.len() {
                if recs[i].key == recs[j].key {
                    count += 1;
                }
            }
        }
        count
    };
    let mut table = Table::new(
        "§IV-C alignment ablation (64 shifted 41-cell ranges)",
        &[
            "alignment",
            "equal pairs",
            "overlapping-unequal pairs",
            "padding bytes",
        ],
    );
    table.row(&[
        "none".into(),
        format!("{}", equal_pairs(&records)),
        format!("{}", overlapping_pairs(&records)),
        "0".into(),
    ]);
    for &a in alignments {
        let expanded: Vec<_> = records
            .iter()
            .map(|r| expand_record(r, a, 1, &[0]))
            .collect();
        table.row(&[
            format!("{a}"),
            format!("{}", equal_pairs(&expanded)),
            format!("{}", overlapping_pairs(&expanded)),
            format!("{}", padding_overhead(&records, a, 1)),
        ]);
    }
    table.note(
        "paper: alignment raises the probability that overlapping keys become EQUAL \
         (no split needed), at the cost of padding and false sharing",
    );
    table.note("straddling ranges keep some unequal overlap at every alignment");
    table
}

/// §IV-B: how much key splitting increases the key count (the paper's
/// open question), as a function of reducer count.
pub fn split_counts(n: u32, reducer_counts: &[usize]) -> Table {
    let var = workloads::int_square(n, 17);
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let mut table = Table::new(
        &format!("§IV-B key-splitting inflation (sliding median, {n}² grid)"),
        &["reducers", "map records", "route splits", "sort splits"],
    );
    for &r in reducer_counts {
        let mut q = SlidingMedian::new(
            layout.clone(),
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 64 << 20,
            },
        );
        q.base_config = JobConfig::default().with_reducers(r);
        let run = q.run(&var).expect("query runs");
        table.row(&[
            format!("{r}"),
            format!("{}", run.result.counters.get(Counter::MapOutputRecords)),
            format!("{}", run.result.counters.get(Counter::RouteSplitRecords)),
            format!("{}", run.result.counters.get(Counter::SortSplitRecords)),
        ]);
    }
    table.note("answers the paper's open question: splits grow with reducer count");
    table
}

/// §IV-B future work, implemented: reducer-side re-aggregation
/// ("Aggregation ... could also be performed in other places to offset
/// the increase in key count caused by key splitting"). Splits one
/// mapper's aggregate records across R reducers, coalesces each
/// reducer's share, and reports how much of the split inflation is
/// recovered.
pub fn coalesce_recovery(n: u32, reducer_counts: &[usize]) -> Table {
    use scihadoop_core::aggregate::{
        coalesce_adjacent, route_split, AggregateRecord, RangePartitioner,
    };
    let var = workloads::int_square(n, 19);
    let bits = (32 - n.leading_zeros()).max(1);
    let span = 1u128 << (2 * bits);

    // 16 mappers, each owning a slab across the *fastest-varying* curve
    // dimension — the worst case for aggregation (see Fig. 8): each
    // mapper's output is heavily fragmented, and fragments from
    // neighbouring mappers are curve-adjacent at the slab boundaries.
    let mappers = 16usize;
    let mut mapper_records: Vec<AggregateRecord> = Vec::new();
    for slab in split_along(&var.bounds(), 1, mappers) {
        let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, bits), usize::MAX >> 1);
        for cell in slab.cells() {
            let mut vbytes = Vec::with_capacity(4);
            var.get(&cell).expect("in range").write_be(&mut vbytes);
            agg.push(&cell, &vbytes).expect("non-negative grid");
        }
        mapper_records.extend(agg.flush());
    }
    let before = mapper_records.len();

    // The ideal: one global aggregation pass.
    let ideal = {
        let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, bits), usize::MAX >> 1);
        for cell in var.bounds().cells() {
            let mut vbytes = Vec::with_capacity(4);
            var.get(&cell).expect("in range").write_be(&mut vbytes);
            agg.push(&cell, &vbytes).expect("non-negative grid");
        }
        agg.flush().len()
    };

    let mut table = Table::new(
        &format!(
            "§IV-B future work: reducer-side re-aggregation \
             ({n}² grid, {mappers} fast-dimension slab mappers, ideal {ideal} records)"
        ),
        &[
            "reducers",
            "mapper records",
            "after route split",
            "after coalesce",
        ],
    );
    for &r in reducer_counts {
        let partitioner = RangePartitioner::uniform(r, span);
        let mut per_reducer: Vec<Vec<AggregateRecord>> = vec![Vec::new(); r];
        for rec in &mapper_records {
            for (p, piece) in route_split(rec, &partitioner, 4) {
                per_reducer[p.min(r - 1)].push(piece);
            }
        }
        let split: usize = per_reducer.iter().map(|v| v.len()).sum();
        let coalesced: usize = per_reducer
            .into_iter()
            .map(|v| coalesce_adjacent(v).len())
            .sum();
        table.row(&[
            format!("{r}"),
            format!("{before}"),
            format!("{split}"),
            format!("{coalesced}"),
        ]);
    }
    table.note(
        "coalescing merges curve-adjacent records within each reducer — including \
         fragments from different mappers — recovering most of the fragmentation",
    );
    table
}

/// §III-A detector-tuning ablation: selection-cycle length and eviction
/// threshold vs compressed size and time.
pub fn transform_tuning(n: u32) -> Table {
    let stream = workloads::grid_key_stream(n);
    let deflate = DeflateCodec::new();
    let mut table = Table::new(
        &format!("§III-A detector tuning ({n}³ stream, deflate-compressed sizes)"),
        &["selection cycle", "hit threshold", "size (bytes)", "time"],
    );
    for (cycle, num, den) in [
        (64usize, 5u32, 6u32),
        (256, 5, 6), // the paper's setting
        (1024, 5, 6),
        (256, 1, 2),
        (256, 11, 12),
    ] {
        let config = TransformConfig {
            selection_cycle: cycle,
            hit_rate_num: num,
            hit_rate_den: den,
            ..TransformConfig::default()
        };
        let t0 = Instant::now();
        let transformed = transform::forward(&config, &stream);
        let secs = t0.elapsed().as_secs_f64();
        let size = deflate.compress(&transformed).len();
        table.row(&[
            format!("{cycle}"),
            format!("{num}/{den}"),
            format!("{size}"),
            fmt_secs(secs),
        ]);
    }
    table.note("paper fixes 256-byte cycles and a 5/6 threshold; sweep shows sensitivity");
    table
}

/// Scaling sanity: per-cell intermediate bytes are constant across grid
/// sizes (the assumption behind scaling local runs to the paper's 8000²).
pub fn scaling_check(sides: &[u32]) -> Result<Table, GridError> {
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let mut table = Table::new(
        "scaling sanity: per-cell intermediate bytes vs grid size",
        &["grid", "cells", "map output", "bytes/cell"],
    );
    for &n in sides {
        let var = workloads::int_square(n, 5);
        let q = SlidingMedian::new(layout.clone(), SlidingMedianVariant::Plain);
        let run = q.run(&var).expect("query runs");
        let cells = (n as u64) * (n as u64);
        table.row(&[
            format!("{n}²"),
            format!("{cells}"),
            fmt_bytes(run.result.stats.map_output_bytes),
            format!(
                "{:.2}",
                run.result.stats.map_output_bytes as f64 / cells as f64
            ),
        ]);
    }
    table.note("shape target: bytes/cell approximately constant (slight edge effects)");
    Ok(table)
}

/// Distributed-runtime equivalence: run one [`DistJobSpec`] through the
/// local thread pool and through [`run_distributed`] (real worker
/// processes over sockets), then assert the two runs are byte-identical
/// — same outputs, same record counts, same shuffle bytes, same fault
/// and checksum tallies. Panics on any divergence: this experiment *is*
/// the acceptance test for the multi-process shuffle service.
///
/// The table reports what only the distributed run can measure — real
/// socket transfer time, coordinator fetch-wait (time reduce serving
/// blocked on unfinished maps, i.e. the pipelined fetch-while-map
/// overlap), and the measured shuffle bandwidth the cluster model picks
/// up via `ClusterSpec::local_host`.
///
/// When `ledger` is given, both runs append records (`dist_local` and
/// `dist_<transport>`), so `repro --reconcile` can compare the cost
/// model against a real network+disk run.
///
/// `shuffle_mem` bounds the coordinator's in-memory shuffle store
/// (`None` = auto-size from machine memory, `Some(0)` = spill every
/// segment). The byte-identity assertions do not weaken under a tiny
/// budget: spilling changes *where* segments wait, never what is
/// served.
///
/// `wire_codec` selects transparent shuffle compression
/// ([`WireCodec::Lz`] compresses segments once at publish and ships
/// them compressed to capable workers). The byte-identity assertions do
/// not weaken under compression either: `ShuffleBytes` counts logical
/// bytes, and workers inflate before the segment CRC check, so the
/// reduce inputs — and every semantic counter — match the local engine
/// exactly.
pub fn dist_equivalence(
    spec: &crate::distjobs::DistJobSpec,
    workers: usize,
    transport: Transport,
    shuffle_mem: Option<usize>,
    wire_codec: WireCodec,
    worker_args: &[&str],
    ledger: Option<&obs::LedgerSink>,
) -> Table {
    use crate::distjobs::DistJobSpec;

    let with_sink = |config: JobConfig, label: &str| match ledger {
        Some(sink) => config.with_ledger(sink.clone(), label),
        None => config,
    };
    let base = spec.build_config().expect("spec builds a config");

    let local = Job::new(with_sink(base.clone(), "dist_local"))
        .run(
            spec.make_splits(),
            Arc::new(DistJobSpec::mapper()),
            Arc::new(DistJobSpec::reducer()),
        )
        .expect("local run succeeds");

    let dist = DistConfig::default()
        .with_workers(workers)
        .with_transport(transport)
        .with_shuffle_mem_bytes(shuffle_mem)
        .with_wire_codec(wire_codec)
        .with_worker_args(worker_args)
        .with_job_payload(&spec.to_spec_string());
    let t0 = Instant::now();
    let remote = run_distributed(
        &with_sink(base, &format!("dist_{}", transport.name())),
        &dist,
        spec.make_splits(),
    )
    .expect("distributed run succeeds");
    let dist_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        local.outputs, remote.outputs,
        "distributed outputs must be byte-identical to the local engine"
    );
    for c in [
        Counter::MapInputRecords,
        Counter::MapOutputRecords,
        Counter::ReduceInputRecords,
        Counter::ReduceOutputRecords,
        Counter::ShuffleBytes,
        Counter::MapOutputMaterializedBytes,
        Counter::FaultsInjected,
        Counter::ChecksumFailures,
        Counter::TaskRetries,
    ] {
        assert_eq!(
            local.counters.get(c),
            remote.counters.get(c),
            "counter {} must match between local and distributed runs",
            c.name()
        );
    }

    let wait = remote.counters.get(Counter::ShuffleFetchWaitNanos);
    let transfer = remote.counters.get(Counter::ShuffleTransferNanos);
    let bytes = remote.counters.get(Counter::ShuffleBytes);
    let mbps = if transfer > 0 {
        (bytes as f64 * 1000.0) / transfer as f64
    } else {
        0.0
    };
    let ms = |nanos: u64| format!("{:.2} ms", nanos as f64 / 1e6);
    let mut table = Table::new(
        &format!(
            "distributed equivalence: {} workers over {}",
            workers,
            transport.name()
        ),
        &[
            "run",
            "wall",
            "shuffle",
            "fetch wait",
            "transfer",
            "net MB/s",
        ],
    );
    table.row(&[
        "local threads".to_string(),
        fmt_secs((local.stats.map_wall_nanos + local.stats.reduce_wall_nanos) as f64 / 1e9),
        fmt_bytes(local.counters.get(Counter::ShuffleBytes)),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
    ]);
    table.row(&[
        format!("{} procs / {}", workers, transport.name()),
        fmt_secs(dist_secs),
        fmt_bytes(bytes),
        ms(wait),
        ms(transfer),
        format!("{mbps:.0}"),
    ]);
    if let Some(faults) = &spec.faults {
        table.note(&format!(
            "fault plan {faults:?}: {} injected, {} checksum failures, {} retries — identical tallies both runs",
            remote.counters.get(Counter::FaultsInjected),
            remote.counters.get(Counter::ChecksumFailures),
            remote.counters.get(Counter::TaskRetries),
        ));
    }
    if let Some(budget) = shuffle_mem {
        table.note(&format!(
            "shuffle budget {} KiB: {} spilled ({} spill reads, {} dead on republish), high water {} — outputs still byte-identical",
            budget >> 10,
            fmt_bytes(remote.counters.get(Counter::ShuffleSpilledBytes)),
            remote.counters.get(Counter::ShuffleSpillReads),
            fmt_bytes(remote.counters.get(Counter::ShuffleSpillDeadBytes)),
            fmt_bytes(remote.counters.get(Counter::ShuffleMemHighWater)),
        ));
    }
    if wire_codec == WireCodec::Lz {
        let saved = remote.counters.get(Counter::ShuffleWireBytesSaved);
        assert!(
            saved > 0,
            "wire-codec lz must save socket bytes on this compressible workload"
        );
        table.note(&format!(
            "wire codec lz: {} saved off {} logical shuffle ({:.1}%), compress {} / decompress {} — outputs still byte-identical",
            fmt_bytes(saved),
            fmt_bytes(bytes),
            100.0 * saved as f64 / bytes.max(1) as f64,
            ms(remote.counters.get(Counter::LzCompressNanos)),
            ms(remote.counters.get(Counter::LzDecompressNanos)),
        ));
    }
    table.note("outputs and semantic counters byte-identical local vs distributed (asserted)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_overhead_matches_paper_exactly_at_scale() {
        // Run at n=20 (8000 cells): the per-record arithmetic is scale-
        // free: 26 B and 33 B per record + 6 B header.
        let t = intro_overhead(20);
        let rows = t.rows();
        let cells = 20u64 * 20 * 20;
        assert_eq!(rows[0][1], format!("{}", cells * 26 + 6));
        assert_eq!(rows[1][1], format!("{}", cells * 33 + 6));
        assert_eq!(rows[1][3], "6.75");
    }

    #[test]
    fn fig3_ordering_matches_paper_shape() {
        let (_, points) = fig3(16, 100);
        let size = |m: &str| {
            points
                .iter()
                .find(|p| p.method.starts_with(m))
                .expect("method present")
                .size
        };
        assert!(size("transform+deflate") < size("deflate"));
        assert!(size("transform+bzip") < size("bzip"));
        assert!(size("transform+bzip") < size("transform+deflate"));
        assert!(size("bzip") < size("deflate"));
        assert!(size("deflate") < size("original"));
    }

    #[test]
    fn fig4_time_is_roughly_linear() {
        let (_, points) = fig4(&[16, 32]);
        let rate0 = points[0].bytes as f64 / points[0].secs.max(1e-9);
        let rate1 = points[1].bytes as f64 / points[1].secs.max(1e-9);
        // 8x the data should take roughly 8x the time (allow 3x slack for
        // timer noise at these tiny sizes).
        assert!(
            rate1 > rate0 / 3.0 && rate1 < rate0 * 3.0,
            "rates {rate0:.0} vs {rate1:.0} B/s"
        );
    }

    #[test]
    fn fig8_keys_and_overhead_collapse() {
        let (_, bars) = fig8(16, &[1, 8]);
        let original = &bars[0].1;
        let ideal = &bars[1].1;
        let partitioned = &bars[2].1;
        assert_eq!(original.values, ideal.values, "values unchanged");
        assert!(ideal.keys * 10 < original.keys, "keys must collapse");
        assert!(ideal.overhead * 10 < original.overhead);
        // Partitioning aggregates less (more, smaller runs).
        assert!(partitioned.keys >= ideal.keys);
    }

    #[test]
    fn cluster_experiment_reproduces_the_contrast() {
        let (table, rows) = cluster_experiment(48, 8);
        assert_eq!(rows.len(), 3);
        let baseline = &rows[0];
        let transform = &rows[1];
        let agg = &rows[2];
        // Both optimizations shrink intermediate data.
        assert!(
            transform.intermediate < baseline.intermediate,
            "{}",
            table.render()
        );
        assert!(
            agg.intermediate < baseline.intermediate,
            "{}",
            table.render()
        );
        // The paper's headline contrast: transform costs runtime,
        // aggregation saves it.
        assert!(transform.minutes > baseline.minutes, "{}", table.render());
        assert!(agg.minutes < baseline.minutes, "{}", table.render());
    }

    #[test]
    fn curve_ablation_runs() {
        let t = curve_ablation(5, 5);
        assert_eq!(t.rows().len(), 3);
    }

    #[test]
    fn alignment_grows_equal_pairs_and_padding() {
        let t = alignment_ablation(&[16, 64, 256]);
        let equal: Vec<usize> = t.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        let padding: Vec<u64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(
            equal.windows(2).all(|w| w[1] >= w[0]),
            "equal pairs must grow with alignment: {equal:?}"
        );
        assert!(equal.last().unwrap() > equal.first().unwrap());
        assert!(
            padding.windows(2).all(|w| w[1] >= w[0]),
            "padding must grow with alignment: {padding:?}"
        );
    }

    #[test]
    fn coalesce_recovers_split_inflation() {
        let t = coalesce_recovery(32, &[2, 8]);
        for row in t.rows() {
            let before: usize = row[1].parse().unwrap();
            let split: usize = row[2].parse().unwrap();
            let coalesced: usize = row[3].parse().unwrap();
            assert!(coalesced <= split);
            assert!(
                coalesced * 2 < before,
                "coalescing should merge cross-mapper fragments: {coalesced} vs {before}"
            );
        }
    }

    #[test]
    fn traced_pipeline_covers_all_phases_and_reconciles() {
        // reconcile() already asserts histogram/counter agreement inside.
        let (table, trace, counters, ledger) = traced_pipeline(24, 400, IFileVersion::default());
        for phase in ALL_PHASES {
            assert!(
                trace.span_count(phase) > 0,
                "no spans for {:?}\n{}",
                phase,
                table.render()
            );
        }
        assert!(counters.get(Counter::MapOutputBytes) > 0);
        assert_eq!(trace.dropped_events, 0);
        // One rich ledger record per job, with phase rollups and
        // histograms filled from that job's own trace.
        assert_eq!(ledger.len(), 3);
        let labels: Vec<&str> = ledger.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "traced_wordcount",
                "traced_median",
                "traced_faulty_wordcount"
            ]
        );
        assert!(ledger.iter().all(|r| r.phases.iter().any(|p| p.count > 0)));
        assert!(ledger.iter().all(|r| !r.hists.is_empty()));
        assert_eq!(ledger[2].config.fault_seed, Some(1));
    }

    #[test]
    fn traced_pipeline_v3_reconciles_with_key_savings() {
        // Same pipeline over v3 block segments: reconcile() inside
        // demands exact histogram/counter agreement with the new
        // key-saved dimension nonzero.
        let (_, trace, counters, _) = traced_pipeline(24, 400, IFileVersion::V3);
        let b = IntermediateBreakdown::from_trace(&trace);
        assert!(
            b.key_saved_bytes > 0,
            "wordcount keys share prefixes; v3 must save key bytes"
        );
        assert!(counters.get(Counter::BlocksWritten) > 0);
        assert_eq!(trace.dropped_events, 0);
    }

    #[test]
    fn fault_storm_recovers_exactly() {
        // The experiment asserts byte-identical recovery internally;
        // here we check the rendered bookkeeping rows are live.
        let t = fault_storm(
            1200,
            FaultConfig {
                seed: 42,
                map_error_rate: 0.4,
                reduce_error_rate: 0.3,
                corrupt_rate: 0.3,
                slow_rate: 0.1,
                slow_millis: 1,
                attempt_cap: 2,
            },
            3,
        );
        let row = |name: &str| -> u64 {
            t.rows().iter().find(|r| r[0] == name).expect("row present")[2]
                .parse()
                .unwrap()
        };
        assert!(row("task_retries") > 0);
        assert!(row("checksum_failures") > 0);
        assert!(row("checksum_failures") <= row("task_retries"));
        assert!(row("faults_injected") >= row("task_retries"));
    }

    #[test]
    fn fault_storm_recovers_with_block_codec() {
        // PR 4 acceptance: block-compressed segments round-trip
        // byte-identically through the full shuffle under fault
        // injection, with per-block corruption detected and retried.
        // A small block size forces multi-block segments at this scale.
        let codec = crate::codecs::codec_by_name_with_block_size("block-transform+deflate", 1024)
            .expect("factory name");
        let sink = obs::LedgerSink::new();
        let t = fault_storm_with_codec(
            1200,
            FaultConfig {
                seed: 42,
                map_error_rate: 0.4,
                reduce_error_rate: 0.3,
                corrupt_rate: 0.3,
                slow_rate: 0.1,
                slow_millis: 1,
                attempt_cap: 2,
            },
            3,
            Some(codec),
            IFileVersion::V3,
            Some(&sink),
        );
        assert!(t.title().contains("block-transform+deflate"));
        // The engine's runner hook appended one record per run; the clean
        // run has no fault seed, the faulted one carries it.
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "fault_storm_clean");
        assert_eq!(records[0].config.fault_seed, None);
        assert_eq!(records[1].label, "fault_storm_faulted");
        assert_eq!(records[1].config.fault_seed, Some(42));
        assert_eq!(records[1].config.codec, "block-transform+deflate");
        let row = |name: &str| -> u64 {
            t.rows().iter().find(|r| r[0] == name).expect("row present")[2]
                .parse()
                .unwrap()
        };
        assert!(row("task_retries") > 0);
        assert!(row("checksum_failures") > 0);
    }

    #[test]
    fn split_counts_grow_with_reducers() {
        let t = split_counts(24, &[1, 8]);
        let route: Vec<u64> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(route[1] >= route[0]);
    }
}

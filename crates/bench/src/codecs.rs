//! Codec-by-name factory for the `repro` CLI and experiment configs.
//!
//! The grammar composes the workspace's codecs the same way the paper
//! plugs its compression module into Hadoop's pluggable codec slot:
//!
//! ```text
//! name      := "block-" name            parallel block frame (SBK1)
//!            | "transform+" name        stride transform ∘ inner
//!            | "transform"              stride transform alone
//!            | "identity" | "rle" | "lz" | "deflate" | "bzip"
//! ```
//!
//! so `--codec block-transform+deflate` builds
//! `BlockCodec(TransformCodec(DeflateCodec))` — the configuration the
//! paper's Fig. 3/Table II experiments run under when block compression
//! is enabled. Every name parses to a codec whose [`Codec::name`]
//! round-trips to the requested string.

use scihadoop_compress::{
    BlockCodec, BzipCodec, CodecHandle, DeflateCodec, IdentityCodec, LzCodec, RleCodec,
    DEFAULT_BLOCK_SIZE,
};
use scihadoop_core::transform::TransformCodec;
use std::sync::Arc;

/// Build a codec from its composed name with the default block size.
pub fn codec_by_name(name: &str) -> Result<CodecHandle, String> {
    codec_by_name_with_block_size(name, DEFAULT_BLOCK_SIZE)
}

/// Build a codec from its composed name; every `block-` layer uses
/// `block_size` bytes per block.
pub fn codec_by_name_with_block_size(name: &str, block_size: usize) -> Result<CodecHandle, String> {
    if block_size == 0 {
        return Err("block size must be non-zero".into());
    }
    if let Some(rest) = name.strip_prefix("block-") {
        let inner = codec_by_name_with_block_size(rest, block_size)?;
        return Ok(Arc::new(BlockCodec::with_block_size(inner, block_size)));
    }
    if let Some(rest) = name.strip_prefix("transform+") {
        let inner = codec_by_name_with_block_size(rest, block_size)?;
        return Ok(Arc::new(TransformCodec::with_defaults(inner)));
    }
    match name {
        "transform" => Ok(Arc::new(TransformCodec::with_defaults(Arc::new(
            IdentityCodec,
        )))),
        "identity" => Ok(Arc::new(IdentityCodec)),
        "rle" => Ok(Arc::new(RleCodec)),
        "lz" => Ok(Arc::new(LzCodec)),
        "deflate" => Ok(Arc::new(DeflateCodec::new())),
        "bzip" => Ok(Arc::new(BzipCodec::new())),
        other => Err(format!(
            "unknown codec {other:?}; grammar: [block-][transform+](identity|rle|lz|deflate|bzip)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_the_factory() {
        for name in [
            "identity",
            "rle",
            "deflate",
            "bzip",
            "lz",
            "transform",
            "transform+deflate",
            "transform+bzip",
            "transform+lz",
            "block-deflate",
            "block-lz",
            "block-transform+deflate",
            "block-transform+lz",
            "transform+block-deflate",
            "block-block-deflate",
        ] {
            let codec = codec_by_name(name).expect(name);
            assert_eq!(codec.name(), name);
        }
    }

    /// Every name the grammar generates (both optional prefixes crossed
    /// with every base codec) must build, round-trip its own name, and
    /// round-trip data — so a new base codec cannot be half-wired into
    /// the factory the way a static `name()` once collapsed wrapped
    /// codecs together.
    #[test]
    fn the_full_grammar_round_trips_names_and_data() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_be_bytes()).collect();
        for base in ["identity", "rle", "lz", "deflate", "bzip"] {
            for prefix in ["", "transform+", "block-", "block-transform+"] {
                let name = format!("{prefix}{base}");
                let codec = codec_by_name_with_block_size(&name, 4096).expect(&name);
                // "transform+identity" normalizes to "transform" — the
                // one composed name the grammar spells differently.
                let expect = if name == "transform+identity" {
                    "transform".to_string()
                } else if name == "block-transform+identity" {
                    "block-transform".to_string()
                } else {
                    name.clone()
                };
                assert_eq!(codec.name(), expect, "{name}");
                let z = codec.compress(&data);
                assert_eq!(codec.decompress(&z).expect(&name), data, "{name}");
            }
        }
    }

    #[test]
    fn factory_codecs_round_trip_data() {
        let data: Vec<u8> = (0..40_000u32).flat_map(|i| i.to_be_bytes()).collect();
        for name in [
            "block-deflate",
            "block-transform+deflate",
            "transform+rle",
            "block-lz",
            "transform+lz",
        ] {
            let codec = codec_by_name_with_block_size(name, 4096).expect(name);
            let z = codec.compress(&data);
            assert_eq!(codec.decompress(&z).expect(name), data, "{name}");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(codec_by_name("gzip").is_err());
        assert!(codec_by_name("block-").is_err());
        assert!(codec_by_name("transform+lzma").is_err());
        assert!(codec_by_name_with_block_size("deflate", 0).is_err());
    }
}

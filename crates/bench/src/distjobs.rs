//! Self-describing job specs for multi-process runs.
//!
//! The distributed runtime re-executes the current binary to get worker
//! processes, so the coordinator and every worker must reconstruct the
//! *same* `(JobConfig, Mapper, Reducer)` triple from nothing but the
//! opaque payload carried in `SCIHADOOP_DIST_JOB`. [`DistJobSpec`] is
//! that payload: a `key=value;…` string naming the workload size and
//! every config knob that affects bytes on the wire (codec, IFile
//! version, fault plan, retry budget). The workload itself is fixed —
//! the same wordcount the fault-storm experiment runs — because the
//! point of the spec is equivalence testing, not generality.
//!
//! [`dist_worker`] is the bootstrap a binary hands control to when
//! [`scihadoop_mapreduce::dist::worker_env`] detects the worker
//! environment.

use crate::codecs::codec_by_name_with_block_size;
use scihadoop_compress::DEFAULT_BLOCK_SIZE;
use scihadoop_mapreduce::{
    Emit, FaultConfig, FaultPlan, FnMapper, FnReducer, Framing, IFileVersion, InputSplit,
    JobConfig, KvPair, Mapper, MrError, Reducer, WorkerEnv,
};

/// Everything a worker process needs to rebuild the benchmark job.
#[derive(Debug, Clone, PartialEq)]
pub struct DistJobSpec {
    /// Number of input records (`word-{i % 97}` wordcount keys).
    pub records: usize,
    /// Reducer (partition) count.
    pub reducers: usize,
    /// Map slots per worker process.
    pub map_slots: usize,
    /// Reduce slots per worker process.
    pub reduce_slots: usize,
    /// Intermediate-file format version.
    pub ifile: IFileVersion,
    /// Composed codec name for `codec_by_name_with_block_size`.
    pub codec: String,
    /// Block size for block-framed codecs, in KiB.
    pub block_kib: usize,
    /// Per-task retry budget.
    pub retries: u32,
    /// Retry backoff base, in microseconds.
    pub backoff_us: u64,
    /// Optional fault-plan spec (`FaultConfig::parse` grammar). The
    /// value may itself contain commas, which is why the spec string is
    /// `;`-separated.
    pub faults: Option<String>,
}

impl Default for DistJobSpec {
    fn default() -> Self {
        DistJobSpec {
            records: 4096,
            reducers: 3,
            map_slots: 2,
            reduce_slots: 2,
            ifile: IFileVersion::default(),
            codec: "identity".to_string(),
            block_kib: DEFAULT_BLOCK_SIZE / 1024,
            retries: 0,
            backoff_us: 50,
            faults: None,
        }
    }
}

impl DistJobSpec {
    /// Serialize to the `key=value;…` payload form. Round-trips through
    /// [`DistJobSpec::parse`].
    pub fn to_spec_string(&self) -> String {
        let mut s = format!(
            "records={};reducers={};map_slots={};reduce_slots={};ifile={};codec={};block_kib={};retries={};backoff_us={}",
            self.records,
            self.reducers,
            self.map_slots,
            self.reduce_slots,
            self.ifile.number(),
            self.codec,
            self.block_kib,
            self.retries,
            self.backoff_us,
        );
        if let Some(faults) = &self.faults {
            s.push_str(";faults=");
            s.push_str(faults);
        }
        s
    }

    /// Parse the payload form. Unknown keys are errors: a worker running
    /// a spec it only half-understands would silently diverge from the
    /// coordinator.
    pub fn parse(spec: &str) -> Result<DistJobSpec, MrError> {
        let mut out = DistJobSpec::default();
        for part in spec.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| MrError::Config(format!("bad dist job spec field {part:?}")))?;
            let int = |what: &str| {
                value
                    .parse::<u64>()
                    .map_err(|e| MrError::Config(format!("bad {what} {value:?}: {e}")))
            };
            match key {
                "records" => out.records = int("records")? as usize,
                "reducers" => out.reducers = int("reducers")? as usize,
                "map_slots" => out.map_slots = int("map_slots")? as usize,
                "reduce_slots" => out.reduce_slots = int("reduce_slots")? as usize,
                "ifile" => out.ifile = IFileVersion::parse(value).map_err(MrError::Config)?,
                "codec" => out.codec = value.to_string(),
                "block_kib" => out.block_kib = int("block_kib")? as usize,
                "retries" => out.retries = int("retries")? as u32,
                "backoff_us" => out.backoff_us = int("backoff_us")?,
                "faults" => out.faults = Some(value.to_string()),
                other => {
                    return Err(MrError::Config(format!(
                        "unknown dist job spec key {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Build the `JobConfig` both sides run under. Deterministic in the
    /// spec: the coordinator's config and every worker's config are
    /// interchangeable.
    pub fn build_config(&self) -> Result<JobConfig, MrError> {
        let codec = codec_by_name_with_block_size(&self.codec, self.block_kib * 1024)
            .map_err(MrError::Config)?;
        let mut config = JobConfig::default()
            .with_reducers(self.reducers)
            .with_slots(self.map_slots, self.reduce_slots)
            .with_framing(Framing::IFile)
            .with_ifile_version(self.ifile)
            .with_codec(codec)
            .with_retries(self.retries)
            .with_retry_backoff(std::time::Duration::from_micros(self.backoff_us));
        if let Some(faults) = &self.faults {
            config = config.with_faults(FaultPlan::new(FaultConfig::parse(faults)?));
        }
        Ok(config)
    }

    /// The fixed wordcount input: `records` keys cycling through 97
    /// distinct words, split into 128-record input splits — the same
    /// shape the fault-storm experiment shuffles.
    pub fn make_splits(&self) -> Vec<InputSplit> {
        (0..self.records)
            .map(|i| format!("word-{:05}", i % 97))
            .collect::<Vec<_>>()
            .chunks(128)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect()
    }

    /// The identity-emit mapper every spec runs.
    pub fn mapper() -> impl Mapper {
        FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| out.emit(k, v))
    }

    /// The summing reducer every spec runs (1-byte raw counts or 8-byte
    /// big-endian partial sums in, 8-byte big-endian totals out).
    pub fn reducer() -> impl Reducer {
        FnReducer(crate::experiments::sum_values)
    }
}

/// Worker-process bootstrap: rebuild the job from the environment's
/// payload and serve tasks until the coordinator says `Shutdown`.
/// Returns a process exit code; callers (`repro` main, test harness
/// entry points) should `std::process::exit` with it.
pub fn dist_worker(env: &WorkerEnv) -> i32 {
    let run = || -> Result<(), MrError> {
        let spec = DistJobSpec::parse(&env.job_payload)?;
        let config = spec.build_config()?;
        scihadoop_mapreduce::run_worker(
            env.transport,
            &env.addr,
            env.worker,
            &config,
            &DistJobSpec::mapper(),
            &DistJobSpec::reducer(),
        )
    };
    match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("dist worker {}: {e}", env.worker);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_string_roundtrips_including_faults() {
        let spec = DistJobSpec {
            records: 2048,
            reducers: 4,
            codec: "block-transform+deflate".to_string(),
            block_kib: 16,
            retries: 4,
            faults: Some("seed=42,map=0.4,corrupt=0.3,cap=2".to_string()),
            ..DistJobSpec::default()
        };
        let s = spec.to_spec_string();
        assert_eq!(DistJobSpec::parse(&s).unwrap(), spec);
        // The fault value's commas survive the `;` field separator.
        assert!(s.contains("faults=seed=42,map=0.4,corrupt=0.3,cap=2"));
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_fields() {
        assert!(DistJobSpec::parse("frobnicate=1").is_err());
        assert!(DistJobSpec::parse("records").is_err());
        assert!(DistJobSpec::parse("records=many").is_err());
    }

    #[test]
    fn build_config_honors_the_spec() {
        let spec = DistJobSpec {
            reducers: 5,
            ifile: IFileVersion::V3,
            codec: "rle".to_string(),
            faults: Some("seed=7,map=0.5".to_string()),
            retries: 2,
            ..DistJobSpec::default()
        };
        let config = spec.build_config().unwrap();
        assert_eq!(config.num_reducers, 5);
        assert_eq!(config.task_retries, 2);
        assert!(config.faults.is_some());
        assert!(DistJobSpec {
            codec: "no-such-codec".to_string(),
            ..DistJobSpec::default()
        }
        .build_config()
        .is_err());
    }

    #[test]
    fn splits_cover_all_records() {
        let spec = DistJobSpec {
            records: 300,
            ..DistJobSpec::default()
        };
        let splits = spec.make_splits();
        assert_eq!(splits.len(), 3);
        let total: usize = splits.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, 300);
    }
}

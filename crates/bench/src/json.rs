//! A minimal recursive-descent JSON parser — just enough to validate
//! the exporter output from [`scihadoop_mapreduce::obs`] without any
//! external dependency. Accepts strict JSON (RFC 8259); numbers are
//! parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `get_path(&["derived", "intermediate_breakdown"])`.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate.
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get_path(&["b", "c"]), Some(&Json::Null));
        assert_eq!(v.get_path(&["b", "d"]), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        let v = parse(r#""a\"b\\c\n\u0041\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "nul",
            "\"\\uD800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_exporter_output() {
        use scihadoop_mapreduce::obs::{chrome_trace_json, metrics_json, Recorder};
        let rec = Recorder::new();
        let trace = rec.finish();
        let chrome = parse(&chrome_trace_json(&trace)).expect("chrome trace is valid JSON");
        assert!(chrome.get("traceEvents").unwrap().as_arr().is_some());
        let counters = scihadoop_mapreduce::Counters::new().snapshot();
        let metrics = parse(&metrics_json(&trace, &counters)).expect("metrics are valid JSON");
        assert_eq!(
            metrics.get("schema").unwrap().as_str(),
            Some(scihadoop_mapreduce::obs::METRICS_SCHEMA)
        );
    }
}

//! Plain-text table rendering for experiment reports.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a footnote.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Table title (for tests and EXPERIMENTS.md generation).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Table rows (for tests and EXPERIMENTS.md generation).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Human-friendly byte counts.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000_000 {
        format!("{:.1} GB", b as f64 / 1e9)
    } else if b >= 10_000_000 {
        format!("{:.2} MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.2} kB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "size"]);
        t.row(&["gzip".into(), "1,630,000".into()]);
        t.row(&["transform+gzip".into(), "33,000".into()]);
        t.note("smaller is better");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("transform+gzip"));
        assert!(s.contains("note: smaller is better"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(33_000), "33.00 kB");
        assert_eq!(fmt_bytes(12_000_000), "12.00 MB");
        assert_eq!(fmt_bytes(55_500_000_000), "55.5 GB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(3.456), "3.46 s");
        assert_eq!(fmt_secs(377.0 * 60.0), "22620 s");
    }
}

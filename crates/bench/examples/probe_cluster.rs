//! Per-phase CPU breakdown of each cluster-experiment variant — the
//! quick triage tool for phase-accounting regressions (run with
//! `cargo run --release -p scihadoop-bench --example probe_cluster`).

fn main() {
    let (_, rows) = scihadoop_bench::experiments::cluster_experiment(48, 8);
    for r in &rows {
        let s = &r.stats;
        println!(
            "{:40} map_fn {:>8.1}ms spill {:>8.1}ms merge {:>8.1}ms reduce_fn {:>8.1}ms compress {:>8.1}ms decompress {:>8.1}ms",
            r.label,
            s.map_fn_nanos as f64 / 1e6,
            s.spill_nanos as f64 / 1e6,
            s.merge_nanos as f64 / 1e6,
            s.reduce_fn_nanos as f64 / 1e6,
            s.compress_nanos as f64 / 1e6,
            s.decompress_nanos as f64 / 1e6,
        );
    }
}

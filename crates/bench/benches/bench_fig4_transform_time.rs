//! Fig. 4: transform time vs input size — Criterion's per-size samples
//! show the linearity directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_core::transform::{StridePredictor, TransformConfig};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_transform_time");
    group.sample_size(10);
    for n in [16u32, 24, 32, 40] {
        let stream = workloads::grid_key_stream(n);
        group.throughput(Throughput::Bytes(stream.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}^3")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    StridePredictor::new(TransformConfig::default())
                        .forward(stream)
                        .len()
                })
            },
        );
    }
    group.finish();

    // The inverse path must track the forward path (same state machine).
    let stream = workloads::grid_key_stream(24);
    let transformed = StridePredictor::new(TransformConfig::default()).forward(&stream);
    let mut group = c.benchmark_group("fig4_inverse_transform");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(10);
    group.bench_function("24^3", |b| {
        b.iter(|| {
            StridePredictor::new(TransformConfig::default())
                .inverse(&transformed)
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

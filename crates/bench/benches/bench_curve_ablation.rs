//! §IV-A: Z-order vs Hilbert vs row-major — encode cost and clustering
//! (range-decomposition) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_grid::{BoundingBox, Coord, Shape};
use scihadoop_sfc::{box_runs, Curve, HilbertCurve, RowMajorCurve, ZOrderCurve};

fn bench_curves(c: &mut Criterion) {
    let curves: Vec<Box<dyn Curve>> = vec![
        Box::new(ZOrderCurve::with_bits(3, 10)),
        Box::new(HilbertCurve::with_bits(3, 10)),
        Box::new(RowMajorCurve::with_bits(3, 10)),
    ];

    let mut group = c.benchmark_group("curve_encode");
    group.throughput(Throughput::Elements(10_000));
    for curve in &curves {
        group.bench_with_input(
            BenchmarkId::from_parameter(curve.name()),
            curve,
            |b, curve| {
                b.iter(|| {
                    let mut acc = 0u128;
                    for i in 0..10_000u32 {
                        acc ^= curve
                            .index_of(&[i % 1024, (i * 7) % 1024, (i * 13) % 1024])
                            .unwrap();
                    }
                    acc
                })
            },
        );
    }
    group.finish();

    let bbox = BoundingBox::new(Coord::new(vec![5, 9]), Shape::new(vec![20, 20])).unwrap();
    let curves_2d: Vec<Box<dyn Curve>> = vec![
        Box::new(ZOrderCurve::with_bits(2, 8)),
        Box::new(HilbertCurve::with_bits(2, 8)),
        Box::new(RowMajorCurve::with_bits(2, 8)),
    ];
    let mut group = c.benchmark_group("curve_box_decomposition");
    group.throughput(Throughput::Elements(bbox.num_cells()));
    for curve in &curves_2d {
        group.bench_with_input(
            BenchmarkId::from_parameter(curve.name()),
            curve,
            |b, curve| b.iter(|| box_runs(curve.as_ref(), &bbox).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);

//! IFile v3 benchmark: front-coded sorted-block segments against the
//! flat v2 format — write throughput, merged bytes, merge throughput on
//! contended (interleaved) vs uncontended (disjoint-range) fan-in, and
//! the block-skip hit rate the fence-key index buys on presorted runs.
//!
//! Run with `cargo bench --bench bench_ifile`. Set
//! `BENCH_IFILE_JSON=<path>` to also write the measurements as JSON —
//! `BENCH_ifile.json` at the repo root is a committed baseline from
//! this machine.

use criterion::{black_box, Criterion, Throughput};
use scihadoop_compress::IdentityCodec;
use scihadoop_mapreduce::{
    BlockMergeStream, DefaultKeySemantics, Framing, IFileWriter, KeySemantics, KvPair, MergeItem,
    MergeStream, RawSegment,
};
use std::sync::Arc;
use std::time::Instant;

const RUNS: usize = 8;
const RECORDS_PER_RUN: usize = 2_500;

/// Sliding-median-shaped records: long shared path prefix, numeric
/// tail, 8-byte values — the workload the paper compresses. Used for
/// the write-path byte/throughput comparison.
fn keyed_pair(i: usize) -> KvPair {
    KvPair::new(
        format!("climate/temperature/cell-{:08}", i).into_bytes(),
        (i as u64).to_be_bytes().to_vec(),
    )
}

/// Grid-coordinate-shaped records: 8-byte big-endian keys whose leading
/// bytes carry the entropy, so fence-key `sort_prefix` comparisons can
/// separate block ranges. Used for the merge benchmarks — keys whose
/// first 8 bytes all collide (like a shared path prefix) can never
/// satisfy the strict-prefix skip rule.
fn grid_pair(i: usize) -> KvPair {
    KvPair::new(
        ((i as u64) << 24).to_be_bytes().to_vec(),
        (i as u64).to_be_bytes().to_vec(),
    )
}

fn write_v2(pairs: &[KvPair]) -> Vec<u8> {
    let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
    for p in pairs {
        w.append_pair(p);
    }
    w.close().data
}

fn write_v3(pairs: &[KvPair]) -> Vec<u8> {
    let mut w = IFileWriter::v3(
        Framing::IFile,
        Arc::new(IdentityCodec),
        Arc::new(DefaultKeySemantics),
    );
    for p in pairs {
        w.append_pair(p);
    }
    w.close().data
}

/// [`write_v3`] with an explicit per-block body budget, for the
/// block-budget sweep that backs `DEFAULT_BLOCK_BUDGET`.
fn write_v3_budget(pairs: &[KvPair], budget: usize) -> Vec<u8> {
    let mut w = IFileWriter::v3_with_budget(
        Framing::IFile,
        Arc::new(IdentityCodec),
        Arc::new(DefaultKeySemantics),
        budget,
    );
    for p in pairs {
        w.append_pair(p);
    }
    w.close().data
}

/// Disjoint-range runs: run r owns `[r * RECORDS_PER_RUN, (r+1) * ...)`.
/// Presorted relative to each other — the block-skip fast path's case.
fn disjoint_runs() -> Vec<Vec<KvPair>> {
    (0..RUNS)
        .map(|r| {
            (0..RECORDS_PER_RUN)
                .map(|i| grid_pair(r * RECORDS_PER_RUN + i))
                .collect()
        })
        .collect()
}

/// Interleaved runs: run r owns every RUNS-th key. Every block of every
/// run is contended, so the merge must replay per record — the shuffled
/// emission the skip rule must not slow down.
fn interleaved_runs() -> Vec<Vec<KvPair>> {
    (0..RUNS)
        .map(|r| {
            (0..RECORDS_PER_RUN)
                .map(|i| grid_pair(i * RUNS + r))
                .collect()
        })
        .collect()
}

/// The PR 5 baseline's merge workload, byte for byte: 8 runs of 50x50
/// grid keys with the leading byte remixed per run (shuffled emission),
/// re-sorted — the `merge_reduce/streaming_loser_tree` rows of
/// `bench_shuffle_hotpath` / `BENCH_shuffle.json`. Merging these v2 runs
/// with `MergeStream` *is* the PR 5 baseline path, so the paired v3/v2
/// ratio on this workload is the "no slower than PR 5 on shuffled
/// emission" acceptance measurement.
fn pr5_runs() -> Vec<Vec<KvPair>> {
    let ks = DefaultKeySemantics;
    (0..RUNS as u32)
        .map(|r| {
            let mut run: Vec<KvPair> = (0..50u32)
                .flat_map(|x| (0..50u32).map(move |y| (x, y)))
                .map(|(x, y)| {
                    let key: Vec<u8> = [x.to_be_bytes(), y.to_be_bytes()].concat();
                    KvPair::new(key, (x ^ y).to_be_bytes().to_vec())
                })
                .collect();
            for (i, p) in run.iter_mut().enumerate() {
                p.key[0] = ((i as u32 * 7 + r) % 13) as u8;
            }
            run.sort_by(|a, b| ks.compare(&a.key, &b.key));
            run
        })
        .collect()
}

/// Median v3-over-v2 *throughput* ratio from interleaved timing rounds:
/// each round times both sides back to back in alternating order, so
/// machine drift hits both equally (the same technique as the CRC
/// overhead measurement in `bench_shuffle_hotpath`). Criterion's
/// sequential groups are too noisy for a ratio claim on a busy box.
fn paired_throughput_ratio(mut v2: impl FnMut(), mut v3: impl FnMut(), rounds: usize) -> f64 {
    v2();
    v3(); // warm both paths before timing
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let (a, b) = if round % 2 == 0 {
            let t0 = Instant::now();
            v2();
            let a = t0.elapsed().as_nanos().max(1);
            let t0 = Instant::now();
            v3();
            (a, t0.elapsed().as_nanos().max(1))
        } else {
            let t0 = Instant::now();
            v3();
            let b = t0.elapsed().as_nanos().max(1);
            let t0 = Instant::now();
            v2();
            (t0.elapsed().as_nanos().max(1), b)
        };
        ratios.push(a as f64 / b as f64); // time_v2 / time_v3 = v3 throughput / v2 throughput
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    ratios[ratios.len() / 2]
}

fn open_all(sealed: &[Vec<u8>]) -> Vec<RawSegment> {
    sealed
        .iter()
        .map(|s| RawSegment::open(s, &IdentityCodec).unwrap())
        .collect()
}

/// Flat v2 merge: stream every record, count records.
fn v2_merge(sealed: &[Vec<u8>]) -> u64 {
    let raws = open_all(sealed);
    let mut stream = MergeStream::new(&raws, &DefaultKeySemantics).unwrap();
    let mut n = 0u64;
    while stream.next().unwrap().is_some() {
        n += 1;
    }
    n
}

/// v3 record-at-a-time merge (the reduce-side consumption shape).
fn v3_merge_records(sealed: &[Vec<u8>]) -> u64 {
    let raws = open_all(sealed);
    let mut stream = BlockMergeStream::new(&raws, &DefaultKeySemantics).unwrap();
    let mut n = 0u64;
    while stream.next().unwrap().is_some() {
        n += 1;
    }
    n
}

/// The PR 5 baseline's measured loop verbatim: loser-tree merge plus
/// borrowed-slice grouping (`bench_shuffle_hotpath::streaming_merge_iter`).
fn v2_merge_group(sealed: &[Vec<u8>], ks: &DefaultKeySemantics) -> u64 {
    let raws = open_all(sealed);
    let mut stream = MergeStream::new(&raws, ks).unwrap();
    let mut acc = 0u64;
    let mut group_key: Option<&[u8]> = None;
    let mut group_len = 0u64;
    while let Some((key, _value)) = stream.next().unwrap() {
        match group_key {
            Some(gk) if ks.group_eq(gk, key) => group_len += 1,
            _ => {
                acc += group_len;
                group_key = Some(key);
                group_len = 1;
            }
        }
    }
    acc + group_len
}

/// The same merge+group loop over v3 runs. Keys borrow the winning
/// cursor's scratch (invalidated by the next advance), so the group key
/// lives in an owned buffer refreshed at each group boundary.
fn v3_merge_group(sealed: &[Vec<u8>], ks: &DefaultKeySemantics) -> u64 {
    let raws = open_all(sealed);
    let mut stream = BlockMergeStream::new(&raws, ks).unwrap();
    let mut acc = 0u64;
    let mut group_key: Vec<u8> = Vec::new();
    let mut group_len = 0u64;
    while let Some((key, _value)) = stream.next().unwrap() {
        if group_len > 0 && ks.group_eq(&group_key, key) {
            group_len += 1;
        } else {
            acc += group_len;
            group_key.clear();
            group_key.extend_from_slice(key);
            group_len = 1;
        }
    }
    acc + group_len
}

/// v3 block-splicing merge (the map-side re-merge shape): uncontended
/// blocks pass through still encoded. Returns (records, blocks spliced).
fn v3_merge_items(sealed: &[Vec<u8>]) -> (u64, u64) {
    let raws = open_all(sealed);
    let mut stream = BlockMergeStream::new(&raws, &DefaultKeySemantics).unwrap();
    let mut w = IFileWriter::v3(
        Framing::IFile,
        Arc::new(IdentityCodec),
        Arc::new(DefaultKeySemantics),
    );
    let mut n = 0u64;
    let mut spliced = 0u64;
    loop {
        match stream.next_item().unwrap() {
            None => break,
            Some(MergeItem::Record(k, v)) => {
                n += 1;
                w.append(k, v);
            }
            Some(MergeItem::Block(blk)) => {
                n += blk.records;
                spliced += 1;
                w.append_encoded_block(&blk).unwrap();
            }
        }
    }
    black_box(w.close().raw_bytes);
    (n, spliced)
}

fn main() {
    let mut criterion = Criterion::default();

    // ---- write path -----------------------------------------------------
    let pairs: Vec<KvPair> = (0..RUNS * RECORDS_PER_RUN).map(keyed_pair).collect();
    {
        let mut group = criterion.benchmark_group("ifile_write");
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.sample_size(20);
        group.bench_function("v2", |b| b.iter(|| black_box(write_v2(&pairs)).len()));
        group.bench_function("v3", |b| b.iter(|| black_box(write_v3(&pairs)).len()));
        group.finish();
    }
    let v2_bytes = write_v2(&pairs).len() as u64;
    let v3_bytes = write_v3(&pairs).len() as u64;

    // ---- merge path -----------------------------------------------------
    let total = (RUNS * RECORDS_PER_RUN) as u64;
    let disjoint_v2: Vec<Vec<u8>> = disjoint_runs().iter().map(|r| write_v2(r)).collect();
    let disjoint_v3: Vec<Vec<u8>> = disjoint_runs().iter().map(|r| write_v3(r)).collect();
    let interleaved_v2: Vec<Vec<u8>> = interleaved_runs().iter().map(|r| write_v2(r)).collect();
    let interleaved_v3: Vec<Vec<u8>> = interleaved_runs().iter().map(|r| write_v3(r)).collect();
    {
        let mut group = criterion.benchmark_group("ifile_merge");
        group.throughput(Throughput::Elements(total));
        group.sample_size(20);
        group.bench_function("v2_interleaved", |b| {
            b.iter(|| assert_eq!(v2_merge(&interleaved_v2), total))
        });
        group.bench_function("v3_interleaved", |b| {
            b.iter(|| assert_eq!(v3_merge_records(&interleaved_v3), total))
        });
        group.bench_function("v2_disjoint", |b| {
            b.iter(|| assert_eq!(v2_merge(&disjoint_v2), total))
        });
        group.bench_function("v3_disjoint", |b| {
            b.iter(|| assert_eq!(v3_merge_records(&disjoint_v3), total))
        });
        group.bench_function("v3_disjoint_splice", |b| {
            b.iter(|| assert_eq!(v3_merge_items(&disjoint_v3).0, total))
        });
        group.finish();
    }

    // ---- PR 5 baseline workload (shuffled emission + grouping) -----------
    let ks = DefaultKeySemantics;
    let pr5 = pr5_runs();
    let pr5_total: u64 = pr5.iter().map(|r| r.len() as u64).sum();
    let pr5_v2: Vec<Vec<u8>> = pr5.iter().map(|r| write_v2(r)).collect();
    let pr5_v3: Vec<Vec<u8>> = pr5.iter().map(|r| write_v3(r)).collect();
    let pr5_groups = v2_merge_group(&pr5_v2, &ks);
    assert_eq!(pr5_groups, v3_merge_group(&pr5_v3, &ks));
    {
        let mut group = criterion.benchmark_group("ifile_merge_pr5");
        group.throughput(Throughput::Elements(pr5_total));
        group.sample_size(20);
        group.bench_function("v2_shuffled_grouped", |b| {
            b.iter(|| assert_eq!(v2_merge_group(&pr5_v2, &ks), pr5_groups))
        });
        group.bench_function("v3_shuffled_grouped", |b| {
            b.iter(|| assert_eq!(v3_merge_group(&pr5_v3, &ks), pr5_groups))
        });
        group.finish();
    }

    // ---- paired merge ratios (drift-immune) ------------------------------
    let merge_interleaved_ratio = paired_throughput_ratio(
        || {
            assert_eq!(v2_merge(&interleaved_v2), total);
        },
        || {
            assert_eq!(v3_merge_records(&interleaved_v3), total);
        },
        40,
    );
    let merge_disjoint_ratio = paired_throughput_ratio(
        || {
            assert_eq!(v2_merge(&disjoint_v2), total);
        },
        || {
            assert_eq!(v3_merge_records(&disjoint_v3), total);
        },
        40,
    );
    let merge_splice_speedup = paired_throughput_ratio(
        || {
            assert_eq!(v2_merge(&disjoint_v2), total);
        },
        || {
            assert_eq!(v3_merge_items(&disjoint_v3).0, total);
        },
        40,
    );
    let merge_pr5_shuffled_ratio = paired_throughput_ratio(
        || {
            assert_eq!(v2_merge_group(&pr5_v2, &ks), pr5_groups);
        },
        || {
            assert_eq!(v3_merge_group(&pr5_v3, &ks), pr5_groups);
        },
        40,
    );

    // ---- block-skip hit rate --------------------------------------------
    let blocks_per_set =
        |sealed: &[Vec<u8>]| -> u64 { open_all(sealed).iter().map(|r| r.blocks() as u64).sum() };
    let (_, spliced_disjoint) = v3_merge_items(&disjoint_v3);
    let (_, spliced_interleaved) = v3_merge_items(&interleaved_v3);
    let skip_rate_disjoint = spliced_disjoint as f64 / blocks_per_set(&disjoint_v3) as f64;
    let skip_rate_interleaved = spliced_interleaved as f64 / blocks_per_set(&interleaved_v3) as f64;

    // ---- block-budget sweep ----------------------------------------------
    // Backs DEFAULT_BLOCK_BUDGET (4096): per budget, segment bytes on the
    // front-coding write workload (fence/header overhead amortization) and
    // skip rate + splice speedup on disjoint presorted runs (granularity:
    // a bigger block is likelier to straddle a rival's fence).
    let budgets: [usize; 5] = [512, 1024, 4096, 16384, 65536];
    let mut sweep: Vec<(usize, u64, u64, f64, f64)> = Vec::new();
    for &budget in &budgets {
        let seg_bytes = write_v3_budget(&pairs, budget).len() as u64;
        let runs: Vec<Vec<u8>> = disjoint_runs()
            .iter()
            .map(|r| write_v3_budget(r, budget))
            .collect();
        let blocks = blocks_per_set(&runs);
        let (n, spliced) = v3_merge_items(&runs);
        assert_eq!(n, total);
        let skip_rate = spliced as f64 / blocks as f64;
        let splice_speedup = paired_throughput_ratio(
            || {
                assert_eq!(v2_merge(&disjoint_v2), total);
            },
            || {
                assert_eq!(v3_merge_items(&runs).0, total);
            },
            20,
        );
        sweep.push((budget, seg_bytes, blocks, skip_rate, splice_speedup));
    }

    // ---- summary ---------------------------------------------------------
    let bytes_ratio = v3_bytes as f64 / v2_bytes as f64;
    let write_ratio = paired_throughput_ratio(
        || {
            black_box(write_v2(&pairs));
        },
        || {
            black_box(write_v3(&pairs));
        },
        40,
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "\nv2 segment bytes: {v2_bytes}  v3 segment bytes: {v3_bytes}  (v3/v2 = {bytes_ratio:.3})"
    );
    println!("write throughput ratio (v3/v2):              {write_ratio:.2}x");
    println!("merge throughput, interleaved runs (v3/v2):  {merge_interleaved_ratio:.2}x");
    println!("merge throughput, disjoint runs (v3/v2):     {merge_disjoint_ratio:.2}x");
    println!("merge throughput, disjoint splice (v3/v2):   {merge_splice_speedup:.2}x");
    println!("merge throughput, PR 5 shuffled+group (v3/v2): {merge_pr5_shuffled_ratio:.2}x");
    println!(
        "block-skip hit rate: disjoint {:.1}%  interleaved {:.1}%",
        skip_rate_disjoint * 100.0,
        skip_rate_interleaved * 100.0
    );
    println!("\nblock-budget sweep (write workload bytes; disjoint-run skip/splice):");
    println!("  budget  segment_bytes  blocks  skip_rate  splice_speedup");
    for &(budget, seg_bytes, blocks, skip_rate, splice_speedup) in &sweep {
        println!(
            "  {budget:>6}  {seg_bytes:>13}  {blocks:>6}  {:>8.1}%  {splice_speedup:>13.2}x",
            skip_rate * 100.0
        );
    }

    if let Ok(path) = std::env::var("BENCH_IFILE_JSON") {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in criterion.measurements.iter().enumerate() {
            let sep = if i + 1 < criterion.measurements.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.0}, \"records_per_s\": {:.0}}}{}\n",
                m.id,
                m.median_ns,
                m.per_second().unwrap_or(0.0),
                sep
            ));
        }
        json.push_str("  ],\n  \"block_budget_sweep\": [\n");
        for (i, &(budget, seg_bytes, blocks, skip_rate, splice_speedup)) in sweep.iter().enumerate()
        {
            let sep = if i + 1 < sweep.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"budget\": {budget}, \"segment_bytes\": {seg_bytes}, \"blocks\": {blocks}, \"skip_rate\": {skip_rate:.3}, \"splice_speedup\": {splice_speedup:.2}}}{sep}\n"
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"v2_segment_bytes\": {v2_bytes},\n  \"v3_segment_bytes\": {v3_bytes},\n  \"v3_over_v2_bytes\": {bytes_ratio:.3},\n  \"write_throughput_ratio\": {write_ratio:.2},\n  \"merge_interleaved_ratio\": {merge_interleaved_ratio:.2},\n  \"merge_disjoint_ratio\": {merge_disjoint_ratio:.2},\n  \"merge_splice_speedup\": {merge_splice_speedup:.2},\n  \"merge_pr5_shuffled_ratio\": {merge_pr5_shuffled_ratio:.2},\n  \"block_skip_rate_disjoint\": {skip_rate_disjoint:.3},\n  \"block_skip_rate_interleaved\": {skip_rate_interleaved:.3},\n  \"host_cpus\": {host_cpus}\n}}\n"
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

//! Tracing-overhead benchmark: the shuffle hot paths (arena spill,
//! streaming merge) with and without an attached [`Recorder`].
//!
//! The untraced runs hit the compiled-in hooks with no thread
//! attachment, so each hook is a thread-local read that misses; the
//! traced runs attach a recorder and additionally wrap every iteration
//! in a span. The observability budget is ≤3 % overhead traced and
//! ~0 untraced.
//!
//! Run with `cargo bench --bench bench_obs_overhead`. Set
//! `BENCH_OBS_JSON=<path>` to also write the measurements and overhead
//! percentages as JSON — `BENCH_obs.json` at the repo root is a
//! committed baseline from this machine.

use criterion::{black_box, Criterion, Throughput};
use scihadoop_compress::IdentityCodec;
use scihadoop_mapreduce::obs::{clock_name, host_cpus, LedgerRecord, Recorder};
use scihadoop_mapreduce::{
    span, Counter, Counters, DefaultKeySemantics, Framing, IFileWriter, JobConfig, JobResult,
    JobStats, KeySemantics, KvPair, MergeStream, Phase, RawSegment, SpillArena,
};
use std::sync::Arc;
use std::time::Instant;

/// Map-output-shaped records, as in bench_shuffle_hotpath.
fn grid_pairs(n: u32) -> Vec<KvPair> {
    (0..n)
        .flat_map(|x| (0..n).map(move |y| (x, y)))
        .map(|(x, y)| {
            let key: Vec<u8> = [x.to_be_bytes(), y.to_be_bytes()].concat();
            KvPair::new(key, (x ^ y).to_be_bytes().to_vec())
        })
        .collect()
}

/// One arena sort-and-spill pass over `pairs`.
fn spill_once(pairs: &[KvPair], codec: &Arc<dyn scihadoop_compress::Codec>) -> u64 {
    let ks = DefaultKeySemantics;
    let mut arena = SpillArena::new(1);
    for p in pairs {
        arena.append(0, &p.key, &p.value);
    }
    arena.sort_partition(0, &ks);
    let mut w = IFileWriter::new(Framing::IFile, codec.clone());
    for (k, v) in arena.pairs(0) {
        w.append(k, v);
    }
    w.close().raw_bytes
}

/// One streaming k-way merge + grouping pass over sealed segments.
fn merge_once(segments: &[Vec<u8>]) -> u64 {
    let ks = DefaultKeySemantics;
    let raws: Vec<RawSegment> = segments
        .iter()
        .map(|s| RawSegment::open(s, &IdentityCodec).unwrap())
        .collect();
    let mut stream = MergeStream::new(&raws, &ks).unwrap();
    let mut acc = 0u64;
    let mut group_key: Option<&[u8]> = None;
    let mut group_len = 0u64;
    while let Some((key, _value)) = stream.next().unwrap() {
        match group_key {
            Some(gk) if ks.group_eq(gk, key) => group_len += 1,
            _ => {
                acc += group_len;
                group_key = Some(key);
                group_len = 1;
            }
        }
    }
    acc + group_len
}

fn bench_spill(c: &mut Criterion) {
    let pairs = grid_pairs(100); // 10,000 records
    let codec: Arc<dyn scihadoop_compress::Codec> = Arc::new(IdentityCodec);

    let mut group = c.benchmark_group("obs_map_sort_spill");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(20);

    group.bench_function("untraced", |b| {
        b.iter(|| black_box(spill_once(&pairs, &codec)))
    });
    group.bench_function("traced", |b| {
        let recorder = Recorder::new();
        let _att = recorder.attach("bench-spill");
        b.iter(|| {
            let _span = span!(Phase::SortSpill, 0);
            black_box(spill_once(&pairs, &codec))
        })
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let ks = DefaultKeySemantics;
    let codec: Arc<dyn scihadoop_compress::Codec> = Arc::new(IdentityCodec);

    // 8 sorted runs of 2,500 records each, sealed as segments.
    let mut segments = Vec::new();
    let mut total = 0u64;
    for r in 0..8u32 {
        let mut run = grid_pairs(50);
        for (i, p) in run.iter_mut().enumerate() {
            p.key[0] = ((i as u32 * 7 + r) % 13) as u8;
        }
        run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        total += run.len() as u64;
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        for p in &run {
            w.append_pair(p);
        }
        segments.push(w.close().data);
    }

    let mut group = c.benchmark_group("obs_merge_reduce");
    group.throughput(Throughput::Elements(total));
    group.sample_size(20);

    group.bench_function("untraced", |b| b.iter(|| black_box(merge_once(&segments))));
    group.bench_function("traced", |b| {
        let recorder = Recorder::new();
        let _att = recorder.attach("bench-merge");
        b.iter(|| {
            let _span = span!(Phase::Merge, 0);
            black_box(merge_once(&segments))
        })
    });
    group.finish();
}

/// Tracing overhead in percent, measured by *interleaving* untraced and
/// traced batches and taking the median of per-round time ratios — slow
/// machine-load drift hits both sides of each round equally, so it
/// cancels, unlike comparing two sequential criterion runs. Both
/// closures receive the batch size and run the whole batch (the traced
/// one attaches its recorder once per batch, matching the engine, where
/// a worker attaches once per slot and then runs many tasks).
fn paired_overhead_percent(
    mut untraced_once: impl FnMut(),
    mut traced_batch: impl FnMut(usize),
    rounds: usize,
) -> f64 {
    // Warm up and size batches for ~10 ms per side per round.
    untraced_once();
    let t0 = Instant::now();
    untraced_once();
    let once = t0.elapsed().max(std::time::Duration::from_nanos(20));
    let batch = (10_000_000 / once.as_nanos().max(1)).clamp(1, 10_000) as usize;

    let mut time_untraced = || {
        let t0 = Instant::now();
        for _ in 0..batch {
            untraced_once();
        }
        t0.elapsed().as_nanos().max(1)
    };
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate the order within each round so first-runner effects
        // (allocator warmth, cache state) cancel across rounds too.
        let (u, t) = if round % 2 == 0 {
            let u = time_untraced();
            let t0 = Instant::now();
            traced_batch(batch);
            (u, t0.elapsed().as_nanos().max(1))
        } else {
            let t0 = Instant::now();
            traced_batch(batch);
            let t = t0.elapsed().as_nanos().max(1);
            (time_untraced(), t)
        };
        ratios.push(t as f64 / u as f64);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn main() {
    let mut criterion = Criterion::default();
    bench_spill(&mut criterion);
    bench_merge(&mut criterion);

    // Paired, interleaved overhead measurement (the headline numbers;
    // the criterion medians above are sequential and drift-prone).
    let codec: Arc<dyn scihadoop_compress::Codec> = Arc::new(IdentityCodec);
    let pairs = grid_pairs(100);
    let ks = DefaultKeySemantics;
    let mut segments = Vec::new();
    for r in 0..8u32 {
        let mut run = grid_pairs(50);
        for (i, p) in run.iter_mut().enumerate() {
            p.key[0] = ((i as u32 * 7 + r) % 13) as u8;
        }
        run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        for p in &run {
            w.append_pair(p);
        }
        segments.push(w.close().data);
    }

    let recorder = Recorder::new();
    let spill_overhead = paired_overhead_percent(
        || {
            black_box(spill_once(&pairs, &codec));
        },
        |batch| {
            let _att = recorder.attach("paired-spill");
            for task in 0..batch {
                let _span = span!(Phase::SortSpill, task);
                black_box(spill_once(&pairs, &codec));
            }
        },
        15,
    );
    let merge_overhead = paired_overhead_percent(
        || {
            black_box(merge_once(&segments));
        },
        |batch| {
            let _att = recorder.attach("paired-merge");
            for task in 0..batch {
                let _span = span!(Phase::Merge, task);
                black_box(merge_once(&segments));
            }
        },
        15,
    );
    // Ledger overhead: the same traced spill batch, but each batch also
    // builds and serializes one run-ledger record (the engine appends
    // one record per *job*, so per-batch is the realistic amortization).
    // Measured against the plain untraced task like the tracing numbers,
    // so the figure is "tracing + ledger" and gates against the same
    // ≤3 % observability budget.
    let trace = recorder.finish();
    let ledger_cfg = JobConfig::default();
    let ledger_result = JobResult {
        outputs: Vec::new(),
        counters: {
            let c = Counters::new();
            c.add(Counter::MapInputRecords, pairs.len() as u64);
            c.add(Counter::MapOutputBytes, 16 * pairs.len() as u64);
            c.snapshot()
        },
        stats: JobStats::from_counters(
            &{
                let c = Counters::new();
                c.add(Counter::MapOutputBytes, 16 * pairs.len() as u64);
                c.snapshot()
            },
            8,
            3,
            16 * pairs.len() as u64,
            1,
            1,
        ),
    };
    let ledger_overhead = paired_overhead_percent(
        || {
            black_box(spill_once(&pairs, &codec));
        },
        |batch| {
            let _att = recorder.attach("paired-ledger");
            for task in 0..batch {
                let _span = span!(Phase::SortSpill, task);
                black_box(spill_once(&pairs, &codec));
            }
            let record =
                LedgerRecord::from_run("bench_obs", &ledger_cfg, &ledger_result, Some(&trace));
            black_box(record.to_json_line().len());
        },
        15,
    );
    println!("\nmap-sort-spill tracing overhead: {spill_overhead:+.2}%");
    println!("merge-reduce tracing overhead:   {merge_overhead:+.2}%");
    println!("map-sort-spill tracing+ledger:   {ledger_overhead:+.2}%");

    if let Ok(path) = std::env::var("BENCH_OBS_JSON") {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in criterion.measurements.iter().enumerate() {
            let sep = if i + 1 < criterion.measurements.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.0}, \"records_per_s\": {:.0}}}{}\n",
                m.id,
                m.median_ns,
                m.per_second().unwrap_or(0.0),
                sep
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"map_sort_spill_overhead_percent\": {spill_overhead:.2},\n  \"merge_reduce_overhead_percent\": {merge_overhead:.2},\n  \"map_sort_spill_ledger_overhead_percent\": {ledger_overhead:.2},\n  \"host_cpus\": {},\n  \"clock_kind\": \"{}\"\n}}\n",
            host_cpus(),
            clock_name(),
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

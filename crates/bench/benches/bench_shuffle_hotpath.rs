//! Shuffle hot-path benchmark: the arena-backed spill and streaming
//! k-way merge against the materializing reference paths they replaced
//! (`SortBuffer` + owned-pair sorting; eager segment reads +
//! `merge_sorted_runs` + whole-run re-sort), plus the comparison-free
//! sort rows — the prefix radix spill sort (`arena_radix` vs the
//! comparator `arena` row) and the prefix-keyed loser-tree merge
//! (`streaming_loser_tree` vs the sift-down-heap `streaming` row).
//!
//! Run with `cargo bench --bench bench_shuffle_hotpath`. Set
//! `BENCH_SHUFFLE_JSON=<path>` to also write the measurements (and the
//! classic→arena speedups) as JSON — `BENCH_shuffle.json` at the repo
//! root is a committed baseline from this machine.

use criterion::{black_box, Criterion, Throughput};
use scihadoop_bench::DistJobSpec;
use scihadoop_compress::checksum::Crc32c;
use scihadoop_compress::IdentityCodec;
use scihadoop_mapreduce::dist::{
    run_distributed_with_threads, DistConfig, SegmentRepr, ShuffleStore, Transport, WireCodec,
};
use scihadoop_mapreduce::{
    for_each_group, merge_sorted_runs, Counter, DefaultKeySemantics, Framing, HeapMergeStream,
    IFileReader, IFileWriter, KeySemantics, KvPair, MergeStream, RawSegment, SortBuffer,
    SpillArena,
};
use std::sync::Arc;
use std::time::Instant;

/// Map-output-shaped records: 8-byte grid keys in row-major emission
/// order, 4-byte values. Row-major emission of big-endian `(x, y)` keys
/// is already bytewise-sorted — the best case for the engine's
/// presorted prefix scan and for std's run-detecting stable sort alike.
fn grid_pairs(n: u32) -> Vec<KvPair> {
    (0..n)
        .flat_map(|x| (0..n).map(move |y| (x, y)))
        .map(|(x, y)| {
            let key: Vec<u8> = [x.to_be_bytes(), y.to_be_bytes()].concat();
            KvPair::new(key, (x ^ y).to_be_bytes().to_vec())
        })
        .collect()
}

/// The same records in a deterministic full-cycle shuffle, so the sort
/// rows also measure genuinely unsorted emission (the worst case the
/// spill sort must handle). 7919 is prime and coprime with the 10,000
/// record count, so stepping by it visits every index exactly once.
fn shuffled(pairs: &[KvPair]) -> Vec<KvPair> {
    let n = pairs.len();
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    loop {
        out.push(pairs[i].clone());
        i = (i + 7919) % n;
        if i == 0 {
            break;
        }
    }
    out
}

/// The map side: stage emitted slices, sort, serialize one spill.
fn bench_map_sort_spill(c: &mut Criterion) {
    let pairs = grid_pairs(100); // 10,000 records
    let ks = DefaultKeySemantics;
    let codec: Arc<dyn scihadoop_compress::Codec> = Arc::new(IdentityCodec);

    let mut group = c.benchmark_group("map_sort_spill");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(20);

    // Reference: owned pairs into a SortBuffer, sort, write.
    group.bench_function("classic_sortbuffer", |b| {
        b.iter(|| {
            let mut buf = SortBuffer::new(usize::MAX >> 1);
            for p in &pairs {
                // The old emit path allocated an owned pair per record.
                buf.push(KvPair::new(p.key.clone(), p.value.clone()));
            }
            let run = buf.drain_sorted(&ks);
            let mut w = IFileWriter::new(Framing::IFile, codec.clone());
            for pair in &run {
                w.append_pair(pair);
            }
            black_box(w.close().raw_bytes)
        })
    });

    // Arena: bytes into one buffer, sort the index with the full
    // comparator (the pre-radix engine path, kept as a reference),
    // write borrowed slices.
    group.bench_function("arena", |b| {
        b.iter(|| {
            let mut arena = SpillArena::new(1);
            for p in &pairs {
                arena.append(0, &p.key, &p.value);
            }
            arena.sort_partition_by_compare(0, &ks);
            let mut w = IFileWriter::new(Framing::IFile, codec.clone());
            for (k, v) in arena.pairs(0) {
                w.append(k, v);
            }
            black_box(w.close().raw_bytes)
        })
    });

    // Arena + prefix radix sort: the engine's current spill sort — LSD
    // radix over (sort_prefix, index) pairs, comparator only on ties.
    // On this presorted emission the strictly-increasing-prefix scan
    // short-circuits the whole sort.
    group.bench_function("arena_radix", |b| {
        b.iter(|| {
            let mut arena = SpillArena::new(1);
            for p in &pairs {
                arena.append(0, &p.key, &p.value);
            }
            arena.sort_partition(0, &ks);
            let mut w = IFileWriter::new(Framing::IFile, codec.clone());
            for (k, v) in arena.pairs(0) {
                w.append(k, v);
            }
            black_box(w.close().raw_bytes)
        })
    });

    // The same pair of rows over shuffled emission, where the sort has
    // to do real work: comparator reference vs radix scatter passes.
    let pairs_shuffled = shuffled(&pairs);
    group.bench_function("arena_shuffled", |b| {
        b.iter(|| {
            let mut arena = SpillArena::new(1);
            for p in &pairs_shuffled {
                arena.append(0, &p.key, &p.value);
            }
            arena.sort_partition_by_compare(0, &ks);
            let mut w = IFileWriter::new(Framing::IFile, codec.clone());
            for (k, v) in arena.pairs(0) {
                w.append(k, v);
            }
            black_box(w.close().raw_bytes)
        })
    });
    group.bench_function("arena_radix_shuffled", |b| {
        b.iter(|| {
            let mut arena = SpillArena::new(1);
            for p in &pairs_shuffled {
                arena.append(0, &p.key, &p.value);
            }
            arena.sort_partition(0, &ks);
            let mut w = IFileWriter::new(Framing::IFile, codec.clone());
            for (k, v) in arena.pairs(0) {
                w.append(k, v);
            }
            black_box(w.close().raw_bytes)
        })
    });
    group.finish();
}

/// The reduce side: merge sorted segments, group, consume values.
fn bench_merge_reduce(c: &mut Criterion) -> f64 {
    let ks = DefaultKeySemantics;
    let codec: Arc<dyn scihadoop_compress::Codec> = Arc::new(IdentityCodec);

    // 8 sorted runs of 2,500 records each, sealed as segments — once
    // with the CRC-32C trailer (the engine's default) and once plain,
    // so the trailer-verification overhead on the merge path is its own
    // measurement. Budget: <= 6% of the loser-tree merge — the absolute
    // verification cost is unchanged from the <= 3% heap-merge era, but
    // the ~2x faster merge halved the denominator.
    let mut segments = Vec::new();
    let mut segments_plain = Vec::new();
    let mut total = 0u64;
    for r in 0..8u32 {
        let mut run = grid_pairs(50);
        for (i, p) in run.iter_mut().enumerate() {
            p.key[0] = ((i as u32 * 7 + r) % 13) as u8;
        }
        run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        total += run.len() as u64;
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        let mut wp = IFileWriter::without_trailer(Framing::IFile, codec.clone());
        for p in &run {
            w.append_pair(p);
            wp.append_pair(p);
        }
        segments.push(w.close().data);
        segments_plain.push(wp.close().data);
    }

    let mut group = c.benchmark_group("merge_reduce");
    group.throughput(Throughput::Elements(total));
    group.sample_size(20);

    // Reference: materialize every run, k-way merge into one Vec,
    // whole-run sort_split + re-sort, then group.
    group.bench_function("classic_materialize", |b| {
        let ks_arc: Arc<dyn KeySemantics> = Arc::new(DefaultKeySemantics);
        b.iter(|| {
            let runs: Vec<Vec<KvPair>> = segments
                .iter()
                .map(|s| IFileReader::open(s, &IdentityCodec).unwrap().into_records())
                .collect();
            let merged = merge_sorted_runs(runs, ks_arc.as_ref());
            let mut records = ks_arc.sort_split(merged);
            records.sort_by(|a, b| ks_arc.compare(&a.key, &b.key));
            let mut acc = 0u64;
            for_each_group(&records, ks_arc.as_ref(), |_, values| {
                acc += values.len() as u64;
            });
            black_box(acc)
        })
    });

    // Streaming: lazy cursors under the retained sift-down merge heap
    // (the pre-loser-tree engine path), grouping on borrowed slices as
    // records surface. Segments carry the CRC-32C trailer the engine
    // writes by default; `open` verifies it per segment.
    group.bench_function("streaming", |b| {
        b.iter(|| black_box(heap_merge_iter(&segments, &ks)))
    });

    // Streaming + loser tree: the engine's current merge — cached
    // sort-prefix matches, comparator only on prefix ties, one
    // leaf-to-root replay per record.
    group.bench_function("streaming_loser_tree", |b| {
        b.iter(|| black_box(streaming_merge_iter(&segments, &ks)))
    });
    group.finish();

    // Trailer-verification overhead (budget <= 6%): interleave trailed
    // and plain merges and take the median per-round ratio — machine
    // drift hits both sides of a round equally, unlike two sequential
    // criterion entries.
    let mut ratios = Vec::new();
    for round in 0..40 {
        let (first, second) = if round % 2 == 0 {
            (&segments, &segments_plain)
        } else {
            (&segments_plain, &segments)
        };
        let t0 = Instant::now();
        black_box(streaming_merge_iter(first, &ks));
        let a = t0.elapsed().as_nanos().max(1);
        let t0 = Instant::now();
        black_box(streaming_merge_iter(second, &ks));
        let b = t0.elapsed().as_nanos().max(1);
        let (trailed, plain) = if round % 2 == 0 { (a, b) } else { (b, a) };
        ratios.push(trailed as f64 / plain as f64);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

/// The coordinator's segment-serving path against the shuffle store:
/// an all-resident store vs one forced to spill every segment (budget
/// 0), both drained in canonical order through the same 64 KiB chunk
/// loop the wire path uses — spilled chunks `pread` into the chunk
/// buffer and re-verify the spill-time CRC, exactly as `serve_reduce`
/// does. Those two rows are the raw serving throughputs; the returned
/// overhead figure (budget <= 10%) is measured *end to end* instead:
/// full thread-mode distributed jobs over real sockets at budget 0 vs
/// unbounded, because in a real job the spill read is one slice of
/// serving (sockets, credits, reduce compute) rather than the whole of
/// it, and the wall-clock cost of spilling is what a user pays.
///
/// The second returned figure is the wire-compression overhead (budget
/// <= 5%): the same end-to-end paired-median protocol with
/// `--wire-codec lz` vs `identity` at an unbounded budget, so the
/// figure isolates the compress-on-publish + decompress-at-fetch cost
/// against the socket bytes it removes.
fn bench_shuffle_serve(c: &mut Criterion) -> (f64, f64) {
    const MAPS: usize = 16;
    const SEG_LEN: usize = 96 << 10;
    let segments: Vec<Vec<u8>> = (0..MAPS)
        .map(|m| {
            (0..SEG_LEN)
                .map(|i| (i as u64).wrapping_mul(m as u64 + 0x9e37) as u8)
                .collect()
        })
        .collect();
    let publish = |store: &ShuffleStore| {
        for (m, seg) in segments.iter().enumerate() {
            store.publish(m, vec![(0, seg.clone())]).unwrap();
        }
    };
    let mem_store = ShuffleStore::new(1, MAPS, usize::MAX);
    let spill_store = ShuffleStore::new(1, MAPS, 0);
    publish(&mem_store);
    publish(&spill_store);
    assert_eq!(spill_store.spilled_bytes(), (MAPS * SEG_LEN) as u64);

    let serve = |store: &ShuffleStore| -> u64 {
        let _fetch = store.fetch_guard(0);
        let mut chunk = vec![0u8; 64 << 10];
        let mut acc = 0u64;
        for m in 0..MAPS {
            let handle = store.segment_when_ready(0, m).unwrap().unwrap();
            match &handle.repr {
                SegmentRepr::Mem(data) => {
                    for piece in data.chunks(chunk.len()) {
                        acc = acc.wrapping_add(piece.iter().map(|&b| b as u64).sum::<u64>());
                    }
                }
                SegmentRepr::Spilled(h) => {
                    let mut crc = Crc32c::new();
                    let mut off = 0;
                    while off < h.len() {
                        let end = (off + chunk.len()).min(h.len());
                        let buf = &mut chunk[..end - off];
                        h.read_range(off, buf).unwrap();
                        crc.update(buf);
                        acc = acc.wrapping_add(buf.iter().map(|&b| b as u64).sum::<u64>());
                        off = end;
                    }
                    assert_eq!(crc.finish(), h.crc(), "spill CRC must verify");
                }
            }
        }
        acc
    };

    let mut group = c.benchmark_group("shuffle_serve");
    group.throughput(Throughput::Bytes((MAPS * SEG_LEN) as u64));
    group.sample_size(20);
    group.bench_function("mem", |b| b.iter(|| black_box(serve(&mem_store))));
    group.bench_function("spill", |b| b.iter(|| black_box(serve(&spill_store))));
    group.finish();

    // Paired-median end-to-end overhead: one full thread-mode
    // distributed run per side per round, interleaved so machine drift
    // hits both sides of each round equally. The job is sized so one
    // run's wall is large against scheduler jitter — at small record
    // counts the per-round ratio spread swamps single-digit overhead
    // budgets and the median itself becomes noisy.
    let spec = DistJobSpec {
        records: 20_000,
        ..DistJobSpec::default()
    };
    let config = spec.build_config().expect("spec builds");
    let splits = spec.make_splits();
    let run = |budget: usize, codec: WireCodec| {
        let dist_cfg = DistConfig::default()
            .with_workers(2)
            .with_transport(Transport::Tcp)
            .with_shuffle_mem_bytes(Some(budget))
            .with_wire_codec(codec);
        let t0 = Instant::now();
        let result = run_distributed_with_threads(
            &config,
            &dist_cfg,
            splits.clone(),
            Arc::new(DistJobSpec::mapper()),
            Arc::new(DistJobSpec::reducer()),
        )
        .expect("thread-mode dist run");
        (t0.elapsed().as_nanos().max(1), result)
    };
    // Warm both paths (page cache, allocator, listener setup) and pin
    // the invariants the ratio depends on: budget 0 spills every byte,
    // unbounded spills none, outputs agree.
    let (_, spilled_run) = run(0, WireCodec::Identity);
    let (_, resident_run) = run(usize::MAX, WireCodec::Identity);
    assert_eq!(spilled_run.outputs, resident_run.outputs);
    assert!(spilled_run.counters.get(Counter::ShuffleSpilledBytes) > 0);
    assert_eq!(resident_run.counters.get(Counter::ShuffleSpilledBytes), 0);

    let mut ratios = Vec::new();
    for round in 0..15 {
        let (first, second) = if round % 2 == 0 {
            (0, usize::MAX)
        } else {
            (usize::MAX, 0)
        };
        let (a, _) = run(first, WireCodec::Identity);
        let (b, _) = run(second, WireCodec::Identity);
        let (spilled, resident) = if round % 2 == 0 { (a, b) } else { (b, a) };
        ratios.push(spilled as f64 / resident as f64);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let spill_overhead = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    // Wire compression: identical outputs, bytes actually saved on the
    // socket, and an end-to-end wall cost small enough to always leave
    // compression on for capable workers.
    let (_, lz_run) = run(usize::MAX, WireCodec::Lz);
    assert_eq!(lz_run.outputs, resident_run.outputs);
    assert!(lz_run.counters.get(Counter::ShuffleWireBytesSaved) > 0);

    let mut wire_ratios = Vec::new();
    for round in 0..15 {
        let (first, second) = if round % 2 == 0 {
            (WireCodec::Lz, WireCodec::Identity)
        } else {
            (WireCodec::Identity, WireCodec::Lz)
        };
        let (a, _) = run(usize::MAX, first);
        let (b, _) = run(usize::MAX, second);
        let (lz, identity) = if round % 2 == 0 { (a, b) } else { (b, a) };
        wire_ratios.push(lz as f64 / identity as f64);
    }
    wire_ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let wire_overhead = (wire_ratios[wire_ratios.len() / 2] - 1.0) * 100.0;
    (spill_overhead, wire_overhead)
}

/// One loser-tree streaming merge+group pass over sealed segments.
fn streaming_merge_iter(segments: &[Vec<u8>], ks: &DefaultKeySemantics) -> u64 {
    let raws: Vec<RawSegment> = segments
        .iter()
        .map(|s| RawSegment::open(s, &IdentityCodec).unwrap())
        .collect();
    let mut stream = MergeStream::new(&raws, ks).unwrap();
    let mut acc = 0u64;
    let mut group_key: Option<&[u8]> = None;
    let mut group_len = 0u64;
    while let Some((key, _value)) = stream.next().unwrap() {
        match group_key {
            Some(gk) if ks.group_eq(gk, key) => group_len += 1,
            _ => {
                acc += group_len;
                group_key = Some(key);
                group_len = 1;
            }
        }
    }
    acc + group_len
}

/// Same pass through the retained sift-down-heap merge.
fn heap_merge_iter(segments: &[Vec<u8>], ks: &DefaultKeySemantics) -> u64 {
    let raws: Vec<RawSegment> = segments
        .iter()
        .map(|s| RawSegment::open(s, &IdentityCodec).unwrap())
        .collect();
    let mut stream = HeapMergeStream::new(&raws, ks).unwrap();
    let mut acc = 0u64;
    let mut group_key: Option<&[u8]> = None;
    let mut group_len = 0u64;
    while let Some((key, _value)) = stream.next().unwrap() {
        match group_key {
            Some(gk) if ks.group_eq(gk, key) => group_len += 1,
            _ => {
                acc += group_len;
                group_key = Some(key);
                group_len = 1;
            }
        }
    }
    acc + group_len
}

fn main() {
    let mut criterion = Criterion::default();
    bench_map_sort_spill(&mut criterion);
    let crc_overhead = bench_merge_reduce(&mut criterion);
    let (spill_overhead, wire_lz_overhead) = bench_shuffle_serve(&mut criterion);

    // Speedups + optional JSON baseline.
    let rate = |id: &str| {
        criterion
            .measurements
            .iter()
            .find(|m| m.id.ends_with(id))
            .and_then(|m| m.per_second())
            .unwrap_or(0.0)
    };
    let spill_speedup = rate("map_sort_spill/arena") / rate("classic_sortbuffer");
    let merge_speedup = rate("merge_reduce/streaming") / rate("classic_materialize");
    let radix_speedup = rate("map_sort_spill/arena_radix") / rate("map_sort_spill/arena");
    let radix_speedup_shuffled =
        rate("map_sort_spill/arena_radix_shuffled") / rate("map_sort_spill/arena_shuffled");
    let loser_tree_speedup =
        rate("merge_reduce/streaming_loser_tree") / rate("merge_reduce/streaming");
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("\nmap-sort-spill speedup (arena vs classic):   {spill_speedup:.2}x");
    println!("merge-reduce speedup (streaming vs classic): {merge_speedup:.2}x");
    println!("radix spill sort speedup (presorted emission): {radix_speedup:.2}x");
    println!("radix spill sort speedup (shuffled emission):  {radix_speedup_shuffled:.2}x");
    println!("loser-tree merge speedup (vs sift-down heap merge):  {loser_tree_speedup:.2}x");
    println!("CRC-32C trailer overhead on streaming merge: {crc_overhead:+.2}% (budget <= 6%)");
    println!("shuffle spill serving overhead (vs resident): {spill_overhead:+.2}% (budget <= 10%)");
    println!(
        "wire lz compression overhead (vs identity):   {wire_lz_overhead:+.2}% (budget <= 5%)"
    );

    if let Ok(path) = std::env::var("BENCH_SHUFFLE_JSON") {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in criterion.measurements.iter().enumerate() {
            let sep = if i + 1 < criterion.measurements.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.0}, \"records_per_s\": {:.0}}}{}\n",
                m.id,
                m.median_ns,
                m.per_second().unwrap_or(0.0),
                sep
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"map_sort_spill_speedup\": {spill_speedup:.2},\n  \"merge_reduce_speedup\": {merge_speedup:.2},\n  \"radix_sort_speedup\": {radix_speedup:.2},\n  \"radix_sort_speedup_shuffled\": {radix_speedup_shuffled:.2},\n  \"loser_tree_speedup\": {loser_tree_speedup:.2},\n  \"crc_trailer_overhead_pct\": {crc_overhead:.2},\n  \"shuffle_spill_overhead_pct\": {spill_overhead:.2},\n  \"wire_lz_overhead_pct\": {wire_lz_overhead:.2},\n  \"host_cpus\": {host_cpus}\n}}\n"
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

//! Fig. 8: per-cell cost of simple-key materialization vs the aggregation
//! library.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_compress::IdentityCodec;
use scihadoop_core::aggregate::Aggregator;
use scihadoop_mapreduce::{Framing, IFileWriter};
use scihadoop_sfc::ZOrderCurve;
use std::sync::Arc;

fn bench_fig8(c: &mut Criterion) {
    let n = 32u32;
    let var = workloads::int_cube(n, 13);
    let cells: Vec<_> = var.bounds().cells().collect();
    let mut group = c.benchmark_group("fig8_aggregation");
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.sample_size(10);

    group.bench_function("simple_keys", |b| {
        b.iter(|| {
            let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
            let mut vbytes = Vec::with_capacity(4);
            for cell in &cells {
                let key: Vec<u8> = cell
                    .components()
                    .iter()
                    .flat_map(|c| c.to_be_bytes())
                    .collect();
                vbytes.clear();
                var.get(cell).unwrap().write_be(&mut vbytes);
                w.append(&key, &vbytes);
            }
            w.close().raw_bytes
        })
    });

    let bits = (32 - n.leading_zeros()).max(1);
    group.bench_function("aggregated", |b| {
        b.iter(|| {
            let mut agg = Aggregator::new(ZOrderCurve::with_bits(3, bits), usize::MAX >> 1);
            let mut vbytes = Vec::with_capacity(4);
            for cell in &cells {
                vbytes.clear();
                var.get(cell).unwrap().write_be(&mut vbytes);
                agg.push(cell, &vbytes).unwrap();
            }
            let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
            for rec in agg.flush() {
                w.append(&rec.key.to_bytes(), &rec.values);
            }
            w.close().raw_bytes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

//! §I intro numbers: cost of materializing per-cell keys under both key
//! layouts (the 26- vs 33-byte records).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_compress::IdentityCodec;
use scihadoop_mapreduce::{Framing, IFileWriter};
use scihadoop_queries::KeyLayout;
use std::sync::Arc;

fn bench_intro(c: &mut Criterion) {
    let n = 40u32;
    let var = workloads::windspeed_cube(n, 7);
    let cells: Vec<_> = var.bounds().cells().collect();
    let mut group = c.benchmark_group("intro_overhead");
    group.throughput(Throughput::Elements(cells.len() as u64));
    for (label, layout) in [
        ("indexed", KeyLayout::Indexed { index: 0, ndims: 3 }),
        (
            "named_windspeed1",
            KeyLayout::Named {
                name: "windspeed1".into(),
                ndims: 3,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &layout, |b, layout| {
            b.iter(|| {
                let mut w = IFileWriter::new(Framing::SequenceFile, Arc::new(IdentityCodec));
                let mut vbytes = Vec::with_capacity(4);
                for cell in &cells {
                    vbytes.clear();
                    var.get(cell).unwrap().write_be(&mut vbytes);
                    w.append(&layout.encode(cell), &vbytes);
                }
                w.close().raw_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intro);
criterion_main!(benches);

//! §III-E / §IV-D end-to-end: the sliding-median job under all three
//! pipeline configurations (in-process; the cost model scales these to
//! cluster size in the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_compress::DeflateCodec;
use scihadoop_core::transform::TransformCodec;
use scihadoop_mapreduce::{Framing, JobConfig};
use scihadoop_queries::median::{SlidingMedian, SlidingMedianVariant};
use scihadoop_queries::KeyLayout;
use std::sync::Arc;

fn bench_cluster(c: &mut Criterion) {
    let n = 48u32;
    let var = workloads::int_square(n, 21);
    let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
    let base = JobConfig::default()
        .with_reducers(5)
        .with_slots(10, 5)
        .with_framing(Framing::SequenceFile);

    let mut group = c.benchmark_group("cluster_sliding_median");
    group.throughput(Throughput::Elements((n as u64) * (n as u64)));
    group.sample_size(10);
    type VariantMaker = Box<dyn Fn() -> SlidingMedianVariant>;
    let variants: Vec<(&str, VariantMaker)> = vec![
        ("baseline", Box::new(|| SlidingMedianVariant::Plain)),
        (
            "transform_deflate",
            Box::new(|| {
                SlidingMedianVariant::PlainWithCodec(Arc::new(TransformCodec::with_defaults(
                    Arc::new(DeflateCodec::new()),
                )))
            }),
        ),
        (
            "aggregated",
            Box::new(|| SlidingMedianVariant::Aggregated {
                buffer_bytes: 64 << 20,
            }),
        ),
    ];
    for (name, make) in &variants {
        group.bench_with_input(BenchmarkId::from_parameter(*name), make, |b, make| {
            b.iter(|| {
                let mut q = SlidingMedian::new(layout.clone(), make());
                q.num_splits = 8;
                q.base_config = base.clone();
                q.run(&var).unwrap().medians.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);

//! Fig. 3: compression method throughput on the grid-walk key stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_compress::{BzipCodec, Codec, DeflateCodec};
use scihadoop_core::transform::{TransformCodec, TransformConfig};
use std::sync::Arc;

fn bench_fig3(c: &mut Criterion) {
    let stream = workloads::grid_key_stream(32); // 393 kB
    let methods: Vec<(&str, Arc<dyn Codec>)> = vec![
        ("deflate", Arc::new(DeflateCodec::new())),
        (
            "transform+deflate",
            Arc::new(TransformCodec::new(
                TransformConfig::adaptive(100),
                Arc::new(DeflateCodec::new()),
            )),
        ),
        ("bzip", Arc::new(BzipCodec::with_level(1))),
        (
            "transform+bzip",
            Arc::new(TransformCodec::new(
                TransformConfig::adaptive(100),
                Arc::new(BzipCodec::with_level(1)),
            )),
        ),
    ];

    let mut group = c.benchmark_group("fig3_compress");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(10);
    for (name, codec) in &methods {
        group.bench_with_input(BenchmarkId::from_parameter(name), codec, |b, codec| {
            b.iter(|| codec.compress(&stream).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_decompress");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(10);
    for (name, codec) in &methods {
        let z = codec.compress(&stream);
        group.bench_with_input(BenchmarkId::from_parameter(name), &z, |b, z| {
            b.iter(|| codec.decompress(z).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

//! Engine micro-benchmarks: the per-record pipeline stages whose cost the
//! cluster model charges (spill sort/serialize, merge, combiner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_compress::IdentityCodec;
use scihadoop_mapreduce::{
    Counter, Emit, FnMapper, FnReducer, Framing, IFileReader, IFileWriter, InputSplit, Job,
    JobConfig, KvPair,
};
use std::sync::Arc;

fn grid_pairs(n: u32) -> Vec<KvPair> {
    (0..n)
        .flat_map(|x| (0..n).map(move |y| (x, y)))
        .map(|(x, y)| {
            let key: Vec<u8> = [x.to_be_bytes(), y.to_be_bytes()].concat();
            KvPair::new(key, 7u32.to_be_bytes().to_vec())
        })
        .collect()
}

fn bench_ifile(c: &mut Criterion) {
    let pairs = grid_pairs(100); // 10,000 records
    let mut group = c.benchmark_group("ifile");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for framing in [Framing::SequenceFile, Framing::IFile] {
        group.bench_with_input(
            BenchmarkId::new("write", format!("{framing:?}")),
            &framing,
            |b, &framing| {
                b.iter(|| {
                    let mut w = IFileWriter::new(framing, Arc::new(IdentityCodec));
                    for p in &pairs {
                        w.append_pair(p);
                    }
                    w.close().raw_bytes
                })
            },
        );
    }
    let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
    for p in &pairs {
        w.append_pair(p);
    }
    let seg = w.close();
    group.bench_function("read", |b| {
        b.iter(|| {
            IFileReader::open(&seg.data, &IdentityCodec)
                .unwrap()
                .into_records()
                .len()
        })
    });
    group.finish();
}

fn bench_job(c: &mut Criterion) {
    let pairs = grid_pairs(64); // 4096 records
    let splits: Vec<InputSplit> = pairs
        .chunks(512)
        .map(|c| InputSplit::new(c.to_vec()))
        .collect();
    let mut group = c.benchmark_group("engine_job");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(20);
    for (name, combiner) in [("no_combiner", false), ("with_combiner", true)] {
        let splits = splits.clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
                    // Fan out 2x to give the sorter work.
                    out.emit(k, v);
                    out.emit(k, v);
                }));
                let reducer = Arc::new(FnReducer(
                    |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
                        out.emit(k, &(values.len() as u32).to_be_bytes());
                    },
                ));
                let mut config = JobConfig::default().with_reducers(4).with_slots(4, 2);
                if combiner {
                    config = config.with_combiner(Arc::new(FnReducer(
                        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
                            out.emit(k, values[0]);
                        },
                    )));
                }
                let result = Job::new(config)
                    .run(splits.clone(), mapper, reducer)
                    .unwrap();
                result.counters.get(Counter::ReduceInputGroups)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ifile, bench_job);
criterion_main!(benches);

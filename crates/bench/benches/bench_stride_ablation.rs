//! §III-A: fixed vs adaptive vs brute-force stride detection cost (the
//! paper's 4×/17× slowdown comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_core::transform::{StridePredictor, TransformConfig};

fn bench_strides(c: &mut Criterion) {
    let stream = workloads::grid_key_stream(20); // 96 kB
    let mut group = c.benchmark_group("stride_ablation");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.sample_size(10);
    for (name, config) in [
        ("fixed_12", TransformConfig::fixed(vec![12])),
        ("adaptive_100", TransformConfig::adaptive(100)),
        ("brute_100", TransformConfig::brute_force(100)),
        ("adaptive_1000", TransformConfig::adaptive(1000)),
        ("brute_1000", TransformConfig::brute_force(1000)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| StridePredictor::new(config.clone()).forward(&stream).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strides);
criterion_main!(benches);

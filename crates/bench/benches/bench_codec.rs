//! Codec-kernel benchmark: the PR-4 performance claims, measured.
//!
//! Three questions, one committed baseline (`BENCH_codec.json`):
//!
//! 1. **Parallel block pipeline** — `block-transform+deflate` with a
//!    4-worker [`CodecPool`] vs the whole-buffer `transform+deflate`
//!    compress path on the Fig. 3 grid-key stream. On a k-core host the
//!    target is ≥3× with 4 workers; on a single-core host (CI
//!    containers) the pool degenerates to the calling thread and the
//!    measured ratio reports the frame's bookkeeping overhead instead,
//!    so the JSON records `host_cpus` next to the ratio.
//! 2. **Single-threaded kernels** — the batch-loop [`StridePredictor`]
//!    vs the original per-byte rescanning [`ReferencePredictor`]
//!    (forward and inverse), plus deflate over raw and transformed
//!    streams. Target: ≥1.5× end-to-end single-threaded compress.
//! 3. **Ratio cost** — compressed size of the block frame vs the
//!    whole-buffer stream (must stay within 5%), plus a 64 KiB–1 MiB
//!    block-size sweep backing the 256 KiB default.
//!
//! Run with `cargo bench --bench bench_codec`. Set
//! `BENCH_CODEC_JSON=<path>` to write the JSON report;
//! `BENCH_CODEC_FAST=1` shrinks the stream and sample counts (CI smoke).

use criterion::{black_box, Criterion, Throughput};
use scihadoop_bench::workloads;
use scihadoop_compress::{BlockCodec, Codec, CodecPool, DeflateCodec, IdentityCodec, LzCodec};
use scihadoop_core::transform::{
    ReferencePredictor, StridePredictor, TransformCodec, TransformConfig,
};
use std::sync::Arc;

fn fast_mode() -> bool {
    std::env::var("BENCH_CODEC_FAST").is_ok_and(|v| v != "0")
}

fn median_of(c: &Criterion, id: &str) -> f64 {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("measurement {id} missing"))
        .median_ns
}

fn main() {
    let mut criterion = Criterion::default();
    let samples = if fast_mode() { 1 } else { 5 };
    let n = if fast_mode() { 32 } else { 100 };
    // The Fig. 3 workload: serialized keys of an n³ grid walk.
    let stream = workloads::grid_key_stream(n);
    let config = TransformConfig::default();

    // 1. Predictor kernels: batch loop vs per-byte rescan reference.
    {
        let mut g = criterion.benchmark_group("codec_predictor");
        g.throughput(Throughput::Bytes(stream.len() as u64))
            .sample_size(samples);
        g.bench_function("reference/forward", |b| {
            b.iter(|| black_box(ReferencePredictor::new(config.clone()).forward(&stream)))
        });
        g.bench_function("fast/forward", |b| {
            b.iter(|| black_box(StridePredictor::new(config.clone()).forward(&stream)))
        });
        let transformed = StridePredictor::new(config.clone()).forward(&stream);
        g.bench_function("reference/inverse", |b| {
            b.iter(|| black_box(ReferencePredictor::new(config.clone()).inverse(&transformed)))
        });
        g.bench_function("fast/inverse", |b| {
            b.iter(|| black_box(StridePredictor::new(config.clone()).inverse(&transformed)))
        });
        g.finish();
    }

    // 2. Deflate over the raw and the transformed stream (the two
    //    shapes the match finder sees in the shuffle).
    {
        let transformed = StridePredictor::new(config.clone()).forward(&stream);
        let deflate = DeflateCodec::new();
        let mut g = criterion.benchmark_group("codec_deflate");
        g.throughput(Throughput::Bytes(stream.len() as u64))
            .sample_size(samples);
        g.bench_function("compress/raw", |b| {
            b.iter(|| black_box(deflate.compress(&stream)))
        });
        g.bench_function("compress/transformed", |b| {
            b.iter(|| black_box(deflate.compress(&transformed)))
        });
        g.finish();
    }

    // 2b. The LZ-class fast codec against deflate and identity on the
    //     same stream — the wire-compression trade the shuffle makes.
    //     The claim gated by BENCH_codec.json: lz compresses the grid
    //     keys at >= 3x deflate's throughput (it skips the entropy
    //     stage entirely; matches + literal runs only).
    let (lz_size, deflate_size) = {
        let lz = LzCodec;
        let deflate = DeflateCodec::new();
        let identity = IdentityCodec;
        let z_lz = lz.compress(&stream);
        let z_deflate = deflate.compress(&stream);
        let mut g = criterion.benchmark_group("codec_lz");
        g.throughput(Throughput::Bytes(stream.len() as u64))
            .sample_size(samples);
        g.bench_function("identity/compress", |b| {
            b.iter(|| black_box(identity.compress(&stream)))
        });
        g.bench_function("lz/compress", |b| {
            b.iter(|| black_box(lz.compress(&stream)))
        });
        g.bench_function("deflate/compress", |b| {
            b.iter(|| black_box(deflate.compress(&stream)))
        });
        g.bench_function("lz/decompress", |b| {
            b.iter(|| black_box(lz.decompress(&z_lz).unwrap()))
        });
        g.bench_function("deflate/decompress", |b| {
            b.iter(|| black_box(deflate.decompress(&z_deflate).unwrap()))
        });
        g.finish();
        (z_lz.len(), z_deflate.len())
    };

    // 3. Whole-buffer vs parallel block pipeline, compress + decompress.
    let whole: Arc<dyn Codec> = Arc::new(TransformCodec::new(
        config.clone(),
        Arc::new(DeflateCodec::new()),
    ));
    let block_of = |pool_workers: usize| -> Arc<dyn Codec> {
        Arc::new(BlockCodec::with_pool(
            Arc::new(TransformCodec::new(
                config.clone(),
                Arc::new(DeflateCodec::new()),
            )),
            scihadoop_compress::DEFAULT_BLOCK_SIZE,
            CodecPool::new(pool_workers),
        ))
    };
    let block_serial = block_of(0);
    let block_pool4 = block_of(4);
    {
        let mut g = criterion.benchmark_group("codec_block_pipeline");
        g.throughput(Throughput::Bytes(stream.len() as u64))
            .sample_size(samples);
        g.bench_function("whole/compress", |b| {
            b.iter(|| black_box(whole.compress(&stream)))
        });
        g.bench_function("block-serial/compress", |b| {
            b.iter(|| black_box(block_serial.compress(&stream)))
        });
        g.bench_function("block-pool4/compress", |b| {
            b.iter(|| black_box(block_pool4.compress(&stream)))
        });
        let z_whole = whole.compress(&stream);
        let z_block = block_pool4.compress(&stream);
        g.bench_function("whole/decompress", |b| {
            b.iter(|| black_box(whole.decompress(&z_whole).unwrap()))
        });
        g.bench_function("block-pool4/decompress", |b| {
            b.iter(|| black_box(block_pool4.decompress(&z_block).unwrap()))
        });
        g.finish();
    }
    let whole_size = whole.compress(&stream).len();
    let block_default_size = block_serial.compress(&stream).len();

    // Size cost of the frame alone (no transform): blocked deflate
    // restarts its window + Huffman tables per block, nothing else.
    let deflate_whole = DeflateCodec::new();
    let deflate_block = BlockCodec::with_pool(
        Arc::new(DeflateCodec::new()),
        scihadoop_compress::DEFAULT_BLOCK_SIZE,
        CodecPool::new(0),
    );
    let deflate_whole_size = deflate_whole.compress(&stream).len();
    let deflate_block_size = deflate_block.compress(&stream).len();

    // 4. Block-size sweep (serial pool so only the framing varies).
    let sweep_kib: &[usize] = if fast_mode() {
        &[64, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let mut sweep = Vec::new();
    {
        let mut g = criterion.benchmark_group("codec_block_sweep");
        g.throughput(Throughput::Bytes(stream.len() as u64))
            .sample_size(samples);
        for &kib in sweep_kib {
            let codec = BlockCodec::with_pool(
                Arc::new(TransformCodec::new(
                    config.clone(),
                    Arc::new(DeflateCodec::new()),
                )),
                kib * 1024,
                CodecPool::new(0),
            );
            let size = codec.compress(&stream).len();
            g.bench_function(format!("{kib}KiB/compress"), |b| {
                b.iter(|| black_box(codec.compress(&stream)))
            });
            sweep.push((kib, size));
        }
        g.finish();
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let predictor_forward_speedup = median_of(&criterion, "codec_predictor/reference/forward")
        / median_of(&criterion, "codec_predictor/fast/forward");
    let predictor_inverse_speedup = median_of(&criterion, "codec_predictor/reference/inverse")
        / median_of(&criterion, "codec_predictor/fast/inverse");
    let parallel_speedup = median_of(&criterion, "codec_block_pipeline/whole/compress")
        / median_of(&criterion, "codec_block_pipeline/block-pool4/compress");
    let lz_vs_deflate_compress_speedup = median_of(&criterion, "codec_lz/deflate/compress")
        / median_of(&criterion, "codec_lz/lz/compress");
    let lz_ratio = lz_size as f64 / stream.len() as f64;
    let deflate_ratio = deflate_size as f64 / stream.len() as f64;
    let size_regression_percent =
        (deflate_block_size as f64 - deflate_whole_size as f64) * 100.0 / deflate_whole_size as f64;
    let transform_restart_cost_percent =
        (block_default_size as f64 - whole_size as f64) * 100.0 / whole_size as f64;

    println!("\nhost cpus:                      {host_cpus}");
    println!("predictor forward speedup:      {predictor_forward_speedup:.2}x");
    println!("predictor inverse speedup:      {predictor_inverse_speedup:.2}x");
    println!("block(pool4) compress speedup:  {parallel_speedup:.2}x vs whole-buffer");
    println!(
        "lz vs deflate compress speedup: {lz_vs_deflate_compress_speedup:.2}x (budget >= 3x; \
         ratio {lz_ratio:.3} vs {deflate_ratio:.3})"
    );
    println!(
        "block frame size cost (deflate): {deflate_whole_size} -> {deflate_block_size} B ({size_regression_percent:+.2}%)"
    );
    println!(
        "predictor-restart cost (t+d):    {whole_size} -> {block_default_size} B ({transform_restart_cost_percent:+.2}%)"
    );
    for (kib, size) in &sweep {
        println!("  sweep {kib:>5} KiB blocks -> {size} B");
    }

    if let Ok(path) = std::env::var("BENCH_CODEC_JSON") {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in criterion.measurements.iter().enumerate() {
            let sep = if i + 1 < criterion.measurements.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.0}, \"bytes_per_s\": {:.0}}}{}\n",
                m.id,
                m.median_ns,
                m.per_second().unwrap_or(0.0),
                sep
            ));
        }
        json.push_str("  ],\n  \"block_size_sweep\": [\n");
        for (i, (kib, size)) in sweep.iter().enumerate() {
            let sep = if i + 1 < sweep.len() { "," } else { "" };
            let ns = median_of(&criterion, &format!("codec_block_sweep/{kib}KiB/compress"));
            json.push_str(&format!(
                "    {{\"block_kib\": {kib}, \"compressed_bytes\": {size}, \"median_ns\": {ns:.0}}}{sep}\n"
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"host_cpus\": {host_cpus},\n  \
             \"stream_bytes\": {},\n  \
             \"deflate_whole_bytes\": {deflate_whole_size},\n  \
             \"deflate_block_bytes\": {deflate_block_size},\n  \
             \"size_regression_percent\": {size_regression_percent:.2},\n  \
             \"transform_deflate_whole_bytes\": {whole_size},\n  \
             \"transform_deflate_block_bytes\": {block_default_size},\n  \
             \"transform_restart_cost_percent\": {transform_restart_cost_percent:.2},\n  \
             \"predictor_forward_speedup\": {predictor_forward_speedup:.2},\n  \
             \"predictor_inverse_speedup\": {predictor_inverse_speedup:.2},\n  \
             \"parallel_compress_speedup_pool4\": {parallel_speedup:.2},\n  \
             \"lz_bytes\": {lz_size},\n  \
             \"lz_ratio\": {lz_ratio:.4},\n  \
             \"deflate_ratio\": {deflate_ratio:.4},\n  \
             \"lz_vs_deflate_compress_speedup\": {lz_vs_deflate_compress_speedup:.2}\n}}\n",
            stream.len()
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

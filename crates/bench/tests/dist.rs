//! Process-mode integration tests for the distributed runtime: real
//! worker *processes* (spawned by re-executing this test binary with a
//! libtest filter, rusty-fork style) over real sockets, pinned
//! byte-identical to the single-process engine — clean and under a
//! fault storm with wire corruption. Also the two-process
//! `LedgerSink::append` interleave test: concurrent writers to one
//! JSON-lines file must never tear a line.

use scihadoop_bench::{dist_equivalence, DistJobSpec};
use scihadoop_mapreduce::dist::worker_env;
use scihadoop_mapreduce::obs::{LedgerRecord, LedgerSink};
use scihadoop_mapreduce::{Job, Transport, WireCodec};
use std::sync::Arc;

/// Arguments that route a re-execution of this test binary straight
/// into [`dist_worker_entry`] below.
const WORKER_ARGS: &[&str] = &["dist_worker_entry", "--exact", "--nocapture"];

/// Not a test of anything by itself: the worker-process entry point.
/// When the coordinator re-executes this binary with the
/// `SCIHADOOP_DIST_*` environment set and a libtest filter naming this
/// function, it becomes the worker's `main`. Without the environment
/// (i.e. under a normal `cargo test`) it is a no-op pass.
#[test]
fn dist_worker_entry() {
    match worker_env().expect("worker environment parses") {
        None => {}
        Some(env) => std::process::exit(scihadoop_bench::dist_worker(&env)),
    }
}

fn clean_spec() -> DistJobSpec {
    DistJobSpec {
        records: 2_000,
        ..DistJobSpec::default()
    }
}

fn storm_spec() -> DistJobSpec {
    DistJobSpec {
        records: 2_000,
        retries: 4,
        faults: Some("seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2".into()),
        ..DistJobSpec::default()
    }
}

// dist_equivalence asserts outputs and semantic counters are identical
// between the local engine and the worker processes; these tests only
// have to drive it under each transport/fault combination.

#[test]
fn three_tcp_worker_processes_match_the_local_engine() {
    dist_equivalence(
        &clean_spec(),
        3,
        Transport::Tcp,
        None,
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
}

#[cfg(unix)]
#[test]
fn three_uds_worker_processes_match_the_local_engine() {
    dist_equivalence(
        &clean_spec(),
        3,
        Transport::Uds,
        None,
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
}

#[test]
fn fault_storm_with_wire_corruption_is_byte_identical_over_tcp() {
    dist_equivalence(
        &storm_spec(),
        3,
        Transport::Tcp,
        None,
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
}

#[cfg(unix)]
#[test]
fn fault_storm_with_wire_corruption_is_byte_identical_over_uds() {
    let table = dist_equivalence(
        &storm_spec(),
        3,
        Transport::Uds,
        None,
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
    // The storm actually stormed: the fault note reports non-zero
    // injections (tallies themselves are asserted inside).
    assert!(
        table.render().contains("injected"),
        "fault note missing:\n{}",
        table.render()
    );
}

// A 64 KiB budget against a multi-megabyte shuffle forces nearly every
// segment through the spill file; the storm's worker kills then force
// re-fetches of already-spilled segments. Byte-identity is asserted
// inside dist_equivalence either way.

#[test]
fn tiny_shuffle_budget_storm_is_byte_identical_over_tcp() {
    let table = dist_equivalence(
        &storm_spec(),
        3,
        Transport::Tcp,
        Some(64 << 10),
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
    assert!(
        table.render().contains("spilled"),
        "spill note missing:\n{}",
        table.render()
    );
}

#[cfg(unix)]
#[test]
fn tiny_shuffle_budget_storm_is_byte_identical_over_uds() {
    dist_equivalence(
        &storm_spec(),
        3,
        Transport::Uds,
        Some(64 << 10),
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
}

// Transparent wire compression: real worker processes advertise CAP_LZ
// in their Hello, the coordinator ships lz frames, workers inflate
// before the segment CRC check. dist_equivalence asserts outputs and
// semantic counters match the local engine and that wire bytes were
// actually saved.

#[test]
fn wire_lz_clean_run_is_byte_identical_over_tcp() {
    let table = dist_equivalence(
        &clean_spec(),
        3,
        Transport::Tcp,
        None,
        WireCodec::Lz,
        WORKER_ARGS,
        None,
    );
    assert!(
        table.render().contains("wire codec lz"),
        "wire-codec note missing:\n{}",
        table.render()
    );
}

#[cfg(unix)]
#[test]
fn wire_lz_clean_run_is_byte_identical_over_uds() {
    dist_equivalence(
        &clean_spec(),
        3,
        Transport::Uds,
        None,
        WireCodec::Lz,
        WORKER_ARGS,
        None,
    );
}

#[test]
fn wire_lz_fault_storm_is_byte_identical_over_tcp() {
    dist_equivalence(
        &storm_spec(),
        3,
        Transport::Tcp,
        None,
        WireCodec::Lz,
        WORKER_ARGS,
        None,
    );
}

#[cfg(unix)]
#[test]
fn wire_lz_tiny_budget_storm_is_byte_identical_over_uds() {
    dist_equivalence(
        &storm_spec(),
        3,
        Transport::Uds,
        Some(64 << 10),
        WireCodec::Lz,
        WORKER_ARGS,
        None,
    );
}

#[test]
fn a_compressed_codec_survives_the_wire_byte_identically() {
    let spec = DistJobSpec {
        codec: "block-transform+deflate".into(),
        block_kib: 16,
        ..clean_spec()
    };
    dist_equivalence(
        &spec,
        2,
        Transport::Tcp,
        None,
        WireCodec::Identity,
        WORKER_ARGS,
        None,
    );
}

/// Environment variable carrying the interleave test's shared ledger
/// path into [`ledger_writer_entry`] child processes.
const ENV_LEDGER_PATH: &str = "SCIHADOOP_TEST_LEDGER_PATH";
/// Records each writer process appends.
const LEDGER_RECORDS_PER_WRITER: usize = 40;

/// Second re-exec entry point: append many records to the shared ledger
/// file as fast as possible, labelled by pid. No-op pass under a normal
/// `cargo test`.
#[test]
fn ledger_writer_entry() {
    let Ok(path) = std::env::var(ENV_LEDGER_PATH) else {
        return;
    };
    let spec = DistJobSpec {
        records: 128,
        ..DistJobSpec::default()
    };
    let config = spec.build_config().expect("spec builds");
    let result = Job::new(config.clone())
        .run(
            spec.make_splits(),
            Arc::new(DistJobSpec::mapper()),
            Arc::new(DistJobSpec::reducer()),
        )
        .expect("job runs");
    let sink = LedgerSink::with_path(&path);
    let label = format!("writer-{}", std::process::id());
    for _ in 0..LEDGER_RECORDS_PER_WRITER {
        sink.append(LedgerRecord::from_run(&label, &config, &result, None))
            .expect("append");
    }
    std::process::exit(0);
}

/// Two writer *processes* appending concurrently to one ledger file:
/// every line must still parse (append is a single `write_all` of a
/// whole line against an `O_APPEND` handle, so lines interleave but
/// never tear), and both writers' record counts must survive intact.
#[test]
fn two_processes_interleave_ledger_appends_without_tearing() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "scihadoop-ledger-interleave-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let exe = std::env::current_exe().expect("current exe");
    let spawn = || {
        std::process::Command::new(&exe)
            .args(["ledger_writer_entry", "--exact", "--nocapture"])
            .env(ENV_LEDGER_PATH, &path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .expect("spawn ledger writer")
    };
    let mut a = spawn();
    let mut b = spawn();
    assert!(a.wait().expect("wait a").success(), "writer a failed");
    assert!(b.wait().expect("wait b").success(), "writer b failed");

    let text = std::fs::read_to_string(&path).expect("read shared ledger");
    let records = scihadoop_bench::ledger::parse_ledger(&text)
        .expect("every interleaved line parses as a full record");
    assert_eq!(records.len(), 2 * LEDGER_RECORDS_PER_WRITER);
    let mut labels: Vec<&str> = records.iter().map(|r| r.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), 2, "two distinct writer pids: {labels:?}");
    for label in labels {
        let n = records.iter().filter(|r| r.label == label).count();
        assert_eq!(n, LEDGER_RECORDS_PER_WRITER, "no records lost for {label}");
    }
    let _ = std::fs::remove_file(&path);
}

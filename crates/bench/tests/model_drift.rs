//! Pinned acceptance bounds for the `model_drift` experiment: the
//! paper's Table I/II-style breakdown recast as predicted-vs-measured.
//!
//! Byte rows must be *exact* (the cost model's byte accounting and the
//! measured counters come from the same streaming identities), and
//! every time row must carry a live prediction whose signed error stays
//! inside a generous envelope. The model charges only counter-derived
//! CPU against a `local_host` spec with effectively unbounded
//! bandwidth, so predictions land at or below the measured walls: the
//! observed drift is roughly −25 % to −92 % in release, and slower
//! (debug, loaded-CI) walls only push the error further negative —
//! never past −100 %, because predictions are strictly positive.

use scihadoop_bench::model_drift;
use scihadoop_mapreduce::IFileVersion;

#[test]
fn model_drift_pins_byte_identities_and_time_error_bounds() {
    let (table, reports) = model_drift(24, 400, IFileVersion::V3);
    let rendered = table.render();
    assert_eq!(reports.len(), 3, "one drift report per traced job");

    for (record, report) in &reports {
        for name in ["shuffle_bytes", "raw_bytes", "materialized_bytes"] {
            let row = report
                .row(name)
                .unwrap_or_else(|| panic!("{}: missing byte row {name}\n{rendered}", record.label));
            assert_eq!(
                row.predicted, row.measured,
                "{}: byte row {name} must be an exact identity\n{rendered}",
                record.label
            );
            assert_eq!(row.error_pct(), 0.0);
        }
        for name in ["map_makespan", "reduce_makespan", "total", "pipeline_cpu"] {
            let row = report
                .row(name)
                .unwrap_or_else(|| panic!("{}: missing time row {name}\n{rendered}", record.label));
            assert!(
                row.predicted > 0.0 && row.measured > 0.0,
                "{}: time row {name} must have live prediction and measurement\n{rendered}",
                record.label
            );
            let err = row.error_pct();
            assert!(
                err > -100.0 && err < 25.0,
                "{}: time row {name} error {err:+.1}% outside pinned bounds (-100, 25)\n{rendered}",
                record.label
            );
        }
    }
}

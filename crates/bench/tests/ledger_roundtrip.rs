//! Roundtrip property for the run ledger: any record the obs layer can
//! emit must survive `to_json_line` → the hand-rolled `json.rs` parser →
//! `to_json_line` **byte-identically**. Labels and codec/framing names
//! run through the string escaper (quotes, backslashes, control chars,
//! multibyte); numeric fields cover the full `u64` range (values above
//! 2^53 clamp once at first encode and then stay fixed).

use proptest::prelude::*;
use scihadoop_bench::ledger::parse_line;
use scihadoop_mapreduce::obs::{
    Histogram, LedgerConfig, LedgerHist, LedgerJob, LedgerRecord, PhaseRollup, ALL_METRICS,
    NUM_PHASES,
};
use scihadoop_mapreduce::{Counters, ALL_COUNTERS};

/// Characters that stress the JSON escaper: quoting, escaping, control
/// characters, and multibyte UTF-8.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', '→', '/',
];

fn palette_string(indexes: &[usize]) -> String {
    indexes
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_record_roundtrips_byte_identically(
        // label, codec, framing, clock as palette indexes.
        strings in proptest::collection::vec(
            proptest::collection::vec(0usize..14, 0..24),
            4..5,
        ),
        // host_cpus, block_kib, num_reducers, map_slots, reduce_slots,
        // spill_buffer_bytes, ifile_version, fault-seed value.
        config_nums in any::<[u64; 8]>(),
        // (combiner, fault_seed present)
        flags in (any::<bool>(), any::<bool>()),
        job_nums in any::<[u64; 5]>(),
        // 39 counter values followed by 9 × (count, wall, cpu) rollups.
        counter_and_phase in any::<[u64; 66]>(),
        hist_picks in proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u64>(), 1..16)),
            0..4,
        ),
    ) {
        prop_assert_eq!(ALL_COUNTERS.len(), 39);
        let counters = Counters::new();
        for (c, v) in ALL_COUNTERS.iter().zip(counter_and_phase.iter()) {
            counters.add(*c, *v);
        }
        let mut phases = [PhaseRollup::default(); NUM_PHASES];
        for (i, slot) in phases.iter_mut().enumerate() {
            *slot = PhaseRollup {
                count: counter_and_phase[39 + 3 * i],
                wall_ns: counter_and_phase[39 + 3 * i + 1],
                cpu_ns: counter_and_phase[39 + 3 * i + 2],
            };
        }
        // Histograms are built by actually recording samples, so bucket
        // encodings are exactly what the obs layer produces; dedupe by
        // metric (the JSON object keys on metric name).
        let mut hists: Vec<LedgerHist> = Vec::new();
        for (pick, samples) in &hist_picks {
            let metric = ALL_METRICS[*pick as usize % ALL_METRICS.len()];
            if hists.iter().any(|h| h.metric == metric) {
                continue;
            }
            let mut h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            hists.push(LedgerHist::from_histogram(metric, &h).expect("non-empty"));
        }
        let record = LedgerRecord {
            label: palette_string(&strings[0]),
            clock: palette_string(&strings[3]),
            host_cpus: config_nums[0],
            config: LedgerConfig {
                codec: palette_string(&strings[1]),
                block_kib: config_nums[1],
                num_reducers: config_nums[2],
                map_slots: config_nums[3],
                reduce_slots: config_nums[4],
                spill_buffer_bytes: config_nums[5],
                framing: palette_string(&strings[2]),
                ifile_version: config_nums[6],
                combiner: flags.0,
                task_retries: config_nums[0].rotate_left(7),
                fault_seed: flags.1.then_some(config_nums[7]),
            },
            job: LedgerJob {
                num_maps: job_nums[0],
                num_reducers: job_nums[1],
                input_bytes: job_nums[2],
                map_wall_nanos: job_nums[3],
                reduce_wall_nanos: job_nums[4],
            },
            counters: counters.snapshot(),
            phases,
            hists,
        };

        let line = record.to_json_line();
        let parsed = parse_line(&line).expect("every emitted record must parse");
        prop_assert_eq!(parsed.to_json_line(), line);
    }
}

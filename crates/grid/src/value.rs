//! Typed grid cell values.
//!
//! The paper's overhead numbers depend on the value payload size (4-byte
//! floats/ints in the evaluation; Fig. 8's "depending on data types"
//! caveat). We model the small set of types NetCDF-style scientific data
//! actually uses.

use crate::error::GridError;

/// Element type of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 16-bit signed integer (the "other data types" of Fig. 8).
    I16,
    /// Single byte.
    U8,
}

impl DataType {
    /// Serialized size of one value, in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::U8 => 1,
            DataType::I16 => 2,
            DataType::I32 | DataType::F32 => 4,
            DataType::I64 | DataType::F64 => 8,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::U8 => "u8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }
}

/// A single dynamically-typed cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    U8(u8),
    I16(i16),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Value {
    /// The value's type tag.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::U8(_) => DataType::U8,
            Value::I16(_) => DataType::I16,
            Value::I32(_) => DataType::I32,
            Value::I64(_) => DataType::I64,
            Value::F32(_) => DataType::F32,
            Value::F64(_) => DataType::F64,
        }
    }

    /// Serialize in big-endian (Hadoop Writable convention).
    pub fn write_be(&self, out: &mut Vec<u8>) {
        match self {
            Value::U8(v) => out.push(*v),
            Value::I16(v) => out.extend_from_slice(&v.to_be_bytes()),
            Value::I32(v) => out.extend_from_slice(&v.to_be_bytes()),
            Value::I64(v) => out.extend_from_slice(&v.to_be_bytes()),
            Value::F32(v) => out.extend_from_slice(&v.to_be_bytes()),
            Value::F64(v) => out.extend_from_slice(&v.to_be_bytes()),
        }
    }

    /// Deserialize a value of type `dt` from the front of `buf`, returning
    /// the value and the number of bytes consumed.
    pub fn read_be(dt: DataType, buf: &[u8]) -> Result<(Value, usize), GridError> {
        let n = dt.size_bytes();
        if buf.len() < n {
            return Err(GridError::Deserialize(format!(
                "need {n} bytes for {}, have {}",
                dt.name(),
                buf.len()
            )));
        }
        let v = match dt {
            DataType::U8 => Value::U8(buf[0]),
            DataType::I16 => Value::I16(i16::from_be_bytes([buf[0], buf[1]])),
            DataType::I32 => Value::I32(i32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]])),
            DataType::F32 => Value::F32(f32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]])),
            DataType::I64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[..8]);
                Value::I64(i64::from_be_bytes(b))
            }
            DataType::F64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[..8]);
                Value::F64(f64::from_be_bytes(b))
            }
        };
        Ok((v, n))
    }

    /// Lossy conversion to f64 for numeric queries.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::U8(v) => *v as f64,
            Value::I16(v) => *v as f64,
            Value::I32(v) => *v as f64,
            Value::I64(v) => *v as f64,
            Value::F32(v) => *v as f64,
            Value::F64(v) => *v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_serialized_length() {
        for (v, n) in [
            (Value::U8(7), 1),
            (Value::I16(-2), 2),
            (Value::I32(123), 4),
            (Value::F32(1.5), 4),
            (Value::I64(-9), 8),
            (Value::F64(2.5), 8),
        ] {
            let mut buf = Vec::new();
            v.write_be(&mut buf);
            assert_eq!(buf.len(), n);
            assert_eq!(v.data_type().size_bytes(), n);
        }
    }

    #[test]
    fn roundtrip_all_types() {
        for v in [
            Value::U8(255),
            Value::I16(-32768),
            Value::I32(i32::MIN),
            Value::F32(-0.125),
            Value::I64(i64::MAX),
            Value::F64(std::f64::consts::PI),
        ] {
            let mut buf = Vec::new();
            v.write_be(&mut buf);
            let (back, used) = Value::read_be(v.data_type(), &buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn read_rejects_short_buffers() {
        assert!(Value::read_be(DataType::I32, &[1, 2, 3]).is_err());
        assert!(Value::read_be(DataType::F64, &[0; 7]).is_err());
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::I32(42).as_f64(), 42.0);
        assert_eq!(Value::F32(1.5).as_f64(), 1.5);
        assert_eq!(Value::U8(9).as_f64(), 9.0);
    }
}

//! Grid coordinates.
//!
//! A [`Coord`] is a point in an n-dimensional integer grid. The paper's
//! intermediate keys are exactly these coordinates (plus a variable
//! identifier), which is why they dominate intermediate-data volume.

use crate::error::GridError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Sub};

/// A point in an n-dimensional integer grid.
///
/// Coordinates are signed because windowed queries (e.g. the paper's
/// sliding 3×3 median, §IV-C) legitimately produce out-of-range keys such
/// as `(-1, -1)` at grid edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord(pub Vec<i32>);

impl Coord {
    /// Create a coordinate from its components.
    pub fn new(components: Vec<i32>) -> Self {
        Coord(components)
    }

    /// The origin (all zeros) in `ndims` dimensions.
    pub fn origin(ndims: usize) -> Self {
        Coord(vec![0; ndims])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Component slice.
    pub fn components(&self) -> &[i32] {
        &self.0
    }

    /// Checked element-wise addition; errors on dimension mismatch.
    pub fn checked_add(&self, other: &Coord) -> Result<Coord, GridError> {
        if self.ndims() != other.ndims() {
            return Err(GridError::DimensionMismatch {
                expected: self.ndims(),
                actual: other.ndims(),
            });
        }
        Ok(Coord(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.wrapping_add(*b))
                .collect(),
        ))
    }

    /// Offset by a delta applied to every component.
    pub fn offset_all(&self, delta: i32) -> Coord {
        Coord(self.0.iter().map(|c| c.wrapping_add(delta)).collect())
    }

    /// Element-wise minimum of two coordinates.
    pub fn elementwise_min(&self, other: &Coord) -> Coord {
        debug_assert_eq!(self.ndims(), other.ndims());
        Coord(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| (*a).min(*b))
                .collect(),
        )
    }

    /// Element-wise maximum of two coordinates.
    pub fn elementwise_max(&self, other: &Coord) -> Coord {
        debug_assert_eq!(self.ndims(), other.ndims());
        Coord(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| (*a).max(*b))
                .collect(),
        )
    }

    /// True if every component is non-negative (i.e. the coordinate can be
    /// cast to unsigned curve space without bias).
    pub fn is_non_negative(&self) -> bool {
        self.0.iter().all(|&c| c >= 0)
    }

    /// Convert to unsigned components, failing if any is negative.
    pub fn to_unsigned(&self) -> Result<Vec<u32>, GridError> {
        self.0
            .iter()
            .map(|&c| {
                u32::try_from(c).map_err(|_| GridError::OutOfBounds {
                    coord: self.0.clone(),
                    context: "to_unsigned".into(),
                })
            })
            .collect()
    }
}

impl Index<usize> for Coord {
    type Output = i32;
    fn index(&self, i: usize) -> &i32 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Coord {
    fn index_mut(&mut self, i: usize) -> &mut i32 {
        &mut self.0[i]
    }
}

impl Add for &Coord {
    type Output = Coord;
    fn add(self, other: &Coord) -> Coord {
        self.checked_add(other).expect("dimension mismatch in +")
    }
}

impl Sub for &Coord {
    type Output = Coord;
    fn sub(self, other: &Coord) -> Coord {
        assert_eq!(self.ndims(), other.ndims(), "dimension mismatch in -");
        Coord(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.wrapping_sub(*b))
                .collect(),
        )
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<i32>> for Coord {
    fn from(v: Vec<i32>) -> Self {
        Coord(v)
    }
}

impl From<&[i32]> for Coord {
    fn from(v: &[i32]) -> Self {
        Coord(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_elementwise() {
        let a = Coord::new(vec![1, 2, 3]);
        let b = Coord::new(vec![10, 20, 30]);
        assert_eq!((&a + &b).components(), &[11, 22, 33]);
        assert_eq!((&b - &a).components(), &[9, 18, 27]);
    }

    #[test]
    fn checked_add_rejects_dimension_mismatch() {
        let a = Coord::new(vec![1, 2]);
        let b = Coord::new(vec![1, 2, 3]);
        assert!(matches!(
            a.checked_add(&b),
            Err(GridError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn min_max_are_elementwise() {
        let a = Coord::new(vec![1, 20, 3]);
        let b = Coord::new(vec![10, 2, 30]);
        assert_eq!(a.elementwise_min(&b).components(), &[1, 2, 3]);
        assert_eq!(a.elementwise_max(&b).components(), &[10, 20, 30]);
    }

    #[test]
    fn to_unsigned_rejects_negative_components() {
        assert!(Coord::new(vec![0, 5]).to_unsigned().is_ok());
        assert!(Coord::new(vec![-1, 5]).to_unsigned().is_err());
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(Coord::new(vec![3, -1, 2]).to_string(), "(3, -1, 2)");
    }

    #[test]
    fn offset_all_shifts_every_component() {
        assert_eq!(Coord::new(vec![0, 9]).offset_all(-1).components(), &[-1, 8]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Sorting coordinates lexicographically is exactly the row-major
        // key order Hadoop's default comparator produces for packed keys.
        let mut v = vec![
            Coord::new(vec![1, 0]),
            Coord::new(vec![0, 9]),
            Coord::new(vec![0, 1]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Coord::new(vec![0, 1]),
                Coord::new(vec![0, 9]),
                Coord::new(vec![1, 0]),
            ]
        );
    }
}

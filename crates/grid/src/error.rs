//! Error type shared across the grid crate.

use std::fmt;

/// Errors produced while manipulating grids or (de)serializing keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// Two objects that must share dimensionality do not.
    DimensionMismatch { expected: usize, actual: usize },
    /// A coordinate lies outside the bounding box or shape it was used with.
    OutOfBounds { coord: Vec<i32>, context: String },
    /// A serialized byte stream ended prematurely or contained bad data.
    Deserialize(String),
    /// A variable name was not found in a dataset.
    UnknownVariable(String),
    /// A shape with zero extent in some dimension where that is not allowed.
    EmptyShape,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GridError::OutOfBounds { coord, context } => {
                write!(f, "coordinate {coord:?} out of bounds in {context}")
            }
            GridError::Deserialize(msg) => write!(f, "deserialization error: {msg}"),
            GridError::UnknownVariable(name) => write!(f, "unknown variable: {name}"),
            GridError::EmptyShape => write!(f, "shape has zero extent"),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = GridError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 2");
        let e = GridError::UnknownVariable("windspeed1".into());
        assert!(e.to_string().contains("windspeed1"));
        let e = GridError::OutOfBounds {
            coord: vec![1, 2],
            context: "test".into(),
        };
        assert!(e.to_string().contains("[1, 2]"));
        assert!(GridError::EmptyShape.to_string().contains("zero extent"));
        assert!(GridError::Deserialize("short read".into())
            .to_string()
            .contains("short read"));
    }
}

//! Grid shapes (extents) and row-major linearization.

use crate::coord::Coord;
use crate::error::GridError;

/// The extent of an n-dimensional grid: the number of cells along each
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<u32>);

impl Shape {
    /// Create a shape from per-dimension extents.
    pub fn new(extents: Vec<u32>) -> Self {
        Shape(extents)
    }

    /// A cube: `n` cells along each of `ndims` dimensions.
    pub fn cube(n: u32, ndims: usize) -> Self {
        Shape(vec![n; ndims])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[u32] {
        &self.0
    }

    /// Total number of cells (product of extents).
    pub fn num_cells(&self) -> u64 {
        self.0.iter().map(|&e| e as u64).product()
    }

    /// True if any dimension has zero extent.
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Row-major strides: the linear-index step of +1 along each dimension.
    /// The last dimension varies fastest, matching C array layout and the
    /// order NetCDF (and the paper's grid walks) store data in.
    pub fn strides(&self) -> Vec<u64> {
        let mut strides = vec![1u64; self.ndims()];
        for d in (0..self.ndims().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.0[d + 1] as u64;
        }
        strides
    }

    /// Row-major linear index of a coordinate within this shape.
    pub fn linearize(&self, coord: &Coord) -> Result<u64, GridError> {
        if coord.ndims() != self.ndims() {
            return Err(GridError::DimensionMismatch {
                expected: self.ndims(),
                actual: coord.ndims(),
            });
        }
        let strides = self.strides();
        let mut idx = 0u64;
        for d in 0..self.ndims() {
            let c = coord[d];
            if c < 0 || c as u32 >= self.0[d] {
                return Err(GridError::OutOfBounds {
                    coord: coord.components().to_vec(),
                    context: format!("shape {:?}", self.0),
                });
            }
            idx += c as u64 * strides[d];
        }
        Ok(idx)
    }

    /// Inverse of [`Shape::linearize`].
    pub fn delinearize(&self, mut idx: u64) -> Result<Coord, GridError> {
        if idx >= self.num_cells() {
            return Err(GridError::OutOfBounds {
                coord: vec![],
                context: format!("linear index {idx} in shape {:?}", self.0),
            });
        }
        let strides = self.strides();
        let mut comps = vec![0i32; self.ndims()];
        for d in 0..self.ndims() {
            comps[d] = (idx / strides[d]) as i32;
            idx %= strides[d];
        }
        Ok(Coord::new(comps))
    }
}

impl From<Vec<u32>> for Shape {
    fn from(v: Vec<u32>) -> Self {
        Shape(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_shape_has_expected_cells() {
        let s = Shape::cube(100, 3);
        assert_eq!(s.num_cells(), 1_000_000);
        assert_eq!(s.ndims(), 3);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn linearize_roundtrips_with_delinearize() {
        let s = Shape::new(vec![3, 4, 5]);
        for i in 0..s.num_cells() {
            let c = s.delinearize(i).unwrap();
            assert_eq!(s.linearize(&c).unwrap(), i);
        }
    }

    #[test]
    fn linearize_rejects_out_of_bounds() {
        let s = Shape::new(vec![3, 3]);
        assert!(s.linearize(&Coord::new(vec![3, 0])).is_err());
        assert!(s.linearize(&Coord::new(vec![-1, 0])).is_err());
        assert!(s.linearize(&Coord::new(vec![0, 0, 0])).is_err());
        assert!(s.delinearize(9).is_err());
    }

    #[test]
    fn empty_shape_detection() {
        assert!(Shape::new(vec![3, 0]).is_empty());
        assert!(!Shape::new(vec![3, 1]).is_empty());
        assert_eq!(Shape::new(vec![3, 0]).num_cells(), 0);
    }

    #[test]
    fn last_dimension_varies_fastest() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.delinearize(0).unwrap().components(), &[0, 0]);
        assert_eq!(s.delinearize(1).unwrap().components(), &[0, 1]);
        assert_eq!(s.delinearize(3).unwrap().components(), &[1, 0]);
    }
}

//! Grid walkers: deterministic traversals that generate key streams.
//!
//! The paper's byte-level experiments (Figs. 2–4) operate on "a raw stream
//! of triples of 32-bit integers, taken by walking a grid". A walker
//! produces exactly that: a sequence of coordinates in a fixed traversal
//! order, which the caller serializes into the byte stream handed to the
//! transform.

use crate::bbox::BoundingBox;
use crate::coord::Coord;
use crate::shape::Shape;

/// A deterministic traversal of the cells of a box.
pub trait GridWalker {
    /// The box being walked.
    fn bounds(&self) -> &BoundingBox;

    /// The coordinates, in traversal order.
    fn walk(&self) -> Box<dyn Iterator<Item = Coord> + '_>;

    /// Serialize the walk as big-endian 32-bit integers — the raw key
    /// stream of the paper's Fig. 3 ("triples of 32-bit integers").
    fn key_stream_be(&self) -> Vec<u8> {
        let ndims = self.bounds().ndims();
        let mut out = Vec::with_capacity(self.bounds().num_cells() as usize * 4 * ndims);
        for c in self.walk() {
            for &x in c.components() {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        out
    }

    /// Serialize the walk as little-endian 32-bit integers. The stride
    /// detector is byte-order agnostic; having both lets tests prove it.
    fn key_stream_le(&self) -> Vec<u8> {
        let ndims = self.bounds().ndims();
        let mut out = Vec::with_capacity(self.bounds().num_cells() as usize * 4 * ndims);
        for c in self.walk() {
            for &x in c.components() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }
}

/// Row-major traversal (last dimension fastest) — Hadoop's natural order
/// when mappers scan NetCDF arrays.
#[derive(Debug, Clone)]
pub struct RowMajorWalker {
    bounds: BoundingBox,
}

impl RowMajorWalker {
    /// Walk the given box.
    pub fn new(bounds: BoundingBox) -> Self {
        RowMajorWalker { bounds }
    }

    /// Walk an `n`×…×`n` cube at the origin.
    pub fn cube(n: u32, ndims: usize) -> Self {
        RowMajorWalker {
            bounds: BoundingBox::at_origin(Shape::cube(n, ndims)),
        }
    }
}

impl GridWalker for RowMajorWalker {
    fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    fn walk(&self) -> Box<dyn Iterator<Item = Coord> + '_> {
        Box::new(self.bounds.cells())
    }
}

/// Block-wise traversal: the box is carved into `block` sized tiles and
/// each tile is walked row-major before moving on. Models the key order
/// produced by mappers that each own a tile (and defeats single-stride
/// prediction at tile edges, which is exactly the hard case §III-A
/// discusses).
#[derive(Debug, Clone)]
pub struct BlockWalker {
    bounds: BoundingBox,
    block: Shape,
}

impl BlockWalker {
    /// Walk `bounds` in tiles of shape `block`.
    pub fn new(bounds: BoundingBox, block: Shape) -> Self {
        assert_eq!(bounds.ndims(), block.ndims(), "block dims must match");
        assert!(!block.is_empty(), "block must be non-empty");
        BlockWalker { bounds, block }
    }
}

impl GridWalker for BlockWalker {
    fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    fn walk(&self) -> Box<dyn Iterator<Item = Coord> + '_> {
        let ndims = self.bounds.ndims();
        // Number of tiles along each dimension (ceil division).
        let tiles = Shape::new(
            (0..ndims)
                .map(|d| {
                    let e = self.bounds.shape().extents()[d];
                    let b = self.block.extents()[d];
                    e.div_ceil(b)
                })
                .collect(),
        );
        let bounds = self.bounds.clone();
        let block = self.block.clone();
        let iter = (0..tiles.num_cells()).flat_map(move |t| {
            let tile = tiles.delinearize(t).expect("in range");
            let corner = Coord::new(
                (0..ndims)
                    .map(|d| bounds.corner()[d] + tile[d] * block.extents()[d] as i32)
                    .collect(),
            );
            let shape = Shape::new(
                (0..ndims)
                    .map(|d| {
                        let remaining =
                            bounds.shape().extents()[d] as i32 - (corner[d] - bounds.corner()[d]);
                        (block.extents()[d] as i32).min(remaining) as u32
                    })
                    .collect(),
            );
            let tile_box = BoundingBox::new(corner, shape).expect("dims match");
            tile_box.cells().collect::<Vec<_>>()
        });
        Box::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn row_major_walk_is_complete_and_ordered() {
        let w = RowMajorWalker::cube(3, 2);
        let cells: Vec<_> = w.walk().collect();
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0].components(), &[0, 0]);
        assert_eq!(cells[1].components(), &[0, 1]);
        assert_eq!(cells[8].components(), &[2, 2]);
    }

    #[test]
    fn key_stream_length_matches_fig3_arithmetic() {
        // 100^3 grid walked as triples of 32-bit ints = 12,000,000 bytes.
        // Use 20^3 here to keep the test fast: 8000 * 12 = 96,000.
        let w = RowMajorWalker::cube(20, 3);
        assert_eq!(w.key_stream_be().len(), 96_000);
        assert_eq!(w.key_stream_le().len(), 96_000);
    }

    #[test]
    fn key_stream_be_bytes_are_big_endian() {
        let w = RowMajorWalker::cube(2, 1);
        // Coordinates 0 then 1.
        assert_eq!(w.key_stream_be(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(w.key_stream_le(), vec![0, 0, 0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn block_walker_covers_every_cell_exactly_once() {
        let bounds = BoundingBox::at_origin(Shape::new(vec![5, 7]));
        let w = BlockWalker::new(bounds.clone(), Shape::new(vec![2, 3]));
        let cells: Vec<_> = w.walk().collect();
        assert_eq!(cells.len() as u64, bounds.num_cells());
        let set: HashSet<_> = cells.iter().cloned().collect();
        assert_eq!(set.len() as u64, bounds.num_cells());
    }

    #[test]
    fn block_walker_visits_tiles_contiguously() {
        let bounds = BoundingBox::at_origin(Shape::new(vec![4, 4]));
        let w = BlockWalker::new(bounds, Shape::new(vec![2, 2]));
        let cells: Vec<_> = w.walk().collect();
        // First four cells are the (0,0) tile.
        let first_tile: HashSet<_> = cells[..4].iter().cloned().collect();
        let expected: HashSet<_> = [
            Coord::new(vec![0, 0]),
            Coord::new(vec![0, 1]),
            Coord::new(vec![1, 0]),
            Coord::new(vec![1, 1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(first_tile, expected);
    }
}

//! Binary dataset serialization — the persistent stand-in for the
//! paper's NetCDF inputs.
//!
//! Format (`SGD1`, all integers big-endian like the Writable layer):
//!
//! ```text
//! magic "SGD1" | u16 variable count
//! per variable:
//!   vint name length | name UTF-8 | u8 dtype tag | u8 ndims
//!   u32 extent per dimension | raw row-major cell bytes
//! trailer: u32 CRC-32 of everything before it
//! ```

use crate::dataset::{Dataset, Variable};
use crate::error::GridError;
use crate::shape::Shape;
use crate::value::DataType;
use crate::writable::{read_vint, write_vint};

const MAGIC: &[u8; 4] = b"SGD1";

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::U8 => 0,
        DataType::I16 => 1,
        DataType::I32 => 2,
        DataType::I64 => 3,
        DataType::F32 => 4,
        DataType::F64 => 5,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType, GridError> {
    Ok(match tag {
        0 => DataType::U8,
        1 => DataType::I16,
        2 => DataType::I32,
        3 => DataType::I64,
        4 => DataType::F32,
        5 => DataType::F64,
        t => return Err(GridError::Deserialize(format!("unknown dtype tag {t}"))),
    })
}

/// Simple CRC-32 (IEEE) used only by this container; duplicated from the
/// compress crate so `grid` stays dependency-free.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Serialize a dataset to bytes.
pub fn write_dataset(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(ds.variables().len() as u16).to_be_bytes());
    for var in ds.variables() {
        write_vint(&mut out, var.name().len() as i64);
        out.extend_from_slice(var.name().as_bytes());
        out.push(dtype_tag(var.dtype()));
        out.push(var.shape().ndims() as u8);
        for &e in var.shape().extents() {
            out.extend_from_slice(&e.to_be_bytes());
        }
        out.extend_from_slice(var.raw_data());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Parse a dataset from bytes.
pub fn read_dataset(buf: &[u8]) -> Result<Dataset, GridError> {
    if buf.len() < 10 || &buf[..4] != MAGIC {
        return Err(GridError::Deserialize("bad dataset magic".into()));
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_be_bytes(trailer.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(GridError::Deserialize(format!(
            "dataset checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }

    let nvars = u16::from_be_bytes([body[4], body[5]]) as usize;
    let mut pos = 6;
    let mut ds = Dataset::new();
    for _ in 0..nvars {
        let (name_len, used) = read_vint(&body[pos..])?;
        pos += used;
        let name_len = usize::try_from(name_len)
            .map_err(|_| GridError::Deserialize("negative name length".into()))?;
        if body.len() < pos + name_len + 2 {
            return Err(GridError::Deserialize("short variable header".into()));
        }
        let name = std::str::from_utf8(&body[pos..pos + name_len])
            .map_err(|_| GridError::Deserialize("variable name not UTF-8".into()))?
            .to_string();
        pos += name_len;
        let dtype = dtype_from_tag(body[pos])?;
        let ndims = body[pos + 1] as usize;
        pos += 2;
        if body.len() < pos + 4 * ndims {
            return Err(GridError::Deserialize("short extents".into()));
        }
        let extents: Vec<u32> = (0..ndims)
            .map(|d| {
                let o = pos + 4 * d;
                u32::from_be_bytes([body[o], body[o + 1], body[o + 2], body[o + 3]])
            })
            .collect();
        pos += 4 * ndims;
        let shape = Shape::new(extents);
        let data_len = shape
            .num_cells()
            .checked_mul(dtype.size_bytes() as u64)
            .filter(|&l| l <= (body.len() - pos) as u64)
            .ok_or_else(|| GridError::Deserialize("short or oversized cell data".into()))?
            as usize;
        let mut var = Variable::zeros(&name, dtype, shape)?;
        var.raw_data_mut()
            .copy_from_slice(&body[pos..pos + data_len]);
        pos += data_len;
        ds.add(var);
    }
    if pos != body.len() {
        return Err(GridError::Deserialize(format!(
            "{} trailing bytes after last variable",
            body.len() - pos
        )));
    }
    Ok(ds)
}

/// Save a dataset to a file.
pub fn save_dataset(ds: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_dataset(ds))
}

/// Load a dataset from a file.
pub fn load_dataset(path: &std::path::Path) -> Result<Dataset, GridError> {
    let bytes =
        std::fs::read(path).map_err(|e| GridError::Deserialize(format!("read {path:?}: {e}")))?;
    read_dataset(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::Coord;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.add(Variable::random_i32("temps", Shape::new(vec![4, 6]), 100, 1).unwrap());
        ds.add(Variable::smooth_f32("windspeed1", Shape::cube(3, 3), 2).unwrap());
        ds
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let bytes = write_dataset(&ds);
        let back = read_dataset(&bytes).unwrap();
        assert_eq!(back.variables().len(), 2);
        for (a, b) in ds.variables().iter().zip(back.variables()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.dtype(), b.dtype());
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.raw_data(), b.raw_data());
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let bytes = write_dataset(&Dataset::new());
        assert!(read_dataset(&bytes).unwrap().variables().is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = write_dataset(&sample());
        // Payload flip.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(read_dataset(&bytes).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = write_dataset(&sample());
        assert!(read_dataset(&bytes[..bytes.len() - 5]).is_err());
        assert!(read_dataset(&bytes[..3]).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_dataset(&sample());
        bytes[0] = b'X';
        assert!(read_dataset(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("scihadoop-grid-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.sgd");
        let ds = sample();
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(
            back.by_name("temps")
                .unwrap()
                .get(&Coord::new(vec![1, 2]))
                .unwrap(),
            ds.by_name("temps")
                .unwrap()
                .get(&Coord::new(vec![1, 2]))
                .unwrap()
        );
        if let Value::F32(v) = back
            .by_name("windspeed1")
            .unwrap()
            .get(&Coord::new(vec![0, 0, 0]))
            .unwrap()
        {
            assert!(v.is_finite());
        } else {
            panic!("wrong dtype");
        }
        std::fs::remove_file(&path).ok();
    }
}

//! n-dimensional scientific grid model for the SciHadoop key-compression
//! reproduction.
//!
//! This crate models the *input side* of the paper: regular grids of
//! scientific values (e.g. a 3-D `windspeed1` field), the coordinate keys
//! Hadoop would generate for them, and the exact byte layouts
//! ("Writable"-style) that make intermediate keys so expensive.
//!
//! The key observation reproduced here (paper §I): a 100³ grid of 4-byte
//! floats serialized as independent `(variable, coordinate) → value`
//! records costs 26 bytes/record with an integer variable index and 33
//! bytes/record with the variable name `windspeed1` — 450 % and 625 %
//! overhead over the 4 MB of actual data.

pub mod bbox;
pub mod coord;
pub mod dataset;
pub mod error;
pub mod io;
pub mod shape;
pub mod value;
pub mod walker;
pub mod writable;

pub use bbox::BoundingBox;
pub use coord::Coord;
pub use dataset::{Dataset, Variable};
pub use error::GridError;
pub use io::{load_dataset, read_dataset, save_dataset, write_dataset};
pub use shape::Shape;
pub use value::{DataType, Value};
pub use walker::{BlockWalker, GridWalker, RowMajorWalker};
pub use writable::{GridKey, VariableId, WritableSink, WritableSource};

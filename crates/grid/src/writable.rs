//! Hadoop-"Writable"-style serialization of grid keys.
//!
//! Hadoop serializes every intermediate key independently, the moment the
//! mapper emits it (paper §II-B assumption *b*). For scientific grids the
//! serialized key is a variable identifier plus one 32-bit integer per
//! dimension, big-endian — which is exactly what this module reproduces:
//!
//! * `Text`    — variable-length int (vint) byte count + UTF-8 bytes
//! * `IntWritable` — 4-byte big-endian two's-complement
//! * vint      — Hadoop's `WritableUtils.writeVInt` wire format
//!
//! With the variable name `windspeed1` a 3-D key costs
//! `1 + 10 + 3×4 = 23` bytes for a 4-byte value; with an integer variable
//! index it costs `4 + 3×4 = 16` bytes. Together with the engine's 6-byte
//! per-record framing this reproduces the paper's 33- and 26-byte records
//! (§I) and the 6.75× key/value ratio.

use crate::coord::Coord;
use crate::error::GridError;

/// Identifies which variable of a dataset a key refers to.
///
/// The paper measures both spellings: a compact integer index (450 %
/// overhead) and the human-readable name `windspeed1` (625 % overhead).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariableId {
    /// 4-byte integer index into the dataset's variable table.
    Index(i32),
    /// UTF-8 variable name, serialized like Hadoop `Text`.
    Name(String),
}

impl VariableId {
    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        match self {
            VariableId::Index(_) => 4,
            VariableId::Name(s) => vint_len(s.len() as i64) + s.len(),
        }
    }
}

/// A fully-qualified intermediate key: variable identifier + grid
/// coordinate. This is the "simple key" of the paper; aggregate keys are
/// built in `scihadoop-core`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridKey {
    /// Which variable the value belongs to.
    pub variable: VariableId,
    /// Grid coordinate of the value.
    pub coord: Coord,
}

impl GridKey {
    /// Construct a key.
    pub fn new(variable: VariableId, coord: Coord) -> Self {
        GridKey { variable, coord }
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        self.variable.serialized_len() + 4 * self.coord.ndims()
    }

    /// Serialize in the Hadoop layout described in the module docs.
    pub fn write(&self, out: &mut Vec<u8>) {
        match &self.variable {
            VariableId::Index(i) => out.extend_from_slice(&i.to_be_bytes()),
            VariableId::Name(s) => {
                write_vint(out, s.len() as i64);
                out.extend_from_slice(s.as_bytes());
            }
        }
        for &c in self.coord.components() {
            out.extend_from_slice(&c.to_be_bytes());
        }
    }

    /// Serialize into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write(&mut out);
        out
    }

    /// Deserialize a key with a *named* variable and `ndims` coordinates.
    pub fn read_named(buf: &[u8], ndims: usize) -> Result<(GridKey, usize), GridError> {
        let (len, mut pos) = read_vint(buf)?;
        let len = usize::try_from(len)
            .map_err(|_| GridError::Deserialize("negative name length".into()))?;
        if buf.len() < pos + len {
            return Err(GridError::Deserialize("short read in variable name".into()));
        }
        let name = std::str::from_utf8(&buf[pos..pos + len])
            .map_err(|_| GridError::Deserialize("variable name not UTF-8".into()))?
            .to_string();
        pos += len;
        let (coord, used) = read_coord(&buf[pos..], ndims)?;
        Ok((GridKey::new(VariableId::Name(name), coord), pos + used))
    }

    /// Deserialize a key with an *indexed* variable and `ndims` coordinates.
    pub fn read_indexed(buf: &[u8], ndims: usize) -> Result<(GridKey, usize), GridError> {
        if buf.len() < 4 {
            return Err(GridError::Deserialize(
                "short read in variable index".into(),
            ));
        }
        let idx = i32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let (coord, used) = read_coord(&buf[4..], ndims)?;
        Ok((GridKey::new(VariableId::Index(idx), coord), 4 + used))
    }
}

fn read_coord(buf: &[u8], ndims: usize) -> Result<(Coord, usize), GridError> {
    if buf.len() < 4 * ndims {
        return Err(GridError::Deserialize(format!(
            "need {} bytes for {ndims}-d coordinate, have {}",
            4 * ndims,
            buf.len()
        )));
    }
    let comps = (0..ndims)
        .map(|d| {
            let o = 4 * d;
            i32::from_be_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
        })
        .collect();
    Ok((Coord::new(comps), 4 * ndims))
}

/// Number of bytes Hadoop's vint encoding uses for `v`.
pub fn vint_len(v: i64) -> usize {
    if (-112..=127).contains(&v) {
        return 1;
    }
    let v = if v < 0 { !v } else { v };
    let data_bytes = 8 - (v.leading_zeros() as usize) / 8;
    1 + data_bytes
}

/// Hadoop `WritableUtils.writeVInt`/`writeVLong` wire format.
///
/// Values in `[-112, 127]` are one byte. Otherwise the first byte encodes
/// sign and byte count (`-113..-120` positive, `-121..-128` negative) and
/// the magnitude follows big-endian with leading zeros trimmed.
pub fn write_vint(out: &mut Vec<u8>, v: i64) {
    if (-112..=127).contains(&v) {
        out.push(v as u8);
        return;
    }
    let (mut tag, mag) = if v < 0 { (-120i64, !v) } else { (-112i64, v) };
    let data_bytes = (8 - (mag.leading_zeros() as usize) / 8).max(1);
    tag -= data_bytes as i64;
    out.push(tag as u8);
    for i in (0..data_bytes).rev() {
        out.push((mag >> (8 * i)) as u8);
    }
}

/// Inverse of [`write_vint`]; returns the value and bytes consumed.
pub fn read_vint(buf: &[u8]) -> Result<(i64, usize), GridError> {
    let first = *buf
        .first()
        .ok_or_else(|| GridError::Deserialize("empty vint".into()))? as i8;
    if first >= -112 {
        return Ok((first as i64, 1));
    }
    let (negative, data_bytes) = if first >= -120 {
        (false, (-113 - first as i64) as usize + 1)
    } else {
        (true, (-121 - first as i64) as usize + 1)
    };
    if buf.len() < 1 + data_bytes {
        return Err(GridError::Deserialize("short vint".into()));
    }
    // Accumulate in u64 — 8 data bytes fill exactly 64 bits, so the shift
    // cannot overflow — and reject magnitudes with no i64 representation
    // (the encoder writes at most `!i64::MIN == i64::MAX`).
    let mut mag = 0u64;
    for &b in &buf[1..1 + data_bytes] {
        mag = (mag << 8) | b as u64;
    }
    if mag > i64::MAX as u64 {
        return Err(GridError::Deserialize(format!(
            "vint magnitude {mag:#x} out of i64 range"
        )));
    }
    let mag = mag as i64;
    let v = if negative { !mag } else { mag };
    Ok((v, 1 + data_bytes))
}

/// Convenience trait for things that serialize into a growing byte buffer.
pub trait WritableSink {
    /// Append the serialized form of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);
}

/// Convenience trait for things that deserialize from a byte slice.
pub trait WritableSource: Sized {
    /// Parse from the front of `buf`; return the value and bytes consumed.
    fn read_from(buf: &[u8]) -> Result<(Self, usize), GridError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vint_small_values_are_one_byte() {
        for v in [-112i64, -1, 0, 1, 127] {
            let mut buf = Vec::new();
            write_vint(&mut buf, v);
            assert_eq!(buf.len(), 1, "v={v}");
            assert_eq!(read_vint(&buf).unwrap(), (v, 1));
        }
    }

    #[test]
    fn vint_roundtrip_wide_range() {
        for v in [
            -113i64,
            128,
            255,
            256,
            -129,
            65_535,
            -65_536,
            i64::MAX,
            i64::MIN,
            1 << 40,
        ] {
            let mut buf = Vec::new();
            write_vint(&mut buf, v);
            assert_eq!(buf.len(), vint_len(v), "len mismatch for {v}");
            assert_eq!(read_vint(&buf).unwrap(), (v, buf.len()), "v={v}");
        }
    }

    #[test]
    fn vint_rejects_truncation() {
        let mut buf = Vec::new();
        write_vint(&mut buf, 100_000);
        assert!(read_vint(&buf[..buf.len() - 1]).is_err());
        assert!(read_vint(&[]).is_err());
    }

    #[test]
    fn vint_rejects_out_of_range_magnitude() {
        // 8 data bytes with the top bit set: magnitude > i64::MAX. Both
        // sign tags must error instead of overflowing (debug) or wrapping
        // (release).
        for tag in [0x88u8, 0x80u8] {
            let mut buf = vec![tag];
            buf.extend_from_slice(&[0xFF; 8]);
            assert!(read_vint(&buf).is_err(), "tag {tag:#x}");
        }
    }

    #[test]
    fn named_key_layout_matches_paper() {
        // windspeed1 (10 chars) + 3 coords = 1 + 10 + 12 = 23 bytes.
        let k = GridKey::new(
            VariableId::Name("windspeed1".into()),
            Coord::new(vec![1, 2, 3]),
        );
        assert_eq!(k.serialized_len(), 23);
        let bytes = k.to_bytes();
        assert_eq!(bytes.len(), 23);
        assert_eq!(bytes[0], 10); // vint length of the name
        assert_eq!(&bytes[1..11], b"windspeed1");
        let (back, used) = GridKey::read_named(&bytes, 3).unwrap();
        assert_eq!(back, k);
        assert_eq!(used, 23);
    }

    #[test]
    fn indexed_key_layout_matches_paper() {
        // variable index + 3 coords = 4 + 12 = 16 bytes.
        let k = GridKey::new(VariableId::Index(7), Coord::new(vec![9, 8, 7]));
        assert_eq!(k.serialized_len(), 16);
        let bytes = k.to_bytes();
        assert_eq!(bytes.len(), 16);
        let (back, used) = GridKey::read_indexed(&bytes, 3).unwrap();
        assert_eq!(back, k);
        assert_eq!(used, 16);
    }

    #[test]
    fn negative_coords_roundtrip() {
        // Sliding-window halos produce coordinates like (-1, -1).
        let k = GridKey::new(VariableId::Index(0), Coord::new(vec![-1, -1]));
        let bytes = k.to_bytes();
        let (back, _) = GridKey::read_indexed(&bytes, 2).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn read_named_rejects_garbage() {
        assert!(GridKey::read_named(&[], 3).is_err());
        assert!(GridKey::read_named(&[5, b'a', b'b'], 3).is_err()); // short name
        let mut buf = vec![2, 0xff, 0xfe]; // invalid UTF-8 name
        buf.extend_from_slice(&[0; 12]);
        assert!(GridKey::read_named(&buf, 3).is_err());
    }

    #[test]
    fn big_endian_key_bytes_sort_like_coords() {
        // Hadoop sorts serialized keys bytewise; for non-negative
        // coordinates the BE layout must agree with coordinate order.
        let a = GridKey::new(VariableId::Index(0), Coord::new(vec![0, 200]));
        let b = GridKey::new(VariableId::Index(0), Coord::new(vec![1, 0]));
        assert!(a.to_bytes() < b.to_bytes());
    }
}

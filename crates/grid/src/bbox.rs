//! Axis-aligned bounding boxes: the `(corner, size)` aggregate description
//! the paper contrasts with per-cell keys (§I: "if values can be stored in
//! order and keys are represented in aggregate as a (corner, size) pair,
//! the overhead is reduced to a constant").

use crate::coord::Coord;
use crate::error::GridError;
use crate::shape::Shape;

/// An axis-aligned box of grid cells, described by its lowest corner and
/// its per-dimension size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoundingBox {
    corner: Coord,
    shape: Shape,
}

impl BoundingBox {
    /// Create a box from its lowest corner and shape.
    pub fn new(corner: Coord, shape: Shape) -> Result<Self, GridError> {
        if corner.ndims() != shape.ndims() {
            return Err(GridError::DimensionMismatch {
                expected: corner.ndims(),
                actual: shape.ndims(),
            });
        }
        Ok(BoundingBox { corner, shape })
    }

    /// A box anchored at the origin.
    pub fn at_origin(shape: Shape) -> Self {
        BoundingBox {
            corner: Coord::origin(shape.ndims()),
            shape,
        }
    }

    /// Smallest box containing both inclusive corners `lo` and `hi`.
    pub fn from_corners(lo: &Coord, hi: &Coord) -> Result<Self, GridError> {
        if lo.ndims() != hi.ndims() {
            return Err(GridError::DimensionMismatch {
                expected: lo.ndims(),
                actual: hi.ndims(),
            });
        }
        let min = lo.elementwise_min(hi);
        let max = lo.elementwise_max(hi);
        let shape = Shape::new(
            min.components()
                .iter()
                .zip(max.components())
                .map(|(a, b)| (b - a + 1) as u32)
                .collect(),
        );
        Ok(BoundingBox { corner: min, shape })
    }

    /// The lowest corner.
    pub fn corner(&self) -> &Coord {
        &self.corner
    }

    /// Per-dimension size.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.shape.ndims()
    }

    /// Number of cells in the box.
    pub fn num_cells(&self) -> u64 {
        self.shape.num_cells()
    }

    /// Inclusive upper corner. Panics on an empty box.
    pub fn upper_corner(&self) -> Coord {
        assert!(!self.shape.is_empty(), "upper_corner of empty box");
        Coord::new(
            self.corner
                .components()
                .iter()
                .zip(self.shape.extents())
                .map(|(c, e)| c + *e as i32 - 1)
                .collect(),
        )
    }

    /// True if the coordinate lies within the box.
    pub fn contains(&self, coord: &Coord) -> bool {
        coord.ndims() == self.ndims()
            && coord
                .components()
                .iter()
                .zip(self.corner.components())
                .zip(self.shape.extents())
                .all(|((c, lo), e)| *c >= *lo && *c < lo + *e as i32)
    }

    /// Intersection of two boxes, or `None` if disjoint.
    pub fn intersect(&self, other: &BoundingBox) -> Option<BoundingBox> {
        if self.ndims() != other.ndims() || self.shape.is_empty() || other.shape.is_empty() {
            return None;
        }
        let lo = self.corner.elementwise_max(&other.corner);
        let hi = self.upper_corner().elementwise_min(&other.upper_corner());
        if lo
            .components()
            .iter()
            .zip(hi.components())
            .any(|(a, b)| a > b)
        {
            return None;
        }
        Some(BoundingBox::from_corners(&lo, &hi).expect("dims match"))
    }

    /// Grow the box by `margin` cells in every direction (the halo a
    /// sliding-window query writes into, §IV-C).
    pub fn dilate(&self, margin: i32) -> BoundingBox {
        assert!(margin >= 0, "dilate takes a non-negative margin");
        BoundingBox {
            corner: self.corner.offset_all(-margin),
            shape: Shape::new(
                self.shape
                    .extents()
                    .iter()
                    .map(|&e| e + 2 * margin as u32)
                    .collect(),
            ),
        }
    }

    /// Split the box into roughly equal chunks along its longest dimension.
    /// Used to carve input splits for mappers.
    pub fn split_longest(&self, parts: usize) -> Vec<BoundingBox> {
        assert!(parts > 0);
        if parts == 1 || self.shape.is_empty() {
            return vec![self.clone()];
        }
        let (dim, &extent) = self
            .shape
            .extents()
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| **e)
            .expect("non-empty shape");
        let parts = parts.min(extent as usize).max(1);
        let mut out = Vec::with_capacity(parts);
        let base = extent / parts as u32;
        let rem = extent % parts as u32;
        let mut start = self.corner[dim];
        for p in 0..parts {
            let len = base + if (p as u32) < rem { 1 } else { 0 };
            let mut corner = self.corner.clone();
            corner[dim] = start;
            let mut ext = self.shape.extents().to_vec();
            ext[dim] = len;
            out.push(BoundingBox {
                corner,
                shape: Shape::new(ext),
            });
            start += len as i32;
        }
        out
    }

    /// Iterate the cells of the box in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        let total = self.num_cells();
        (0..total).map(move |i| {
            let local = self.shape.delinearize(i).expect("index in range");
            local
                .checked_add(&self.corner)
                .expect("dimension agreement")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(corner: Vec<i32>, shape: Vec<u32>) -> BoundingBox {
        BoundingBox::new(Coord::new(corner), Shape::new(shape)).unwrap()
    }

    #[test]
    fn contains_respects_corner_and_shape() {
        let b = bb(vec![2, 3], vec![4, 5]);
        assert!(b.contains(&Coord::new(vec![2, 3])));
        assert!(b.contains(&Coord::new(vec![5, 7])));
        assert!(!b.contains(&Coord::new(vec![6, 7])));
        assert!(!b.contains(&Coord::new(vec![1, 3])));
        assert!(!b.contains(&Coord::new(vec![2, 3, 0])));
    }

    #[test]
    fn intersect_overlapping_boxes() {
        // The paper's §IV-C example: mapper (0,0)-(9,9) dilated by 1
        // overlaps its neighbour (0,10)-(9,19) dilated by 1 in (-1,9)-(10,10).
        let a = bb(vec![0, 0], vec![10, 10]).dilate(1);
        let b = bb(vec![0, 10], vec![10, 10]).dilate(1);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.corner().components(), &[-1, 9]);
        assert_eq!(i.upper_corner().components(), &[10, 10]);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = bb(vec![0, 0], vec![2, 2]);
        let b = bb(vec![5, 5], vec![2, 2]);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn dilate_grows_symmetrically() {
        let b = bb(vec![0, 0], vec![10, 10]).dilate(1);
        assert_eq!(b.corner().components(), &[-1, -1]);
        assert_eq!(b.upper_corner().components(), &[10, 10]);
        assert_eq!(b.num_cells(), 144);
    }

    #[test]
    fn split_longest_covers_exactly() {
        let b = bb(vec![0, 0], vec![10, 3]);
        let parts = b.split_longest(4);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, b.num_cells());
        // Parts are disjoint and cover: check by membership counting.
        for c in b.cells() {
            let n = parts.iter().filter(|p| p.contains(&c)).count();
            assert_eq!(n, 1, "cell {c} covered {n} times");
        }
    }

    #[test]
    fn split_more_parts_than_extent_clamps() {
        let b = bb(vec![0], vec![3]);
        let parts = b.split_longest(10);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn cells_iterates_row_major() {
        let b = bb(vec![1, 1], vec![2, 2]);
        let cells: Vec<_> = b.cells().collect();
        assert_eq!(
            cells,
            vec![
                Coord::new(vec![1, 1]),
                Coord::new(vec![1, 2]),
                Coord::new(vec![2, 1]),
                Coord::new(vec![2, 2]),
            ]
        );
    }

    #[test]
    fn from_corners_normalizes_order() {
        let b =
            BoundingBox::from_corners(&Coord::new(vec![5, 1]), &Coord::new(vec![2, 4])).unwrap();
        assert_eq!(b.corner().components(), &[2, 1]);
        assert_eq!(b.shape().extents(), &[4, 4]);
    }
}

//! In-memory scientific datasets: the NetCDF-shaped inputs the paper's
//! queries read.
//!
//! The paper runs against NetCDF files holding regular grids of one or
//! more named variables. We keep the same logical model — a set of named
//! variables, each an n-D array of a fixed element type — in memory,
//! with deterministic synthetic generators for the evaluation workloads.

use crate::bbox::BoundingBox;
use crate::coord::Coord;
use crate::error::GridError;
use crate::shape::Shape;
use crate::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One named variable: an n-D array of `dtype` elements.
#[derive(Debug, Clone)]
pub struct Variable {
    name: String,
    dtype: DataType,
    shape: Shape,
    /// Row-major cell data, stored as raw big-endian bytes so any dtype
    /// shares one allocation strategy.
    data: Vec<u8>,
}

impl Variable {
    /// Create a variable filled with zeros.
    pub fn zeros(name: &str, dtype: DataType, shape: Shape) -> Result<Self, GridError> {
        if shape.is_empty() {
            return Err(GridError::EmptyShape);
        }
        let len = shape.num_cells() as usize * dtype.size_bytes();
        Ok(Variable {
            name: name.to_string(),
            dtype,
            shape,
            data: vec![0u8; len],
        })
    }

    /// Create a variable by evaluating `f` at every cell (row-major order).
    pub fn generate(
        name: &str,
        dtype: DataType,
        shape: Shape,
        mut f: impl FnMut(&Coord) -> Value,
    ) -> Result<Self, GridError> {
        let mut v = Variable::zeros(name, dtype, shape)?;
        let total = v.shape.num_cells();
        let mut buf = Vec::with_capacity(dtype.size_bytes());
        for i in 0..total {
            let c = v.shape.delinearize(i).expect("in range");
            let val = f(&c);
            assert_eq!(val.data_type(), dtype, "generator returned wrong data type");
            buf.clear();
            val.write_be(&mut buf);
            let off = i as usize * dtype.size_bytes();
            v.data[off..off + buf.len()].copy_from_slice(&buf);
        }
        Ok(v)
    }

    /// Deterministic pseudo-random integer field in `[0, max)`.
    pub fn random_i32(name: &str, shape: Shape, max: i32, seed: u64) -> Result<Self, GridError> {
        let mut rng = StdRng::seed_from_u64(seed);
        Variable::generate(name, DataType::I32, shape, |_| {
            Value::I32(rng.random_range(0..max))
        })
    }

    /// Deterministic smooth float field (sum of per-dimension ramps plus
    /// small noise) — a stand-in for fields like wind speed.
    pub fn smooth_f32(name: &str, shape: Shape, seed: u64) -> Result<Self, GridError> {
        let mut rng = StdRng::seed_from_u64(seed);
        Variable::generate(name, DataType::F32, shape, |c| {
            let base: f32 = c
                .components()
                .iter()
                .enumerate()
                .map(|(d, &x)| (x as f32) * 0.1 / (d + 1) as f32)
                .sum();
            Value::F32(base + rng.random_range(-0.05f32..0.05f32))
        })
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Grid shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The box covering the whole variable, anchored at the origin.
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::at_origin(self.shape.clone())
    }

    /// Raw big-endian cell bytes (row-major).
    pub fn raw_data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw cell bytes (for bulk deserialization).
    pub fn raw_data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Total payload bytes (what the paper calls "the data").
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Read the value at a coordinate.
    pub fn get(&self, coord: &Coord) -> Result<Value, GridError> {
        let idx = self.shape.linearize(coord)?;
        let off = idx as usize * self.dtype.size_bytes();
        let (v, _) = Value::read_be(self.dtype, &self.data[off..])?;
        Ok(v)
    }

    /// Write the value at a coordinate.
    pub fn set(&mut self, coord: &Coord, value: Value) -> Result<(), GridError> {
        if value.data_type() != self.dtype {
            return Err(GridError::Deserialize(format!(
                "value type {} does not match variable type {}",
                value.data_type().name(),
                self.dtype.name()
            )));
        }
        let idx = self.shape.linearize(coord)?;
        let off = idx as usize * self.dtype.size_bytes();
        let mut buf = Vec::with_capacity(self.dtype.size_bytes());
        value.write_be(&mut buf);
        self.data[off..off + buf.len()].copy_from_slice(&buf);
        Ok(())
    }
}

/// A collection of named variables — the in-memory analogue of one NetCDF
/// file.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    variables: Vec<Variable>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Add a variable; returns its index (the `VariableId::Index` the
    /// compact key layout uses).
    pub fn add(&mut self, var: Variable) -> i32 {
        self.variables.push(var);
        (self.variables.len() - 1) as i32
    }

    /// All variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Look up a variable by name.
    pub fn by_name(&self, name: &str) -> Result<&Variable, GridError> {
        self.variables
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| GridError::UnknownVariable(name.to_string()))
    }

    /// Look up a variable by index.
    pub fn by_index(&self, idx: i32) -> Result<&Variable, GridError> {
        self.variables
            .get(idx as usize)
            .ok_or_else(|| GridError::UnknownVariable(format!("#{idx}")))
    }

    /// Sum of payload bytes over all variables.
    pub fn data_bytes(&self) -> u64 {
        self.variables.iter().map(|v| v.data_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut v = Variable::zeros("t", DataType::I32, Shape::new(vec![4, 4])).unwrap();
        let c = Coord::new(vec![2, 3]);
        assert_eq!(v.get(&c).unwrap(), Value::I32(0));
        v.set(&c, Value::I32(-5)).unwrap();
        assert_eq!(v.get(&c).unwrap(), Value::I32(-5));
    }

    #[test]
    fn set_rejects_type_mismatch_and_oob() {
        let mut v = Variable::zeros("t", DataType::I32, Shape::new(vec![2, 2])).unwrap();
        assert!(v.set(&Coord::new(vec![0, 0]), Value::F32(1.0)).is_err());
        assert!(v.set(&Coord::new(vec![2, 0]), Value::I32(1)).is_err());
        assert!(v.get(&Coord::new(vec![0, 5])).is_err());
    }

    #[test]
    fn generate_visits_every_cell_in_row_major_order() {
        let mut seen = Vec::new();
        let v = Variable::generate("g", DataType::I32, Shape::new(vec![2, 3]), |c| {
            seen.push(c.clone());
            Value::I32(c[0] * 10 + c[1])
        })
        .unwrap();
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0].components(), &[0, 0]);
        assert_eq!(seen[5].components(), &[1, 2]);
        assert_eq!(v.get(&Coord::new(vec![1, 2])).unwrap(), Value::I32(12));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Variable::random_i32("r", Shape::new(vec![8, 8]), 100, 42).unwrap();
        let b = Variable::random_i32("r", Shape::new(vec![8, 8]), 100, 42).unwrap();
        let c = Variable::random_i32("r", Shape::new(vec![8, 8]), 100, 43).unwrap();
        assert_eq!(a.raw_data(), b.raw_data());
        assert_ne!(a.raw_data(), c.raw_data());
    }

    #[test]
    fn dataset_lookup_by_name_and_index() {
        let mut ds = Dataset::new();
        let i = ds.add(Variable::zeros("windspeed1", DataType::F32, Shape::cube(4, 3)).unwrap());
        assert_eq!(i, 0);
        assert_eq!(ds.by_name("windspeed1").unwrap().name(), "windspeed1");
        assert_eq!(ds.by_index(0).unwrap().name(), "windspeed1");
        assert!(ds.by_name("nope").is_err());
        assert!(ds.by_index(3).is_err());
    }

    #[test]
    fn data_bytes_counts_payload_only() {
        // The paper's 100^3 float grid is 4,000,000 bytes of payload.
        let v = Variable::zeros("w", DataType::F32, Shape::cube(100, 3)).unwrap();
        assert_eq!(v.data_bytes(), 4_000_000);
    }

    #[test]
    fn empty_shape_is_rejected() {
        assert!(Variable::zeros("e", DataType::I32, Shape::new(vec![0, 3])).is_err());
    }
}

//! Property tests for the grid substrate.

use proptest::prelude::*;
use scihadoop_grid::writable::{read_vint, write_vint};
use scihadoop_grid::{
    read_dataset, write_dataset, BoundingBox, Coord, Dataset, GridKey, Shape, Variable, VariableId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vint_roundtrips_all_i64(v in any::<i64>()) {
        let mut buf = Vec::new();
        write_vint(&mut buf, v);
        prop_assert_eq!(read_vint(&buf).unwrap(), (v, buf.len()));
    }

    #[test]
    fn linearize_is_bijective(
        extents in proptest::collection::vec(1u32..20, 1..4),
        idx_frac in 0.0f64..1.0,
    ) {
        let shape = Shape::new(extents);
        let cells = shape.num_cells();
        let idx = ((cells as f64 - 1.0) * idx_frac) as u64;
        let coord = shape.delinearize(idx).unwrap();
        prop_assert_eq!(shape.linearize(&coord).unwrap(), idx);
    }

    #[test]
    fn grid_keys_roundtrip(
        coords in proptest::collection::vec(any::<i32>(), 1..5),
        name in "[a-z][a-z0-9_]{0,20}",
        index in any::<i32>(),
    ) {
        let ndims = coords.len();
        let named = GridKey::new(VariableId::Name(name), Coord::new(coords.clone()));
        let bytes = named.to_bytes();
        prop_assert_eq!(bytes.len(), named.serialized_len());
        let (back, used) = GridKey::read_named(&bytes, ndims).unwrap();
        prop_assert_eq!(back, named);
        prop_assert_eq!(used, bytes.len());

        let indexed = GridKey::new(VariableId::Index(index), Coord::new(coords));
        let bytes = indexed.to_bytes();
        let (back, _) = GridKey::read_indexed(&bytes, ndims).unwrap();
        prop_assert_eq!(back, indexed);
    }

    #[test]
    fn bbox_intersection_is_commutative_and_tight(
        a_corner in proptest::collection::vec(-10i32..10, 2),
        a_shape in proptest::collection::vec(1u32..8, 2),
        b_corner in proptest::collection::vec(-10i32..10, 2),
        b_shape in proptest::collection::vec(1u32..8, 2),
    ) {
        let a = BoundingBox::new(Coord::new(a_corner), Shape::new(a_shape)).unwrap();
        let b = BoundingBox::new(Coord::new(b_corner), Shape::new(b_shape)).unwrap();
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(&ab, &ba);
        match ab {
            Some(i) => {
                for cell in i.cells() {
                    prop_assert!(a.contains(&cell) && b.contains(&cell));
                }
            }
            None => {
                for cell in a.cells() {
                    prop_assert!(!b.contains(&cell));
                }
            }
        }
    }

    #[test]
    fn split_longest_partitions_exactly(
        extents in proptest::collection::vec(1u32..12, 1..4),
        parts in 1usize..8,
    ) {
        let b = BoundingBox::at_origin(Shape::new(extents));
        let pieces = b.split_longest(parts);
        let total: u64 = pieces.iter().map(|p| p.num_cells()).sum();
        prop_assert_eq!(total, b.num_cells());
        for cell in b.cells() {
            let n = pieces.iter().filter(|p| p.contains(&cell)).count();
            prop_assert_eq!(n, 1);
        }
    }

    #[test]
    fn dataset_io_roundtrips(
        w in 1u32..8, h in 1u32..8, seed in any::<u64>(),
        name in "[a-z][a-z0-9_]{0,12}",
    ) {
        let mut ds = Dataset::new();
        ds.add(Variable::random_i32(&name, Shape::new(vec![w, h]), 1000, seed).unwrap());
        let bytes = write_dataset(&ds);
        let back = read_dataset(&bytes).unwrap();
        prop_assert_eq!(back.variables().len(), 1);
        prop_assert_eq!(back.variables()[0].raw_data(), ds.variables()[0].raw_data());
        prop_assert_eq!(back.variables()[0].name(), name.as_str());
    }
}

//! A cost-model cluster simulator for the paper's end-to-end experiments.
//!
//! The paper's §III-E and §IV-D results come from a 5-node cluster with 5
//! reducers and 10 map slots running a sliding-median query over an
//! 8000×8000 grid. We have no such cluster (and 2012-era Hadoop-on-Java
//! per-byte costs differ wildly from in-process Rust), so the experiments
//! are replayed through a cost model instead:
//!
//! 1. Run the *real* job in-process on a scaled-down grid with the real
//!    codecs — this yields honest byte counts and codec CPU costs
//!    ([`JobStats`](scihadoop_mapreduce::JobStats)).
//! 2. Scale the stats to the paper's problem size (the pipeline is
//!    streaming, so bytes and codec-CPU scale linearly with cells —
//!    §IV-D argues exactly this).
//! 3. Push the scaled stats through [`CostModel::simulate`], which charges
//!    disk bandwidth, network bandwidth and (scaled) CPU for every stage
//!    of the paper's Fig. 1 pipeline.
//!
//! What the model preserves is the paper's *contrast*: byte-level
//! transform → big byte reduction but codec CPU dominates (runtime
//! +106 %); aggregation → comparable byte reduction at negligible CPU
//! (runtime −28.5 %).

pub mod model;
pub mod scale;

pub use model::{stats_from_ledger, ClusterSpec, CostModel, PhaseTimes, SimReport};
pub use scale::scale_stats;

//! Scaling measured job statistics to the paper's problem size.
//!
//! §IV-D: "the aggregation and sort/merge/split code is all based on
//! streaming algorithms, so adding more data per node should not be
//! detrimental" — per-cell costs are constant, so bytes and CPU scale
//! linearly in the cell count. `bench_scaling` verifies this empirically
//! before the cluster benches rely on it.

use scihadoop_mapreduce::JobStats;

/// Scale a job's byte counts and CPU times by `factor` (e.g. running a
/// 1024² grid locally and scaling to the paper's 8000²:
/// `factor = 8000² / 1024²`). Task counts scale too, so slot scheduling
/// stays realistic; wall-clock fields are zeroed because they do not
/// scale linearly (they belong to the measuring machine).
pub fn scale_stats(stats: &JobStats, factor: f64) -> JobStats {
    assert!(factor > 0.0, "scale factor must be positive");
    let b = |v: u64| (v as f64 * factor).round() as u64;
    JobStats {
        num_maps: ((stats.num_maps as f64 * factor).round() as usize).max(1),
        num_reducers: stats.num_reducers,
        input_bytes: b(stats.input_bytes),
        map_output_bytes: b(stats.map_output_bytes),
        map_output_materialized_bytes: b(stats.map_output_materialized_bytes),
        output_bytes: b(stats.output_bytes),
        shuffle_spilled_bytes: b(stats.shuffle_spilled_bytes),
        shuffle_wire_saved_bytes: b(stats.shuffle_wire_saved_bytes),
        wire_compress_nanos: b(stats.wire_compress_nanos),
        wire_decompress_nanos: b(stats.wire_decompress_nanos),
        compress_nanos: b(stats.compress_nanos),
        decompress_nanos: b(stats.decompress_nanos),
        map_fn_nanos: b(stats.map_fn_nanos),
        reduce_fn_nanos: b(stats.reduce_fn_nanos),
        spill_nanos: b(stats.spill_nanos),
        merge_nanos: b(stats.merge_nanos),
        map_wall_nanos: 0,
        reduce_wall_nanos: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> JobStats {
        JobStats {
            num_maps: 4,
            num_reducers: 5,
            input_bytes: 1000,
            map_output_bytes: 5000,
            map_output_materialized_bytes: 2000,
            output_bytes: 100,
            shuffle_spilled_bytes: 600,
            shuffle_wire_saved_bytes: 800,
            wire_compress_nanos: 70_000,
            wire_decompress_nanos: 30_000,
            compress_nanos: 1_000_000,
            decompress_nanos: 300_000,
            map_fn_nanos: 2_000_000,
            reduce_fn_nanos: 900_000,
            spill_nanos: 400_000,
            merge_nanos: 500_000,
            map_wall_nanos: 123,
            reduce_wall_nanos: 456,
        }
    }

    #[test]
    fn linear_scaling_of_bytes_and_cpu() {
        let s = scale_stats(&stats(), 10.0);
        assert_eq!(s.input_bytes, 10_000);
        assert_eq!(s.map_output_materialized_bytes, 20_000);
        assert_eq!(s.compress_nanos, 10_000_000);
        assert_eq!(s.shuffle_wire_saved_bytes, 8_000);
        assert_eq!(s.wire_compress_nanos, 700_000);
        assert_eq!(s.num_maps, 40);
        assert_eq!(s.num_reducers, 5, "reducer count is a config, not load");
    }

    #[test]
    fn wall_clock_is_dropped() {
        let s = scale_stats(&stats(), 2.0);
        assert_eq!(s.map_wall_nanos, 0);
        assert_eq!(s.reduce_wall_nanos, 0);
    }

    #[test]
    fn tiny_factors_keep_at_least_one_map() {
        let s = scale_stats(&stats(), 0.01);
        assert_eq!(s.num_maps, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = scale_stats(&stats(), 0.0);
    }
}

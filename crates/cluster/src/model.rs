//! The analytic cost model of the Fig. 1 pipeline.

use scihadoop_mapreduce::obs::{DriftReport, DriftRow, LedgerRecord, Metric};
use scihadoop_mapreduce::{Counter, JobStats};

/// Hardware description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Total concurrent map tasks (the paper: 10).
    pub map_slots: usize,
    /// Number of reduce tasks, all concurrent (the paper: 5).
    pub reducers: usize,
    /// Per-node disk streaming bandwidth, MB/s.
    pub disk_mbps: f64,
    /// Per-node network bandwidth, MB/s.
    pub net_mbps: f64,
    /// Multiplier applied to measured *engine + user-function* CPU
    /// (map/reduce functions, spill sort/serialize, reduce merge). Maps
    /// this process's Rust pipeline onto the 2012 Java Hadoop pipeline,
    /// whose per-record path is over an order of magnitude heavier.
    pub engine_cpu_scale: f64,
    /// Multiplier applied to measured *codec* CPU. Our codecs are the
    /// same algorithm families at similar per-byte cost, so this is a
    /// small hardware-generation factor.
    pub codec_cpu_scale: f64,
}

impl ClusterSpec {
    /// The paper's evaluation cluster: 5 nodes, 10 map slots, 5 reducers,
    /// with plausible 2012 commodity hardware (single SATA disk ≈80 MB/s
    /// streaming, GigE ≈110 MB/s). `engine_cpu_scale` is calibrated so
    /// the measured *baseline* sliding-median run lands near the paper's
    /// 183 minutes; `codec_cpu_scale` is a hardware-generation factor
    /// (2012 Xeon vs a modern core) — our codec throughput per byte is
    /// already comparable to the paper's (≈0.5 MB/s for the transform).
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            nodes: 5,
            map_slots: 10,
            reducers: 5,
            disk_mbps: 80.0,
            net_mbps: 110.0,
            engine_cpu_scale: 45.0,
            codec_cpu_scale: 2.0,
        }
    }

    /// Builder-style override for both CPU scales at once.
    pub fn with_cpu_scale(mut self, s: f64) -> Self {
        self.engine_cpu_scale = s;
        self.codec_cpu_scale = s;
        self
    }

    /// A spec describing the machine a ledger record was measured on,
    /// for model-vs-measured reconciliation: the run's own slot counts,
    /// unit CPU scales (the record's nanos *are* this machine's CPU),
    /// and effectively infinite disk bandwidth, because an in-process
    /// run moves intermediate bytes through memory. `nodes` doubles as
    /// the reduce-side parallelism in [`CostModel`], so it carries the
    /// record's reduce slots.
    ///
    /// Network bandwidth is *measured* when the record came from a
    /// distributed run: the runtime counts socket-write time
    /// (`ShuffleTransferNanos`) against shuffled bytes, and one byte
    /// per nanosecond is 1000 MB/s. Records from in-process runs carry
    /// no transfer time and keep the effectively-unbounded default.
    pub fn local_host(record: &LedgerRecord) -> Self {
        let transfer_nanos = record.counters.get(Counter::ShuffleTransferNanos);
        let net_mbps = if transfer_nanos > 0 {
            let bytes = record.counters.get(Counter::ShuffleBytes);
            (bytes as f64 * 1000.0) / transfer_nanos as f64
        } else {
            1e9
        };
        ClusterSpec {
            nodes: (record.config.reduce_slots as usize).max(1),
            map_slots: (record.config.map_slots as usize).max(1),
            reducers: (record.job.num_reducers as usize).max(1),
            disk_mbps: 1e9,
            net_mbps,
            engine_cpu_scale: 1.0,
            codec_cpu_scale: 1.0,
        }
    }
}

/// Rebuild the [`JobStats`] a run's ledger record captured: counters
/// plus the job-shape extras, exactly as the runner assembled them.
pub fn stats_from_ledger(record: &LedgerRecord) -> JobStats {
    JobStats::from_counters(
        &record.counters,
        record.job.num_maps as usize,
        record.job.num_reducers as usize,
        record.job.input_bytes,
        record.job.map_wall_nanos,
        record.job.reduce_wall_nanos,
    )
}

/// Seconds attributed to each pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    /// Mappers reading input from distributed storage.
    pub map_read_s: f64,
    /// User map-function CPU.
    pub map_cpu_s: f64,
    /// Codec CPU compressing intermediate data (map side).
    pub map_codec_s: f64,
    /// Writing materialized map output to local disk.
    pub map_write_s: f64,
    /// Network transfer of materialized bytes to reducers, net of the
    /// bytes the wire codec kept off the socket.
    pub shuffle_s: f64,
    /// Wire-codec CPU: compressing segments at shuffle publish plus
    /// inflating them at reduce fetch. Zero under the identity wire
    /// codec, so compressed and raw runs share every other term.
    pub wire_codec_s: f64,
    /// Coordinator-side shuffle-store spill: bytes past the in-memory
    /// budget written to the shuffle host's disk and read back on serve.
    /// Zero whenever the store never spills, so bounded and unbounded
    /// runs share every other term.
    pub shuffle_spill_disk_s: f64,
    /// Reducer-side disk: write fetched data, read it back for the merge
    /// (Fig. 1 steps 4–5).
    pub reduce_disk_s: f64,
    /// Codec CPU decompressing intermediate data (reduce side).
    pub reduce_codec_s: f64,
    /// User reduce-function CPU.
    pub reduce_cpu_s: f64,
    /// Writing final output back to distributed storage.
    pub output_write_s: f64,
}

/// Simulation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Per-stage seconds (work, before slot scheduling).
    pub phases: PhaseTimes,
    /// Map-phase makespan after scheduling tasks onto map slots.
    pub map_makespan_s: f64,
    /// Shuffle + reduce makespan.
    pub reduce_makespan_s: f64,
    /// End-to-end seconds.
    pub total_s: f64,
}

impl SimReport {
    /// Total in minutes (the paper reports minutes).
    pub fn total_minutes(&self) -> f64 {
        self.total_s / 60.0
    }
}

/// The cost model itself.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    spec: ClusterSpec,
}

impl CostModel {
    /// A model over the given hardware.
    pub fn new(spec: ClusterSpec) -> Self {
        CostModel { spec }
    }

    /// The hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Replay a job's byte/CPU accounting through the pipeline.
    pub fn simulate(&self, stats: &JobStats) -> SimReport {
        let s = &self.spec;
        let mb = |bytes: u64| bytes as f64 / 1e6;
        let engine_cpu = |nanos: u64| nanos as f64 / 1e9 * s.engine_cpu_scale;
        let codec_cpu = |nanos: u64| nanos as f64 / 1e9 * s.codec_cpu_scale;

        // Aggregate bandwidths: map tasks spread across all nodes' disks;
        // reducers across min(reducers, nodes) nodes.
        let map_disk = s.disk_mbps * s.nodes as f64;
        let reduce_nodes = s.reducers.min(s.nodes).max(1) as f64;
        let reduce_disk = s.disk_mbps * reduce_nodes;
        let net = s.net_mbps * reduce_nodes;

        let phases = PhaseTimes {
            map_read_s: mb(stats.input_bytes) / map_disk,
            map_cpu_s: engine_cpu(stats.map_fn_nanos + stats.spill_nanos),
            map_codec_s: codec_cpu(stats.compress_nanos),
            map_write_s: mb(stats.map_output_materialized_bytes) / map_disk,
            // The wire codec takes its savings off the socket term:
            // only the compressed frames cross the network.
            shuffle_s: mb(stats
                .map_output_materialized_bytes
                .saturating_sub(stats.shuffle_wire_saved_bytes))
                / net,
            wire_codec_s: codec_cpu(stats.wire_compress_nanos + stats.wire_decompress_nanos),
            // Spilled bytes cross one host's disk twice (append on
            // publish, pread on serve) — the shuffle service runs on a
            // single coordinator, so no node aggregation applies.
            shuffle_spill_disk_s: 2.0 * mb(stats.shuffle_spilled_bytes) / s.disk_mbps,
            // Written once and read back at least once on the reducer.
            reduce_disk_s: 2.0 * mb(stats.map_output_materialized_bytes) / reduce_disk,
            reduce_codec_s: codec_cpu(stats.decompress_nanos),
            reduce_cpu_s: engine_cpu(stats.reduce_fn_nanos + stats.merge_nanos),
            output_write_s: mb(stats.output_bytes) / reduce_disk,
        };

        // Map-side CPU runs as uniform tasks scheduled in waves over the
        // map slots; disk terms already use aggregate bandwidth.
        let map_cpu_parallel = cpu_makespan(
            phases.map_cpu_s + phases.map_codec_s,
            stats.num_maps,
            s.map_slots,
        );
        let map_makespan_s = phases.map_read_s + phases.map_write_s + map_cpu_parallel;

        let reduce_cpu_parallel = (phases.reduce_codec_s + phases.reduce_cpu_s) / reduce_nodes;
        // Publish-side compression is serialized on the coordinator;
        // fetch-side inflation spreads across the reduce nodes. Charging
        // the whole term unparallelized keeps the model conservative.
        let reduce_makespan_s = phases.shuffle_s
            + phases.wire_codec_s
            + phases.shuffle_spill_disk_s
            + phases.reduce_disk_s
            + reduce_cpu_parallel
            + phases.output_write_s;

        SimReport {
            phases,
            map_makespan_s,
            reduce_makespan_s,
            total_s: map_makespan_s + reduce_makespan_s,
        }
    }
}

impl CostModel {
    /// Replay a ledger record through the model and compare it, row by
    /// row, against what the run measured. Byte rows are identities —
    /// the model's notion of moved bytes against *independently
    /// counted* measurements (the runner's shuffle accounting, the
    /// per-segment histograms) — and must agree exactly. Time rows
    /// compare the simulated makespans against the run's wall clocks
    /// and the simulated CPU terms against the drained span CPU; those
    /// are calibration envelopes, not identities (spans nest, so their
    /// CPU sum over-counts, and wall clocks include scheduling the
    /// model does not see).
    pub fn reconcile(&self, record: &LedgerRecord) -> DriftReport {
        let stats = stats_from_ledger(record);
        let sim = self.simulate(&stats);
        let mut rows = Vec::new();

        rows.push(DriftRow {
            name: "shuffle_bytes",
            unit: "B",
            predicted: stats.map_output_materialized_bytes as f64,
            measured: record.counters.get(Counter::ShuffleBytes) as f64,
        });
        // Wire-compressed runs add a socket-byte identity: the model's
        // logical-minus-saved bytes against the runtime's independent
        // shuffle-vs-saved accounting. Identity runs (saved = 0) skip
        // the row rather than restate shuffle_bytes.
        let wire_saved = record.counters.get(Counter::ShuffleWireBytesSaved);
        if wire_saved > 0 {
            rows.push(DriftRow {
                name: "wire_bytes",
                unit: "B",
                predicted: stats
                    .map_output_materialized_bytes
                    .saturating_sub(stats.shuffle_wire_saved_bytes)
                    as f64,
                measured: record
                    .counters
                    .get(Counter::ShuffleBytes)
                    .saturating_sub(wire_saved) as f64,
            });
        }
        if let Some(h) = record.hist(Metric::SegRawBytes) {
            rows.push(DriftRow {
                name: "raw_bytes",
                unit: "B",
                predicted: stats.map_output_bytes as f64,
                measured: h.sum as f64,
            });
        }
        if let Some(h) = record.hist(Metric::SegMaterializedBytes) {
            rows.push(DriftRow {
                name: "materialized_bytes",
                unit: "B",
                predicted: stats.map_output_materialized_bytes as f64,
                measured: h.sum as f64,
            });
        }

        rows.push(DriftRow {
            name: "map_makespan",
            unit: "s",
            predicted: sim.map_makespan_s,
            measured: record.job.map_wall_nanos as f64 / 1e9,
        });
        rows.push(DriftRow {
            name: "reduce_makespan",
            unit: "s",
            predicted: sim.reduce_makespan_s,
            measured: record.job.reduce_wall_nanos as f64 / 1e9,
        });
        rows.push(DriftRow {
            name: "total",
            unit: "s",
            predicted: sim.total_s,
            measured: (record.job.map_wall_nanos + record.job.reduce_wall_nanos) as f64 / 1e9,
        });
        let p = &sim.phases;
        let measured_cpu = record.phase_cpu_total_nanos() as f64 / 1e9;
        if measured_cpu > 0.0 {
            rows.push(DriftRow {
                name: "pipeline_cpu",
                unit: "s",
                predicted: p.map_cpu_s + p.map_codec_s + p.reduce_codec_s + p.reduce_cpu_s,
                measured: measured_cpu,
            });
        }
        DriftReport {
            label: record.label.clone(),
            rows,
        }
    }
}

/// Makespan of `total_s` seconds of CPU split into `tasks` uniform tasks
/// scheduled in waves over `slots` executors.
fn cpu_makespan(total_s: f64, tasks: usize, slots: usize) -> f64 {
    if tasks == 0 {
        return 0.0;
    }
    let per_task = total_s / tasks as f64;
    per_task * (tasks as f64 / slots.max(1) as f64).ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(materialized: u64, compress_nanos: u64) -> JobStats {
        JobStats {
            num_maps: 100,
            num_reducers: 5,
            input_bytes: 256_000_000,
            map_output_bytes: materialized * 2,
            map_output_materialized_bytes: materialized,
            output_bytes: 10_000_000,
            shuffle_spilled_bytes: 0,
            shuffle_wire_saved_bytes: 0,
            wire_compress_nanos: 0,
            wire_decompress_nanos: 0,
            compress_nanos,
            decompress_nanos: compress_nanos / 3,
            map_fn_nanos: 50_000_000_000,
            reduce_fn_nanos: 20_000_000_000,
            spill_nanos: 10_000_000_000,
            merge_nanos: 5_000_000_000,
            map_wall_nanos: 0,
            reduce_wall_nanos: 0,
        }
    }

    #[test]
    fn spilled_bytes_add_a_disk_term_only_when_present() {
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let base = m.simulate(&stats(1_000_000_000, 0));
        assert_eq!(base.phases.shuffle_spill_disk_s, 0.0);
        let mut with_spill = stats(1_000_000_000, 0);
        with_spill.shuffle_spilled_bytes = 500_000_000;
        let spilled = m.simulate(&with_spill);
        assert!(spilled.phases.shuffle_spill_disk_s > 0.0);
        assert!(spilled.total_s > base.total_s);
        // The spill term is additive: no other phase moves.
        assert_eq!(spilled.phases.shuffle_s, base.phases.shuffle_s);
        assert_eq!(spilled.phases.reduce_disk_s, base.phases.reduce_disk_s);
    }

    #[test]
    fn wire_savings_shrink_the_shuffle_term_and_codec_cpu_pushes_back() {
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let base = m.simulate(&stats(1_000_000_000, 0));
        assert_eq!(base.phases.wire_codec_s, 0.0);

        // Free compression (the lz design point): 60% of the shuffle
        // never hits the socket, every other term unchanged.
        let mut saved = stats(1_000_000_000, 0);
        saved.shuffle_wire_saved_bytes = 600_000_000;
        let compressed = m.simulate(&saved);
        assert!(compressed.phases.shuffle_s < base.phases.shuffle_s);
        assert!((compressed.phases.shuffle_s / base.phases.shuffle_s - 0.4).abs() < 1e-9);
        assert_eq!(compressed.phases.map_write_s, base.phases.map_write_s);
        assert_eq!(compressed.phases.reduce_disk_s, base.phases.reduce_disk_s);
        assert!(compressed.total_s < base.total_s);

        // Costed compression: the codec CPU term is additive and can
        // eat the byte savings — the §III-E trade again, on the wire.
        saved.wire_compress_nanos = 500_000_000_000;
        saved.wire_decompress_nanos = 100_000_000_000;
        let costed = m.simulate(&saved);
        assert!(costed.phases.wire_codec_s > 0.0);
        assert!(costed.total_s > compressed.total_s);

        // Saved bytes can never exceed the materialized bytes; a
        // malformed record saturates instead of wrapping.
        let mut over = stats(1_000_000_000, 0);
        over.shuffle_wire_saved_bytes = u64::MAX;
        assert_eq!(m.simulate(&over).phases.shuffle_s, 0.0);
    }

    #[test]
    fn more_intermediate_bytes_cost_more_time() {
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let small = m.simulate(&stats(1_000_000_000, 0));
        let large = m.simulate(&stats(50_000_000_000, 0));
        assert!(large.total_s > small.total_s);
        assert!(large.phases.shuffle_s > small.phases.shuffle_s);
    }

    #[test]
    fn expensive_codec_can_lose_despite_byte_savings() {
        // The §III-E result in miniature: 4.5x fewer bytes, but codec CPU
        // large enough that total time worsens.
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let baseline = m.simulate(&stats(55_500_000_000, 0));
        let compressed = m.simulate(&stats(12_300_000_000, 2_000_000_000_000));
        assert!(
            compressed.total_s > baseline.total_s,
            "codec CPU should dominate: {} vs {}",
            compressed.total_s,
            baseline.total_s
        );
    }

    #[test]
    fn cheap_byte_reduction_wins() {
        // The §IV-D result in miniature: fewer bytes, negligible CPU.
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let baseline = m.simulate(&stats(55_500_000_000, 0));
        let aggregated = m.simulate(&stats(21_800_000_000, 0));
        assert!(aggregated.total_s < baseline.total_s);
    }

    #[test]
    fn more_map_slots_speed_up_cpu_bound_jobs() {
        let mut spec = ClusterSpec::paper_cluster();
        let st = stats(1_000_000_000, 500_000_000_000);
        let slow = CostModel::new(spec).simulate(&st);
        spec.map_slots = 40;
        let fast = CostModel::new(spec).simulate(&st);
        assert!(fast.map_makespan_s < slow.map_makespan_s);
    }

    #[test]
    fn cpu_scale_amplifies_codec_cost_only() {
        let st = stats(10_000_000_000, 100_000_000_000);
        let base = CostModel::new(ClusterSpec::paper_cluster().with_cpu_scale(1.0)).simulate(&st);
        let scaled =
            CostModel::new(ClusterSpec::paper_cluster().with_cpu_scale(10.0)).simulate(&st);
        assert!((scaled.phases.map_codec_s / base.phases.map_codec_s - 10.0).abs() < 1e-9);
        assert!((scaled.phases.shuffle_s - base.phases.shuffle_s).abs() < 1e-9);
    }

    #[test]
    fn phases_sum_to_total() {
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let r = m.simulate(&stats(5_000_000_000, 1_000_000_000));
        assert!((r.map_makespan_s + r.reduce_makespan_s - r.total_s).abs() < 1e-9);
        assert!(r.total_minutes() > 0.0);
    }

    fn synthetic_record() -> LedgerRecord {
        use scihadoop_mapreduce::obs::{LedgerConfig, LedgerJob, PhaseRollup, NUM_PHASES};
        use scihadoop_mapreduce::Counters;
        let counters = Counters::new();
        counters.add(Counter::MapOutputBytes, 2_000_000);
        counters.add(Counter::MapOutputMaterializedBytes, 1_000_000);
        counters.add(Counter::ShuffleBytes, 1_000_000);
        counters.add(Counter::MapFnNanos, 50_000_000);
        counters.add(Counter::SpillNanos, 10_000_000);
        counters.add(Counter::ReduceFnNanos, 20_000_000);
        counters.add(Counter::MergeNanos, 5_000_000);
        let mut phases = [PhaseRollup::default(); NUM_PHASES];
        phases[0] = PhaseRollup {
            count: 4,
            wall_ns: 120_000_000,
            cpu_ns: 100_000_000,
        };
        LedgerRecord {
            label: "synthetic".into(),
            clock: "thread_cpu".into(),
            host_cpus: 4,
            config: LedgerConfig {
                codec: "identity".into(),
                block_kib: 0,
                num_reducers: 3,
                map_slots: 2,
                reduce_slots: 2,
                spill_buffer_bytes: 1 << 20,
                framing: "sequence_file".into(),
                ifile_version: 2,
                combiner: false,
                task_retries: 0,
                fault_seed: None,
            },
            job: LedgerJob {
                num_maps: 4,
                num_reducers: 3,
                input_bytes: 4_000_000,
                map_wall_nanos: 80_000_000,
                reduce_wall_nanos: 40_000_000,
            },
            counters: counters.snapshot(),
            phases,
            hists: Vec::new(),
        }
    }

    #[test]
    fn local_host_measures_net_bandwidth_from_distributed_records() {
        let record = synthetic_record();
        // In-process record: no transfer time → unbounded network.
        assert_eq!(ClusterSpec::local_host(&record).net_mbps, 1e9);
        // Distributed record: 1 MB shuffled in 10 ms of socket writes
        // is 100 MB/s.
        let mut dist = record;
        let counters = scihadoop_mapreduce::Counters::new();
        for c in scihadoop_mapreduce::ALL_COUNTERS {
            counters.add(c, dist.counters.get(c));
        }
        counters.add(Counter::ShuffleTransferNanos, 10_000_000);
        dist.counters = counters.snapshot();
        let spec = ClusterSpec::local_host(&dist);
        assert!((spec.net_mbps - 100.0).abs() < 1e-9, "{}", spec.net_mbps);
    }

    #[test]
    fn ledger_record_rebuilds_job_stats() {
        let record = synthetic_record();
        let stats = stats_from_ledger(&record);
        assert_eq!(stats.num_maps, 4);
        assert_eq!(stats.num_reducers, 3);
        assert_eq!(stats.input_bytes, 4_000_000);
        assert_eq!(stats.map_output_bytes, 2_000_000);
        assert_eq!(stats.map_output_materialized_bytes, 1_000_000);
        assert_eq!(stats.map_wall_nanos, 80_000_000);
    }

    #[test]
    fn reconcile_byte_identities_are_exact() {
        let record = synthetic_record();
        let model = CostModel::new(ClusterSpec::local_host(&record));
        let report = model.reconcile(&record);
        assert_eq!(report.label, "synthetic");
        let shuffle = report.row("shuffle_bytes").expect("shuffle row");
        assert_eq!(shuffle.predicted, shuffle.measured);
        assert_eq!(shuffle.error_pct(), 0.0);
        // No histograms in the synthetic record → no hist-derived rows;
        // no wire savings → no wire_bytes row.
        assert!(report.row("raw_bytes").is_none());
        assert!(report.row("materialized_bytes").is_none());
        assert!(report.row("wire_bytes").is_none());
    }

    #[test]
    fn reconcile_adds_an_exact_wire_byte_row_for_compressed_runs() {
        let mut record = synthetic_record();
        let counters = scihadoop_mapreduce::Counters::new();
        for c in scihadoop_mapreduce::ALL_COUNTERS {
            counters.add(c, record.counters.get(c));
        }
        counters.add(Counter::ShuffleWireBytesSaved, 400_000);
        counters.add(Counter::LzCompressNanos, 1_000_000);
        counters.add(Counter::LzDecompressNanos, 500_000);
        record.counters = counters.snapshot();
        let model = CostModel::new(ClusterSpec::local_host(&record));
        let report = model.reconcile(&record);
        let wire = report.row("wire_bytes").expect("wire row");
        assert_eq!(wire.predicted, 600_000.0);
        assert_eq!(wire.predicted, wire.measured);
        assert_eq!(wire.error_pct(), 0.0);
    }

    #[test]
    fn reconcile_reports_time_rows_with_signed_error() {
        let record = synthetic_record();
        let model = CostModel::new(ClusterSpec::local_host(&record));
        let report = model.reconcile(&record);
        for name in ["map_makespan", "reduce_makespan", "total", "pipeline_cpu"] {
            let row = report.row(name).unwrap_or_else(|| panic!("{name} row"));
            assert_eq!(row.unit, "s");
            assert!(row.predicted > 0.0, "{name} predicted");
            assert!(row.measured > 0.0, "{name} measured");
        }
        // Unit CPU scales and infinite bandwidth: the model can only
        // charge the recorded CPU, so predictions stay below the walls.
        let total = report.row("total").expect("total");
        assert!(total.predicted <= total.measured * 1.001);
    }

    #[test]
    fn local_host_spec_mirrors_the_record() {
        let record = synthetic_record();
        let spec = ClusterSpec::local_host(&record);
        assert_eq!(spec.map_slots, 2);
        assert_eq!(spec.nodes, 2);
        assert_eq!(spec.reducers, 3);
        assert_eq!(spec.engine_cpu_scale, 1.0);
        assert_eq!(spec.codec_cpu_scale, 1.0);
    }

    #[test]
    fn zero_stats_simulate_to_zero() {
        let m = CostModel::new(ClusterSpec::paper_cluster());
        let z = JobStats {
            num_maps: 0,
            num_reducers: 0,
            input_bytes: 0,
            map_output_bytes: 0,
            map_output_materialized_bytes: 0,
            output_bytes: 0,
            shuffle_spilled_bytes: 0,
            shuffle_wire_saved_bytes: 0,
            wire_compress_nanos: 0,
            wire_decompress_nanos: 0,
            compress_nanos: 0,
            decompress_nanos: 0,
            map_fn_nanos: 0,
            reduce_fn_nanos: 0,
            spill_nanos: 0,
            merge_nanos: 0,
            map_wall_nanos: 0,
            reduce_wall_nanos: 0,
        };
        let r = m.simulate(&z);
        assert_eq!(r.total_s, 0.0);
    }
}

//! Property tests for the compression substrate.

use proptest::prelude::*;
use scihadoop_compress::{lz, BzipCodec, Codec, DeflateCodec, IdentityCodec, LzCodec, RleCodec};

fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(IdentityCodec),
        Box::new(RleCodec),
        Box::new(DeflateCodec::new()),
        Box::new(DeflateCodec::with_chain(4)),
        Box::new(BzipCodec::with_level(1)),
        Box::new(LzCodec),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec round-trips arbitrary bytes.
    #[test]
    fn all_codecs_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        for codec in all_codecs() {
            let z = codec.compress(&data);
            prop_assert_eq!(
                codec.decompress(&z).unwrap(),
                data.clone(),
                "codec {}", codec.name()
            );
        }
    }

    /// Structured (repetitive) data must actually compress.
    #[test]
    fn repetitive_data_compresses(
        unit in proptest::collection::vec(any::<u8>(), 4..32),
        reps in 64usize..256,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        for codec in [
            Box::new(DeflateCodec::new()) as Box<dyn Codec>,
            Box::new(BzipCodec::with_level(1)),
            Box::new(LzCodec),
        ] {
            let z = codec.compress(&data);
            prop_assert!(
                z.len() < data.len() / 2,
                "{} produced {} from {}",
                codec.name(), z.len(), data.len()
            );
            prop_assert_eq!(codec.decompress(&z).unwrap(), data.clone());
        }
    }

    /// Truncating a compressed stream anywhere must error, never panic or
    /// return wrong data silently (except trivially-empty prefix cases).
    #[test]
    fn truncation_never_panics(
        data in proptest::collection::vec(any::<u8>(), 32..512),
        cut_frac in 0.0f64..0.99,
    ) {
        for codec in all_codecs() {
            if codec.name() == "identity" {
                continue; // identity is documented as integrity-free
            }
            let z = codec.compress(&data);
            let cut = ((z.len() as f64) * cut_frac) as usize;
            if let Ok(out) = codec.decompress(&z[..cut]) {
                prop_assert_eq!(out, data.clone(), "codec {}", codec.name());
            }
        }
    }

    /// Multi-block bzip inputs (spanning several 100 kB blocks) roundtrip.
    #[test]
    fn bzip_multi_block_roundtrip(seed in any::<u64>()) {
        let mut state = seed | 1;
        let data: Vec<u8> = (0..250_000)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i % 5 == 0 { (state >> 33) as u8 } else { b'#' }
            })
            .collect();
        let c = BzipCodec::with_level(1);
        let z = c.compress(&data);
        prop_assert_eq!(c.decompress(&z).unwrap(), data);
    }

    /// Compression is deterministic (same input → same bytes), which the
    /// engine's byte accounting relies on.
    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for codec in all_codecs() {
            prop_assert_eq!(codec.compress(&data), codec.compress(&data));
        }
    }

    /// The lz frame's payload CRC catches every single-bit flip in any
    /// frame (stored or tokenized) before decoding returns bytes — the
    /// property the shuffle wire and spill path rely on. A flip that
    /// slips past would have to leave the CRC, the structural checks,
    /// *and* the decoded output all consistent; none may.
    #[test]
    fn lz_bit_flips_never_return_wrong_data(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..96,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let z = lz::compress(&data);
        let idx = ((z.len() as f64 - 1.0) * flip_frac) as usize;
        let mut bad = z.clone();
        bad[idx] ^= 1 << bit;
        if let Ok(out) = lz::decompress(&bad) {
            prop_assert_eq!(out, data, "flip at {}/{} went undetected", idx, z.len());
        }
    }

    /// Truncating an lz frame anywhere errors (the CRC or a structural
    /// check fires); no truncation panics or returns bytes.
    #[test]
    fn lz_truncation_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        cut_frac in 0.0f64..0.999,
    ) {
        let z = lz::compress(&data);
        let cut = ((z.len() as f64) * cut_frac) as usize;
        prop_assert!(lz::decompress(&z[..cut]).is_err(), "cut at {}/{}", cut, z.len());
    }

    /// Feeding arbitrary bytes straight into the lz decoder never
    /// panics: it either errors or (for the rare accidentally-valid
    /// frame) returns without over-allocating.
    #[test]
    fn lz_decoder_survives_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lz::decompress(&data);
    }

    /// The stored-mode escape bounds every frame: output never exceeds
    /// input + HEADER_LEN, even on incompressible input.
    #[test]
    fn lz_frames_are_size_bounded(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let z = lz::compress(&data);
        prop_assert!(z.len() <= data.len() + lz::HEADER_LEN);
    }
}

//! Property tests for the compression substrate.

use proptest::prelude::*;
use scihadoop_compress::{BzipCodec, Codec, DeflateCodec, IdentityCodec, RleCodec};

fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(IdentityCodec),
        Box::new(RleCodec),
        Box::new(DeflateCodec::new()),
        Box::new(DeflateCodec::with_chain(4)),
        Box::new(BzipCodec::with_level(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec round-trips arbitrary bytes.
    #[test]
    fn all_codecs_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        for codec in all_codecs() {
            let z = codec.compress(&data);
            prop_assert_eq!(
                codec.decompress(&z).unwrap(),
                data.clone(),
                "codec {}", codec.name()
            );
        }
    }

    /// Structured (repetitive) data must actually compress.
    #[test]
    fn repetitive_data_compresses(
        unit in proptest::collection::vec(any::<u8>(), 4..32),
        reps in 64usize..256,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        for codec in [
            Box::new(DeflateCodec::new()) as Box<dyn Codec>,
            Box::new(BzipCodec::with_level(1)),
        ] {
            let z = codec.compress(&data);
            prop_assert!(
                z.len() < data.len() / 2,
                "{} produced {} from {}",
                codec.name(), z.len(), data.len()
            );
            prop_assert_eq!(codec.decompress(&z).unwrap(), data.clone());
        }
    }

    /// Truncating a compressed stream anywhere must error, never panic or
    /// return wrong data silently (except trivially-empty prefix cases).
    #[test]
    fn truncation_never_panics(
        data in proptest::collection::vec(any::<u8>(), 32..512),
        cut_frac in 0.0f64..0.99,
    ) {
        for codec in all_codecs() {
            if codec.name() == "identity" {
                continue; // identity is documented as integrity-free
            }
            let z = codec.compress(&data);
            let cut = ((z.len() as f64) * cut_frac) as usize;
            if let Ok(out) = codec.decompress(&z[..cut]) {
                prop_assert_eq!(out, data.clone(), "codec {}", codec.name());
            }
        }
    }

    /// Multi-block bzip inputs (spanning several 100 kB blocks) roundtrip.
    #[test]
    fn bzip_multi_block_roundtrip(seed in any::<u64>()) {
        let mut state = seed | 1;
        let data: Vec<u8> = (0..250_000)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i % 5 == 0 { (state >> 33) as u8 } else { b'#' }
            })
            .collect();
        let c = BzipCodec::with_level(1);
        let z = c.compress(&data);
        prop_assert_eq!(c.decompress(&z).unwrap(), data);
    }

    /// Compression is deterministic (same input → same bytes), which the
    /// engine's byte accounting relies on.
    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for codec in all_codecs() {
            prop_assert_eq!(codec.compress(&data), codec.compress(&data));
        }
    }
}

//! Property tests for the parallel block codec: roundtrips over every
//! inner codec × block size (sub-block, exactly aligned, and empty
//! inputs all fall out of the generators), plus frame-corruption
//! properties.

use proptest::prelude::*;
use scihadoop_compress::{
    BlockCodec, BzipCodec, Codec, CodecHandle, CodecPool, DeflateCodec, IdentityCodec, LzCodec,
    RleCodec,
};
use std::sync::Arc;

fn inner_codecs() -> Vec<CodecHandle> {
    vec![
        Arc::new(IdentityCodec),
        Arc::new(RleCodec),
        Arc::new(DeflateCodec::new()),
        Arc::new(BzipCodec::with_level(1)),
        Arc::new(LzCodec),
    ]
}

/// Fixed frame prefix: magic + block_size + orig_len + num_blocks.
const HEADER_LEN: usize = 20;
/// Per-block table entry: compressed length + CRC-32C.
const ENTRY_LEN: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every inner codec roundtrips under the block frame for any block
    /// size, including inputs smaller than one block, exactly
    /// block-aligned, and empty.
    #[test]
    fn block_codec_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..6000),
        block_size in 1usize..2048,
        workers in 0usize..5,
    ) {
        let pool = CodecPool::new(workers);
        for inner in inner_codecs() {
            let c = BlockCodec::with_pool(inner, block_size, pool.clone());
            let z = c.compress(&data);
            prop_assert_eq!(
                c.decompress(&z).unwrap(),
                data.clone(),
                "codec {} block_size {}", c.name(), block_size
            );
        }
    }

    /// Exactly block-aligned inputs (the boundary the offset table walk
    /// is most sensitive to) roundtrip for every inner codec.
    #[test]
    fn aligned_inputs_roundtrip(
        block_size in 1usize..512,
        blocks in 0usize..6,
        fill in any::<u8>(),
    ) {
        let data = vec![fill; block_size * blocks];
        for inner in inner_codecs() {
            let c = BlockCodec::with_block_size(inner, block_size);
            let z = c.compress(&data);
            prop_assert_eq!(c.decompress(&z).unwrap(), data.clone(), "codec {}", c.name());
        }
    }

    /// The frame is deterministic regardless of pool size, which the
    /// engine's byte accounting relies on.
    #[test]
    fn frame_is_worker_count_independent(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        block_size in 1usize..1024,
    ) {
        let serial = BlockCodec::with_pool(
            Arc::new(DeflateCodec::new()), block_size, CodecPool::new(0));
        let parallel = BlockCodec::with_pool(
            Arc::new(DeflateCodec::new()), block_size, CodecPool::new(6));
        prop_assert_eq!(serial.compress(&data), parallel.compress(&data));
    }

    /// Truncating a block frame anywhere — inside the header, the offset
    /// table, or the body — errors, never panics, and never silently
    /// returns wrong data.
    #[test]
    fn truncation_always_detected(
        data in proptest::collection::vec(any::<u8>(), 64..2048),
        block_size in 16usize..256,
        cut_frac in 0.0f64..0.999,
    ) {
        let c = BlockCodec::with_block_size(Arc::new(DeflateCodec::new()), block_size);
        let z = c.compress(&data);
        let cut = ((z.len() as f64) * cut_frac) as usize;
        prop_assert!(c.decompress(&z[..cut]).is_err(), "cut at {cut}/{}", z.len());
    }

    /// `block-lz` — the composition the shuffle's spill/wire path uses
    /// through the factory — detects truncation and bit flips through
    /// the block frame's per-block CRC on top of lz's own payload CRC.
    #[test]
    fn block_lz_truncation_and_flips_detected(
        data in proptest::collection::vec(any::<u8>(), 64..2048),
        block_size in 16usize..256,
        frac in 0.0f64..0.999,
        bit in 0u8..8,
    ) {
        let c = BlockCodec::with_block_size(Arc::new(LzCodec), block_size);
        let z = c.compress(&data);
        let cut = ((z.len() as f64) * frac) as usize;
        prop_assert!(c.decompress(&z[..cut]).is_err(), "cut at {}/{}", cut, z.len());
        let idx = HEADER_LEN + (((z.len() - HEADER_LEN) as f64 - 1.0) * frac) as usize;
        let mut bad = z.clone();
        bad[idx] ^= 1 << bit;
        prop_assert!(c.decompress(&bad).is_err(), "flip at {}/{}", idx, z.len());
    }

    /// Flipping any single bit in the table or body is caught by the
    /// per-block CRC (or a structural check) before bytes propagate.
    #[test]
    fn single_bit_flips_detected(
        data in proptest::collection::vec(any::<u8>(), 256..2048),
        block_size in 32usize..256,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // Identity inner: the frame's own CRC is the only line of
        // defense, so this isolates exactly what the block layer checks.
        let c = BlockCodec::with_block_size(Arc::new(IdentityCodec), block_size);
        let z = c.compress(&data);
        let num_blocks = data.len().div_ceil(block_size);
        let table_and_body = z.len() - HEADER_LEN;
        prop_assume!(table_and_body > 0);
        let idx = HEADER_LEN + ((table_and_body as f64 - 1.0) * flip_frac) as usize;
        let mut bad = z.clone();
        bad[idx] ^= 1 << bit;
        match c.decompress(&bad) {
            Err(_) => {}
            Ok(out) => prop_assert!(
                false,
                "flip at {idx} (table ends {}) returned {} bytes",
                HEADER_LEN + num_blocks * ENTRY_LEN,
                out.len()
            ),
        }
    }
}

//! LZ77 match finding with hash chains (the zlib approach).

/// Sliding-window size. DEFLATE-compatible 32 KiB.
pub const WINDOW_SIZE: usize = 1 << 15;
/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (DEFLATE's 258).
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[cand..]` and `data[i..]`, capped
/// at `max_len`. Compares eight bytes per step (the first differing byte
/// falls out of the XOR's trailing zeros), then finishes byte-wise — the
/// result is exactly what the scalar loop would produce, so the token
/// stream (and therefore compressed size) is unchanged.
#[inline]
fn match_len(data: &[u8], cand: usize, i: usize, max_len: usize) -> usize {
    debug_assert!(cand < i);
    let mut l = 0usize;
    // `cand + l + 8 <= cand + max_len <= cand + (data.len() - i) <=
    // data.len()` because `cand < i`, so both slices stay in bounds.
    while l + 8 <= max_len {
        let a = u64::from_le_bytes(data[cand + l..cand + l + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[i + l..i + l + 8].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max_len && data[cand + l] == data[i + l] {
        l += 1;
    }
    l
}

/// Tokenize `data` greedily with lazy matching (one-step lookahead, like
/// zlib's default strategy).
pub fn tokenize(data: &[u8], max_chain: usize) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h; prev[i & mask] = previous
    // position in the chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];
    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i % WINDOW_SIZE] = head[h];
            head[h] = i;
        }
    };
    let find = |head: &[usize], prev: &[usize], data: &[u8], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = MAX_MATCH.min(data.len() - i);
        let h = hash3(data, i);
        let mut cand = head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chains = max_chain;
        while cand != usize::MAX && chains > 0 {
            let dist = i - cand;
            if dist > WINDOW_SIZE {
                break;
            }
            // Quick reject on the byte past the current best.
            if cand + best_len < data.len()
                && i + best_len < data.len()
                && data[cand + best_len] == data[i + best_len]
            {
                let l = match_len(data, cand, i, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= max_len {
                        break;
                    }
                }
            }
            cand = prev[cand % WINDOW_SIZE];
            chains -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut i = 0usize;
    let mut pending: Option<(usize, usize)> = None; // match found at i-1
    while i < n {
        let here = find(&head, &prev, data, i);
        match (pending.take(), here) {
            (Some((plen, _pdist)), Some((len, _))) if len > plen => {
                // Lazy: the match starting here is better; emit the
                // previous position as a literal and reconsider.
                tokens.push(Token::Literal(data[i - 1]));
                pending = here;
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
            (Some((plen, pdist)), _) => {
                // Previous match wins; it started at i-1.
                tokens.push(Token::Match {
                    len: plen as u16,
                    dist: pdist as u16,
                });
                // Insert hash entries for the matched region (from i,
                // position i-1 was already inserted).
                let end = (i - 1 + plen).min(n);
                while i < end {
                    insert(&mut head, &mut prev, data, i);
                    i += 1;
                }
            }
            (None, Some((len, dist))) => {
                if len <= 4 && i + 1 < n {
                    // Defer: maybe a longer match starts at i+1.
                    pending = Some((len, dist));
                    insert(&mut head, &mut prev, data, i);
                    i += 1;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    let end = (i + len).min(n);
                    while i < end {
                        insert(&mut head, &mut prev, data, i);
                        i += 1;
                    }
                }
            }
            (None, None) => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        tokens.push(Token::Match {
            len: plen as u16,
            dist: pdist as u16,
        });
    }
    tokens
}

/// Expand tokens back into bytes. Used by tests and the decompressor's
/// reference implementation.
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data, 64);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_data_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, 64);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match in {tokens:?}"
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn overlapping_match_is_handled() {
        // "aaaa..." compresses as literal 'a' + overlapping match dist=1.
        let data = vec![b'a'; 300];
        let tokens = tokenize(&data, 64);
        assert_eq!(detokenize(&tokens), data);
        assert!(tokens.len() < 10, "run should compress: {}", tokens.len());
    }

    #[test]
    fn random_data_roundtrips() {
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn grid_key_stream_compresses_well() {
        // The paper's workload: walking a grid yields near-identical
        // 12-byte records; LZ77 should find long matches.
        let mut data = Vec::new();
        for x in 0..20i32 {
            for y in 0..20i32 {
                for z in 0..20i32 {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        let tokens = tokenize(&data, 64);
        assert_eq!(detokenize(&tokens), data);
        assert!(
            tokens.len() < data.len() / 4,
            "grid stream should tokenize to <25%: {} tokens for {} bytes",
            tokens.len(),
            data.len()
        );
    }

    #[test]
    fn wide_match_len_agrees_with_scalar() {
        let mut state = 0xDEADBEEFu64;
        let mut data = vec![0u8; 4096];
        for b in data.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = if (state >> 60) < 12 {
                7
            } else {
                (state >> 33) as u8
            };
        }
        // Plant shared prefixes at assorted alignments and mismatch
        // offsets (including overlapping candidates, dist < 8).
        for (cand, i, planted) in [(0, 100, 293), (3, 1000, 40), (17, 2048, 258), (5, 13, 9)] {
            for k in 0..planted {
                data[i + k] = data[cand + k];
            }
            data[i + planted] = data[cand + planted].wrapping_add(1);
            let max_len = MAX_MATCH.min(data.len() - i);
            let mut scalar = 0;
            while scalar < max_len && data[cand + scalar] == data[i + scalar] {
                scalar += 1;
            }
            assert_eq!(match_len(&data, cand, i, max_len), scalar);
            assert_eq!(scalar, planted.min(max_len));
        }
    }

    #[test]
    fn match_lengths_and_distances_stay_in_bounds() {
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.extend_from_slice(&(i % 977).to_be_bytes());
        }
        for t in tokenize(&data, 32) {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                assert!(dist as usize >= 1 && dist as usize <= WINDOW_SIZE);
            }
        }
    }
}

//! Generic compression substrate, built from scratch.
//!
//! The paper's byte-level approach (§III) layers a stride-predictive
//! transform *on top of* generic compressors — gzip and bzip2 — via
//! Hadoop's pluggable codec interface. No third-party compression crates
//! are in this project's allowed dependency set, so this crate implements
//! the same two algorithm families from first principles:
//!
//! * [`DeflateCodec`] — LZ77 (hash-chain matching, 32 KiB window) +
//!   canonical Huffman coding, with the DEFLATE length/distance alphabets.
//!   Stands in for gzip/zlib.
//! * [`BzipCodec`] — run-length pre-pass + Burrows–Wheeler transform +
//!   move-to-front + RUNA/RUNB zero-run coding + canonical Huffman, in
//!   100 KiB–900 KiB blocks. Stands in for bzip2.
//!
//! Both formats carry a CRC-32 so corruption is detected, not propagated
//! (the failure-injection tests rely on this). [`Codec`] is the pluggable
//! interface the MapReduce engine and the paper's transform codec build
//! on, and [`BlockCodec`] wraps any of them with pbzip2/pigz-style
//! fixed-size blocks compressed in parallel on a shared [`CodecPool`].

pub mod bitio;
pub mod block;
pub mod bwt;
pub mod bzip;
pub mod checksum;
pub mod codec;
pub mod deflate;
pub mod error;
pub mod huffman;
pub mod lz;
pub mod lz77;
pub mod mtf;
pub mod rle;

pub use block::{BlockCodec, CodecPool, DEFAULT_BLOCK_SIZE};
pub use bzip::BzipCodec;
pub use checksum::{crc32, crc32c, Crc32, Crc32c};
pub use codec::{Codec, CodecHandle, IdentityCodec, RleCodec};
pub use deflate::DeflateCodec;
pub use error::CompressError;
pub use lz::LzCodec;

//! CRC-32 checksums, table-driven, slice-by-16 — plus a
//! hardware-accelerated CRC-32C for the shuffle's segment trailers.
//!
//! Both container formats store a CRC of the original data so that a
//! corrupted intermediate file fails loudly at the reducer instead of
//! silently producing wrong query answers. Two polynomials live here:
//!
//! * [`crc32`] — the IEEE 802.3 polynomial (0xEDB88320), required by
//!   the gzip/bzip2-compatible stream formats and the grid I/O header.
//! * [`crc32c`] — the Castagnoli polynomial (0x82F63B78), used for the
//!   IFile segment trailer. The shuffle verifies a trailer per fetched
//!   segment on the merge hot path, so throughput matters: on x86-64
//!   with SSE 4.2 this runs three interleaved streams of the `crc32q`
//!   instruction and recombines them with compile-time GF(2) shift
//!   tables (Adler's scheme); elsewhere it falls back to the same
//!   slice-by-16 kernel the IEEE variant uses, which folds sixteen
//!   bytes per step through sixteen precomputed tables instead of one
//!   byte through one table.
//!
//! Either way a given input has exactly one CRC-32C value — the
//! hardware path is an implementation detail, not a format change.

/// IEEE CRC-32 with the standard reflected polynomial 0xEDB88320.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), hardware
/// accelerated where the CPU provides it.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

/// Incremental IEEE CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// Incremental CRC-32C state.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

const IEEE: u32 = 0xEDB8_8320;
const CASTAGNOLI: u32 = 0x82F6_3B78;

/// `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero bytes;
/// XORing the sixteen per-lane lookups advances the CRC sixteen bytes.
static TABLES: [[u32; 256]; 16] = build_tables(IEEE);
static TABLES_C: [[u32; 256]; 16] = build_tables(CASTAGNOLI);

const fn build_tables(poly: u32) -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Slice-by-16 kernel shared by both polynomials.
fn update_sliced(tables: &[[u32; 256]; 16], state: u32, data: &[u8]) -> u32 {
    let mut s = state;
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ s;
        let b = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        let c = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
        let d = u32::from_le_bytes(chunk[12..16].try_into().expect("4 bytes"));
        s = tables[15][(a & 0xFF) as usize]
            ^ tables[14][((a >> 8) & 0xFF) as usize]
            ^ tables[13][((a >> 16) & 0xFF) as usize]
            ^ tables[12][(a >> 24) as usize]
            ^ tables[11][(b & 0xFF) as usize]
            ^ tables[10][((b >> 8) & 0xFF) as usize]
            ^ tables[9][((b >> 16) & 0xFF) as usize]
            ^ tables[8][(b >> 24) as usize]
            ^ tables[7][(c & 0xFF) as usize]
            ^ tables[6][((c >> 8) & 0xFF) as usize]
            ^ tables[5][((c >> 16) & 0xFF) as usize]
            ^ tables[4][(c >> 24) as usize]
            ^ tables[3][(d & 0xFF) as usize]
            ^ tables[2][((d >> 8) & 0xFF) as usize]
            ^ tables[1][((d >> 16) & 0xFF) as usize]
            ^ tables[0][(d >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        s = tables[0][((s ^ byte as u32) & 0xFF) as usize] ^ (s >> 8);
    }
    s
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_sliced(&TABLES, self.state, data);
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32c { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the sse4.2 requirement was just checked.
            self.state = unsafe { hw::update(self.state, data) };
            return;
        }
        self.state = update_sliced(&TABLES_C, self.state, data);
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

// ---------------------------------------------------------------------
// GF(2) shift operators: the CRC of `data ++ [0u8; n]` is a linear
// function of the CRC of `data`, so appending n zero bytes is a 32×32
// bit-matrix product. The hardware path runs three independent streams
// and needs "shift by one stream's length" to stitch them back
// together; the matrices (and the 4×256 lookup tables that apply them a
// byte at a time) are computed at compile time.
// ---------------------------------------------------------------------

/// Apply a GF(2) operator (`mat[i]` = image of bit `i`) to a state.
const fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Operator composition `a ∘ b` (apply `b`, then `a`).
const fn gf2_compose(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        out[i] = gf2_times(a, b[i]);
        i += 1;
    }
    out
}

/// The operator for appending `nbytes` zero bytes to a reflected CRC.
const fn zeros_op(poly: u32, nbytes: usize) -> [u32; 32] {
    // One zero bit: s' = (s >> 1) ^ (poly if s & 1).
    let mut bit_op = [0u32; 32];
    bit_op[0] = poly;
    let mut i = 1;
    while i < 32 {
        bit_op[i] = 1 << (i - 1);
        i += 1;
    }
    // One zero byte = bit operator squared three times.
    let mut byte_op = bit_op;
    let mut s = 0;
    while s < 3 {
        byte_op = gf2_compose(&byte_op, &byte_op);
        s += 1;
    }
    // byte_op^nbytes by binary exponentiation.
    let mut result = [0u32; 32]; // identity
    let mut i = 0;
    while i < 32 {
        result[i] = 1 << i;
        i += 1;
    }
    let mut base = byte_op;
    let mut n = nbytes;
    while n > 0 {
        if n & 1 != 0 {
            result = gf2_compose(&base, &result);
        }
        base = gf2_compose(&base, &base);
        n >>= 1;
    }
    result
}

/// 4×256 tables applying a zero-shift operator one state byte at a time.
const fn shift_tables(poly: u32, nbytes: usize) -> [[u32; 256]; 4] {
    let op = zeros_op(poly, nbytes);
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            t[k][b] = gf2_times(&op, (b as u32) << (8 * k));
            b += 1;
        }
        k += 1;
    }
    t
}

#[cfg(target_arch = "x86_64")]
mod hw {
    use super::{shift_tables, CASTAGNOLI};

    /// Bytes per interleaved stream in the long and short block kernels.
    const LONG: usize = 8192;
    const SHORT: usize = 256;

    static SHIFT_LONG: [[u32; 256]; 4] = shift_tables(CASTAGNOLI, LONG);
    static SHIFT_SHORT: [[u32; 256]; 4] = shift_tables(CASTAGNOLI, SHORT);

    /// Advance `crc` past one stream's worth of zero bytes.
    fn shift(t: &[[u32; 256]; 4], crc: u32) -> u32 {
        t[0][(crc & 0xFF) as usize]
            ^ t[1][((crc >> 8) & 0xFF) as usize]
            ^ t[2][((crc >> 16) & 0xFF) as usize]
            ^ t[3][(crc >> 24) as usize]
    }

    /// Three `crc32q` streams + GF(2) recombination.
    ///
    /// # Safety
    /// The caller must have verified SSE 4.2 support.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn update(state: u32, mut data: &[u8]) -> u32 {
        use core::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
        let word = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8 bytes"));
        let mut crc = state;
        for (block_len, tables) in [(LONG, &SHIFT_LONG), (SHORT, &SHIFT_SHORT)] {
            while data.len() >= 3 * block_len {
                let (a, rest) = data.split_at(block_len);
                let (b, rest) = rest.split_at(block_len);
                let (c, rest) = rest.split_at(block_len);
                let mut c0 = crc as u64;
                let mut c1 = 0u64;
                let mut c2 = 0u64;
                for ((wa, wb), wc) in a
                    .chunks_exact(8)
                    .zip(b.chunks_exact(8))
                    .zip(c.chunks_exact(8))
                {
                    c0 = _mm_crc32_u64(c0, word(wa));
                    c1 = _mm_crc32_u64(c1, word(wb));
                    c2 = _mm_crc32_u64(c2, word(wc));
                }
                crc = shift(tables, c0 as u32) ^ c1 as u32;
                crc = shift(tables, crc) ^ c2 as u32;
                data = rest;
            }
        }
        let mut c64 = crc as u64;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            c64 = _mm_crc32_u64(c64, word(chunk));
        }
        crc = c64 as u32;
        for &byte in chunks.remainder() {
            crc = _mm_crc32_u8(crc, byte);
        }
        crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for IEEE CRC-32.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello, scihadoop world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sliced_kernel_matches_bytewise_reference_at_every_length() {
        // Cross-check the slice-by-16 fast path (and every remainder
        // length around its 16-byte boundary) against the one-table
        // byte-at-a-time recurrence, for both polynomials.
        let bytewise = |tables: &[[u32; 256]; 16], data: &[u8]| -> u32 {
            let mut s = 0xFFFF_FFFFu32;
            for &b in data {
                s = tables[0][((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
            }
            s ^ 0xFFFF_FFFF
        };
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                bytewise(&TABLES, &data[..len]),
                "len {len}"
            );
            let sliced = update_sliced(&TABLES_C, 0xFFFF_FFFF, &data[..len]) ^ 0xFFFF_FFFF;
            assert_eq!(sliced, bytewise(&TABLES_C, &data[..len]), "c len {len}");
        }
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_hardware_and_software_paths_agree() {
        // Exercise every kernel regime: sub-word tails, single-stream
        // words, the 3×256 short blocks, and the 3×8192 long blocks with
        // their GF(2) recombination shifts.
        let data: Vec<u8> = (0..40_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [
            0, 1, 7, 8, 9, 255, 256, 767, 768, 769, 24_575, 24_576, 40_000,
        ] {
            let sw = update_sliced(&TABLES_C, 0xFFFF_FFFF, &data[..len]) ^ 0xFFFF_FFFF;
            assert_eq!(crc32c(&data[..len]), sw, "len {len}");
        }
    }

    #[test]
    fn crc32c_incremental_equals_oneshot_across_block_boundaries() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let oneshot = crc32c(&data);
        for split in [1usize, 255, 4096, 24_576, 29_999] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), oneshot, "split {split}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"a"), crc32(b"b"));
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(&[0]), crc32c(&[0, 0]));
    }
}

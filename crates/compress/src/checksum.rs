//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Both container formats store a CRC of the original data so that a
//! corrupted intermediate file fails loudly at the reducer instead of
//! silently producing wrong query answers.

/// IEEE CRC-32 with the standard reflected polynomial 0xEDB88320.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for IEEE CRC-32.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello, scihadoop world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"a"), crc32(b"b"));
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
    }
}

//! Error type for (de)compression.

use std::fmt;

/// Errors produced while decompressing (compression itself is total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Stream does not start with the expected magic bytes.
    BadMagic { expected: &'static str },
    /// Stream ended before the declared payload did.
    Truncated(String),
    /// A structural invariant of the format was violated.
    Corrupt(String),
    /// CRC-32 of the decompressed output does not match the stored value.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// A Huffman code table could not be reconstructed.
    BadHuffmanTable(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::BadMagic { expected } => {
                write!(f, "bad magic: expected {expected}")
            }
            CompressError::Truncated(what) => write!(f, "truncated stream: {what}"),
            CompressError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CompressError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CompressError::BadHuffmanTable(what) => write!(f, "bad huffman table: {what}"),
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_details() {
        let e = CompressError::ChecksumMismatch {
            stored: 0xDEADBEEF,
            computed: 1,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(CompressError::BadMagic { expected: "SDZ1" }
            .to_string()
            .contains("SDZ1"));
        assert!(CompressError::Truncated("header".into())
            .to_string()
            .contains("header"));
    }
}

//! The pluggable codec interface (Hadoop's `CompressionCodec` analogue)
//! and two trivial codecs.

use crate::error::CompressError;
use std::sync::Arc;

/// A whole-buffer compression codec.
///
/// The MapReduce engine applies a codec to every intermediate-data segment
/// it materializes, exactly where Hadoop's pluggable compression sits —
/// the hook the paper's §III approach uses ("our first approach was to
/// take advantage of Hadoop's pluggable compression and write a custom
/// compression module").
pub trait Codec: Send + Sync {
    /// Short name used in reports ("gzip-equivalent" codecs report
    /// "deflate", etc.). Wrapper codecs compose names dynamically
    /// ("transform+deflate", "block-transform+deflate"), so the name
    /// borrows from the codec rather than from static storage.
    fn name(&self) -> &str;

    /// Compress `input` into a fresh buffer. Compression is total: any
    /// input has a valid compressed form.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress a buffer produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError>;
}

/// A shared, dynamically-typed codec handle.
pub type CodecHandle = Arc<dyn Codec>;

/// The identity codec: no compression (Hadoop with compression disabled —
/// the paper's baseline configuration).
#[derive(Debug, Clone, Default)]
pub struct IdentityCodec;

impl Codec for IdentityCodec {
    fn name(&self) -> &str {
        "identity"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        Ok(input.to_vec())
    }
}

/// Simple byte-level run-length codec: `(count, byte)` pairs with a
/// 255-cap. Useful as a cheap codec baseline and for tests.
#[derive(Debug, Clone, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn name(&self) -> &str {
        "rle"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 8);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        let mut i = 0;
        while i < input.len() {
            let b = input[i];
            let mut run = 1usize;
            while i + run < input.len() && input[i + run] == b && run < 255 {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 8 {
            return Err(CompressError::Truncated("rle header".into()));
        }
        let orig_len = u64::from_le_bytes(input[..8].try_into().unwrap()) as usize;
        let body = &input[8..];
        if !body.len().is_multiple_of(2) {
            return Err(CompressError::Corrupt("odd rle body".into()));
        }
        // The declared length is attacker-controlled; validate it against
        // what the body can actually produce (each pair emits 1..=255
        // bytes) before trusting it, and cap the pre-allocation so a
        // corrupt header can never reserve more than a bounded multiple
        // of the input actually presented.
        let max_possible = (body.len() / 2) * 255;
        if orig_len > max_possible {
            return Err(CompressError::Corrupt(format!(
                "rle declared {orig_len} bytes but {} pairs can produce at most {max_possible}",
                body.len() / 2
            )));
        }
        const PREALLOC_CAP: usize = 1 << 20;
        let mut out = Vec::with_capacity(orig_len.min(PREALLOC_CAP));
        for pair in body.chunks_exact(2) {
            let (run, b) = (pair[0] as usize, pair[1]);
            if run == 0 {
                return Err(CompressError::Corrupt("zero-length run".into()));
            }
            out.resize(out.len() + run, b);
        }
        if out.len() != orig_len {
            return Err(CompressError::Corrupt(format!(
                "rle length mismatch: declared {orig_len}, got {}",
                out.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let c = IdentityCodec;
        let data = b"unchanged";
        assert_eq!(c.compress(data), data);
        assert_eq!(c.decompress(data).unwrap(), data);
        assert_eq!(c.name(), "identity");
    }

    #[test]
    fn rle_roundtrip_runs_and_noise() {
        let c = RleCodec;
        for data in [
            Vec::new(),
            vec![7u8],
            vec![0u8; 1000],
            b"abcdef".to_vec(),
            [vec![1u8; 300], vec![2u8; 5], vec![3u8; 1]].concat(),
        ] {
            let z = c.compress(&data);
            assert_eq!(c.decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn rle_compresses_long_runs() {
        let c = RleCodec;
        let data = vec![9u8; 10_000];
        let z = c.compress(&data);
        assert!(z.len() < 100, "rle output {}", z.len());
    }

    #[test]
    fn rle_rejects_corruption() {
        let c = RleCodec;
        let mut z = c.compress(&[5u8; 100]);
        assert!(c.decompress(&z[..7]).is_err()); // short header
        z.truncate(z.len() - 1); // odd body
        assert!(c.decompress(&z).is_err());
        let z2 = c.compress(&[5u8; 100]);
        let mut z3 = z2.clone();
        z3[0] ^= 1; // wrong declared length
        assert!(c.decompress(&z3).is_err());
        let mut z4 = z2;
        let last = z4.len() - 2;
        z4[last] = 0; // zero-length run
        assert!(c.decompress(&z4).is_err());
    }

    #[test]
    fn rle_rejects_adversarial_declared_length() {
        let c = RleCodec;
        // Header claims u64::MAX bytes but the body holds a single pair:
        // decompress must reject before allocating anything like that.
        let mut z = u64::MAX.to_le_bytes().to_vec();
        z.extend_from_slice(&[255u8, 0xAB]);
        assert!(c.decompress(&z).is_err());
        // Declared length just above what the body can produce.
        let mut z2 = (256u64).to_le_bytes().to_vec();
        z2.extend_from_slice(&[255u8, 1]);
        assert!(c.decompress(&z2).is_err());
    }

    #[test]
    fn codecs_are_object_safe() {
        let codecs: Vec<CodecHandle> = vec![Arc::new(IdentityCodec), Arc::new(RleCodec)];
        for c in codecs {
            let z = c.compress(b"object safety");
            assert_eq!(c.decompress(&z).unwrap(), b"object safety");
        }
    }
}

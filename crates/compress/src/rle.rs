//! Run-length stages used by the Bzip-style codec.
//!
//! * RLE1 — bzip2's input pre-pass: runs of 4..=259 equal bytes become the
//!   4 bytes plus a count byte. Protects the BWT sorter from degenerate
//!   inputs.
//! * Zero-run (RUNA/RUNB) coding — bzip2's post-MTF stage: runs of zeros
//!   are written in bijective base 2 using two dedicated symbols.

use crate::error::CompressError;

/// bzip2-style RLE1: any run of 4..=259 identical bytes is emitted as four
/// copies plus a count byte (0..=255 extra repetitions).
pub fn rle1_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 8);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 259 {
            run += 1;
        }
        if run >= 4 {
            out.extend_from_slice(&[b, b, b, b]);
            out.push((run - 4) as u8);
        } else {
            out.resize(out.len() + run, b);
        }
        i += run;
    }
    out
}

/// Inverse of [`rle1_encode`].
pub fn rle1_decode(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        // Count identical bytes from i, up to 4.
        let mut run = 1usize;
        while run < 4 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run == 4 {
            let extra = *data
                .get(i + 4)
                .ok_or_else(|| CompressError::Truncated("rle1 count byte".into()))?
                as usize;
            out.resize(out.len() + 4 + extra, b);
            i += 5;
        } else {
            out.resize(out.len() + run, b);
            i += run;
        }
    }
    Ok(out)
}

/// Symbols of the zero-run alphabet: RUNA and RUNB encode zero-run lengths
/// in bijective base 2; other bytes shift up by 1. EOB terminates.
pub const SYM_RUNA: u16 = 0;
/// Second zero-run digit.
pub const SYM_RUNB: u16 = 1;
/// Offset added to non-zero MTF bytes.
pub const SYM_BYTE_OFFSET: u16 = 1;
/// Number of symbols including EOB for a byte alphabet.
pub const ZRLE_ALPHABET: usize = 258;
/// End-of-block symbol.
pub const SYM_EOB: u16 = 257;

/// Encode an MTF byte stream into the RUNA/RUNB symbol stream
/// (bzip2-style), terminated by EOB.
pub fn zrle_encode(data: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut zero_run = 0u64;
    let flush = |out: &mut Vec<u16>, mut run: u64| {
        // Bijective base 2: digits are RUNA (=1) and RUNB (=2).
        while run > 0 {
            if run & 1 == 1 {
                out.push(SYM_RUNA);
                run = (run - 1) >> 1;
            } else {
                out.push(SYM_RUNB);
                run = (run - 2) >> 1;
            }
        }
    };
    for &b in data {
        if b == 0 {
            zero_run += 1;
        } else {
            if zero_run > 0 {
                flush(&mut out, zero_run);
                zero_run = 0;
            }
            out.push(b as u16 + SYM_BYTE_OFFSET);
        }
    }
    if zero_run > 0 {
        flush(&mut out, zero_run);
    }
    out.push(SYM_EOB);
    out
}

/// Inverse of [`zrle_encode`]; stops at EOB.
pub fn zrle_decode(symbols: &[u16]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    let mut run = 0u64;
    let mut digit = 1u64;
    let mut saw_eob = false;
    for &s in symbols {
        match s {
            SYM_RUNA => {
                run += digit;
                digit <<= 1;
            }
            SYM_RUNB => {
                run += 2 * digit;
                digit <<= 1;
            }
            SYM_EOB => {
                saw_eob = true;
                break;
            }
            _ => {
                if run > 0 {
                    out.resize(out.len() + run as usize, 0);
                    run = 0;
                    digit = 1;
                }
                let b = s - SYM_BYTE_OFFSET;
                if b > 255 {
                    return Err(CompressError::Corrupt(format!("bad zrle symbol {s}")));
                }
                out.push(b as u8);
            }
        }
    }
    if run > 0 {
        out.resize(out.len() + run as usize, 0);
    }
    if !saw_eob {
        return Err(CompressError::Truncated("missing EOB".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle1_roundtrip() {
        for data in [
            Vec::new(),
            b"abc".to_vec(),
            vec![7u8; 3],
            vec![7u8; 4],
            vec![7u8; 259],
            vec![7u8; 260],
            vec![7u8; 1000],
            [vec![1u8; 6], b"xy".to_vec(), vec![2u8; 300]].concat(),
        ] {
            let enc = rle1_encode(&data);
            assert_eq!(rle1_decode(&enc).unwrap(), data, "len {}", data.len());
        }
    }

    #[test]
    fn rle1_truncation_detected() {
        // Four equal bytes with the count byte missing.
        assert!(rle1_decode(&[9, 9, 9, 9]).is_err());
    }

    #[test]
    fn rle1_shrinks_long_runs() {
        let enc = rle1_encode(&vec![0u8; 259]);
        assert_eq!(enc.len(), 5);
    }

    #[test]
    fn zrle_roundtrip() {
        for data in [
            Vec::new(),
            vec![0u8],
            vec![0u8; 1],
            vec![0u8; 2],
            vec![0u8; 3],
            vec![0u8; 1000],
            b"ab".to_vec(),
            [vec![0u8; 5], vec![9u8], vec![0u8; 7]].concat(),
            (0u8..=255).collect(),
        ] {
            let sym = zrle_encode(&data);
            assert_eq!(zrle_decode(&sym).unwrap(), data, "data {data:?}");
        }
    }

    #[test]
    fn zrle_zero_runs_are_logarithmic() {
        // A run of 2^20 zeros needs ~20 symbols, not a million.
        let sym = zrle_encode(&vec![0u8; 1 << 20]);
        assert!(sym.len() < 25, "got {} symbols", sym.len());
    }

    #[test]
    fn zrle_missing_eob_detected() {
        let mut sym = zrle_encode(b"xyz");
        sym.pop();
        assert!(zrle_decode(&sym).is_err());
    }

    #[test]
    fn zrle_ignores_symbols_after_eob() {
        let mut sym = zrle_encode(b"q");
        sym.push(SYM_RUNA);
        assert_eq!(zrle_decode(&sym).unwrap(), b"q");
    }
}

//! A DEFLATE-style codec: LZ77 + canonical Huffman.
//!
//! Stands in for the paper's gzip/zlib codec. The container ("SDZ1") is
//! our own, but the compression machinery is DEFLATE's: a 32 KiB LZ77
//! window, the DEFLATE length/distance alphabets with extra bits, and
//! canonical Huffman tables transmitted as code lengths.

use crate::bitio::{BitReader, BitWriter};
use crate::checksum::crc32;
use crate::codec::Codec;
use crate::error::CompressError;
use crate::huffman::{build_lengths, read_lengths, write_lengths, Decoder, Encoder, MAX_CODE_LEN};
use crate::lz77::{tokenize, Token, MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

const MAGIC: &[u8; 4] = b"SDZ1";
/// Block mode: raw bytes follow (the DEFLATE "stored" fallback for
/// incompressible data).
const MODE_STORED: u8 = 0;
/// Block mode: Huffman-coded token stream follows.
const MODE_HUFFMAN: u8 = 1;
/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Size of the literal/length alphabet (DEFLATE's 286).
const NUM_LITLEN: usize = 286;
/// Size of the distance alphabet (DEFLATE's 30).
const NUM_DIST: usize = 30;

/// (base length, extra bits) for length codes 257..=285.
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// `len - MIN_MATCH` → length-code index, replacing the per-token linear
/// scan of `LENGTH_TABLE`. Built at compile time from the table so the
/// two can never drift.
const LENGTH_CODE_LUT: [u8; MAX_MATCH - MIN_MATCH + 1] = {
    let mut lut = [0u8; MAX_MATCH - MIN_MATCH + 1];
    let mut code = 0;
    while code < LENGTH_TABLE.len() {
        let base = LENGTH_TABLE[code].0 as usize;
        let top = if code + 1 < LENGTH_TABLE.len() {
            LENGTH_TABLE[code + 1].0 as usize
        } else {
            MAX_MATCH + 1
        };
        let mut len = base;
        while len < top {
            lut[len - MIN_MATCH] = code as u8;
            len += 1;
        }
        code += 1;
    }
    lut
};

const fn dist_code_index(dist: usize) -> u8 {
    let mut code = 0;
    let mut i = 0;
    while i < DIST_TABLE.len() {
        if dist >= DIST_TABLE[i].0 as usize {
            code = i;
        }
        i += 1;
    }
    code as u8
}

/// `dist - 1` → distance-code index for distances 1..=256.
const DIST_LUT_SMALL: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut d = 1;
    while d <= 256 {
        lut[d - 1] = dist_code_index(d);
        d += 1;
    }
    lut
};

/// `(dist - 1) >> 7` → distance-code index for distances 257..=32768.
/// Valid because every distance code ≥ 16 spans whole 128-byte-aligned
/// ranges (zlib's classic two-level trick).
const DIST_LUT_LARGE: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut idx = 2;
    while idx < 256 {
        lut[idx] = dist_code_index((idx << 7) + 1);
        idx += 1;
    }
    lut
};

#[inline]
fn length_code(len: usize) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let code = LENGTH_CODE_LUT[len - MIN_MATCH] as usize;
    let (base, extra) = LENGTH_TABLE[code];
    (257 + code, len as u16 - base, extra)
}

#[inline]
fn dist_code(dist: usize) -> (usize, u16, u8) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    let code = if dist <= 256 {
        DIST_LUT_SMALL[dist - 1]
    } else {
        DIST_LUT_LARGE[(dist - 1) >> 7]
    } as usize;
    let (base, extra) = DIST_TABLE[code];
    (code, (dist - base as usize) as u16, extra)
}

/// Deflate-style codec. `max_chain` bounds the LZ77 hash-chain search and
/// trades compression ratio for speed (zlib's `level` analogue).
#[derive(Debug, Clone)]
pub struct DeflateCodec {
    max_chain: usize,
}

impl DeflateCodec {
    /// Default effort (comparable to zlib level 6).
    pub fn new() -> Self {
        DeflateCodec { max_chain: 128 }
    }

    /// Custom match-search effort.
    pub fn with_chain(max_chain: usize) -> Self {
        assert!(max_chain >= 1);
        DeflateCodec { max_chain }
    }
}

impl Default for DeflateCodec {
    fn default() -> Self {
        DeflateCodec::new()
    }
}

impl Codec for DeflateCodec {
    fn name(&self) -> &str {
        "deflate"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let tokens = tokenize(input, self.max_chain);

        // Gather symbol frequencies.
        let mut lit_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    let (lc, _, _) = length_code(len as usize);
                    let (dc, _, _) = dist_code(dist as usize);
                    lit_freq[lc] += 1;
                    dist_freq[dc] += 1;
                }
            }
        }
        lit_freq[EOB] += 1;

        let lit_lengths = build_lengths(&lit_freq, MAX_CODE_LEN);
        let dist_lengths = build_lengths(&dist_freq, MAX_CODE_LEN);
        let lit_enc = Encoder::from_lengths(&lit_lengths);
        let dist_enc = Encoder::from_lengths(&dist_lengths);

        let mut out = Vec::with_capacity(input.len() / 3 + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(input).to_le_bytes());

        let mut w = BitWriter::new();
        write_lengths(&mut w, &lit_lengths);
        write_lengths(&mut w, &dist_lengths);
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.encode(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lc, lextra, lbits) = length_code(len as usize);
                    lit_enc.encode(&mut w, lc);
                    if lbits > 0 {
                        w.write_bits(lextra as u64, lbits as u32);
                    }
                    let (dc, dextra, dbits) = dist_code(dist as usize);
                    dist_enc.encode(&mut w, dc);
                    if dbits > 0 {
                        w.write_bits(dextra as u64, dbits as u32);
                    }
                }
            }
        }
        lit_enc.encode(&mut w, EOB);
        let body = w.finish();
        // DEFLATE's "stored" fallback: never expand incompressible input
        // past one mode byte.
        if body.len() >= input.len() {
            out.push(MODE_STORED);
            out.extend_from_slice(input);
        } else {
            out.push(MODE_HUFFMAN);
            out.extend_from_slice(&body);
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 16 || &input[..4] != MAGIC {
            return Err(CompressError::BadMagic { expected: "SDZ1" });
        }
        let orig_len = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(input[12..16].try_into().unwrap());
        let mode = *input
            .get(16)
            .ok_or_else(|| CompressError::Truncated("mode byte".into()))?;
        if mode == MODE_STORED {
            let body = &input[17..];
            if body.len() != orig_len {
                return Err(CompressError::Corrupt(format!(
                    "stored block is {} of declared {orig_len} bytes",
                    body.len()
                )));
            }
            let computed = crc32(body);
            if computed != stored_crc {
                return Err(CompressError::ChecksumMismatch {
                    stored: stored_crc,
                    computed,
                });
            }
            return Ok(body.to_vec());
        }
        if mode != MODE_HUFFMAN {
            return Err(CompressError::Corrupt(format!("unknown block mode {mode}")));
        }

        let mut r = BitReader::new(&input[17..]);
        let lit_lengths = read_lengths(&mut r)?;
        let dist_lengths = read_lengths(&mut r)?;
        if lit_lengths.len() != NUM_LITLEN || dist_lengths.len() != NUM_DIST {
            return Err(CompressError::Corrupt("bad alphabet sizes".into()));
        }
        let lit_dec = Decoder::from_lengths(&lit_lengths)?;
        let dist_dec = if dist_lengths.iter().any(|&l| l > 0) {
            Some(Decoder::from_lengths(&dist_lengths)?)
        } else {
            None
        };

        let mut out = Vec::with_capacity(orig_len);
        loop {
            let sym = lit_dec.decode(&mut r)?;
            match sym {
                0..=255 => out.push(sym as u8),
                256 => break,
                257..=285 => {
                    let (base, extra) = LENGTH_TABLE[sym - 257];
                    let len = base as usize + r.read_bits(extra as u32)? as usize;
                    let dd = dist_dec
                        .as_ref()
                        .ok_or_else(|| CompressError::Corrupt("match without distances".into()))?;
                    let dc = dd.decode(&mut r)?;
                    if dc >= NUM_DIST {
                        return Err(CompressError::Corrupt("bad distance code".into()));
                    }
                    let (dbase, dextra) = DIST_TABLE[dc];
                    let dist = dbase as usize + r.read_bits(dextra as u32)? as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(CompressError::Corrupt(format!(
                            "distance {dist} exceeds output {}",
                            out.len()
                        )));
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                _ => return Err(CompressError::Corrupt(format!("bad symbol {sym}"))),
            }
            if out.len() > orig_len {
                return Err(CompressError::Corrupt(
                    "output exceeds declared size".into(),
                ));
            }
        }
        if out.len() != orig_len {
            return Err(CompressError::Corrupt(format!(
                "size mismatch: declared {orig_len}, produced {}",
                out.len()
            )));
        }
        let computed = crc32(&out);
        if computed != stored_crc {
            return Err(CompressError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = DeflateCodec::new();
        let z = c.compress(data);
        assert_eq!(c.decompress(&z).unwrap(), data);
        z.len()
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn short_inputs() {
        roundtrip(b"a");
        roundtrip(b"abcde");
        roundtrip(&[0, 0, 0]);
    }

    #[test]
    fn text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog."
            .repeat(20);
        let z = roundtrip(&data);
        assert!(z < data.len() / 4, "compressed {z} of {}", data.len());
    }

    #[test]
    fn grid_key_stream_compresses() {
        // The Fig. 3 workload shape (scaled down): triples of BE i32.
        let mut data = Vec::new();
        for x in 0..30i32 {
            for y in 0..30i32 {
                for z in 0..30i32 {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        let z = roundtrip(&data);
        // gzip achieves ~13.6% on this stream in the paper (1.63MB/12MB).
        assert!(
            (z as f64) < data.len() as f64 * 0.25,
            "compressed {z} of {}",
            data.len()
        );
    }

    #[test]
    fn stored_fallback_bounds_expansion() {
        // Random bytes must cost at most header (16) + mode (1) extra.
        let c = DeflateCodec::new();
        let mut state = 11u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let z = c.compress(&data);
        assert!(z.len() <= data.len() + 17, "expanded to {}", z.len());
        assert_eq!(z[16], 0, "random data should take the stored path");
        assert_eq!(c.decompress(&z).unwrap(), data);
        // Stored blocks still verify CRC and length.
        let mut bad = z.clone();
        bad[40] ^= 1;
        assert!(c.decompress(&bad).is_err());
        assert!(c.decompress(&z[..z.len() - 1]).is_err());
    }

    #[test]
    fn incompressible_data_does_not_explode() {
        let mut state = 7u64;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let z = roundtrip(&data);
        assert!(z < data.len() + data.len() / 8 + 600);
    }

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3).0, 257);
        assert_eq!(length_code(10).0, 264);
        assert_eq!(length_code(11).0, 265);
        assert_eq!(length_code(12).0, 265);
        assert_eq!(length_code(257).0, 284);
        assert_eq!(length_code(258).0, 285);
        // Extra bits reconstruct exactly.
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, bits) = length_code(len);
            let (base, tbits) = LENGTH_TABLE[code - 257];
            assert_eq!(bits, tbits);
            assert_eq!(base as usize + extra as usize, len);
        }
    }

    #[test]
    fn dist_code_boundaries() {
        for dist in 1..=WINDOW_SIZE {
            let (code, extra, bits) = dist_code(dist);
            let (base, tbits) = DIST_TABLE[code];
            assert_eq!(bits, tbits, "dist {dist}");
            assert_eq!(base as usize + extra as usize, dist);
        }
    }

    #[test]
    fn corrupt_magic_rejected() {
        let c = DeflateCodec::new();
        let mut z = c.compress(b"hello world hello world");
        z[0] = b'X';
        assert!(matches!(
            c.decompress(&z),
            Err(CompressError::BadMagic { .. })
        ));
    }

    #[test]
    fn corrupt_payload_detected() {
        let c = DeflateCodec::new();
        let data = b"some reasonably long payload that actually compresses, repeated \
                     some reasonably long payload that actually compresses";
        let mut z = c.compress(data);
        // Flip a bit in the bitstream body (past the 16-byte header and
        // the Huffman tables which start right after).
        let i = z.len() - 3;
        z[i] ^= 0x10;
        assert!(c.decompress(&z).is_err());
    }

    #[test]
    fn truncated_stream_detected() {
        let c = DeflateCodec::new();
        let z = c.compress(&b"abcdefgh".repeat(100));
        assert!(c.decompress(&z[..z.len() - 4]).is_err());
        assert!(c.decompress(&z[..10]).is_err());
    }
}

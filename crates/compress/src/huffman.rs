//! Canonical Huffman coding with length-limited codes.
//!
//! Shared by the Deflate- and Bzip-style codecs. Codes are canonical
//! (assigned in (length, symbol) order) so only the code *lengths* need to
//! be transmitted.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CompressError;

/// Maximum code length either codec ever uses.
pub const MAX_CODE_LEN: u32 = 15;

/// Compute length-limited Huffman code lengths for the given symbol
/// frequencies. Symbols with zero frequency get length 0 (no code).
///
/// Lengths are limited to `max_len` bits; if the optimal tree is deeper,
/// codes are demoted until the Kraft inequality holds again (slightly
/// suboptimal, always valid).
pub fn build_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let n = freqs.len();
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u32; n];
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-based Huffman over (freq, node). Internal nodes get indices
    // >= n. parent[] lets us read off depths afterwards.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = live
        .iter()
        .map(|&i| std::cmp::Reverse((freqs[i], i)))
        .collect();
    let mut parent = vec![usize::MAX; n + live.len()];
    let mut next = n;
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
        parent[a] = next;
        parent[b] = next;
        heap.push(std::cmp::Reverse((fa + fb, next)));
        next += 1;
    }
    let root = heap.pop().expect("one root").0 .1;
    for &i in &live {
        let mut d = 0u32;
        let mut node = i;
        while node != root {
            node = parent[node];
            d += 1;
        }
        lengths[i] = d.max(1);
    }

    limit_lengths(freqs, &mut lengths, max_len);
    lengths
}

/// Enforce `max_len` on a set of code lengths, preserving validity of the
/// Kraft inequality.
fn limit_lengths(freqs: &[u64], lengths: &mut [u32], max_len: u32) {
    let mut over = false;
    for l in lengths.iter_mut() {
        if *l > max_len {
            *l = max_len;
            over = true;
        }
    }
    if !over {
        return;
    }
    // Kraft sum in units of 2^-max_len.
    let one: u64 = 1 << max_len;
    let kraft = |lengths: &[u32]| -> u64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum()
    };
    let mut k = kraft(lengths);
    while k > one {
        // Demote the least-frequent symbol that still has room to grow.
        let victim = (0..lengths.len())
            .filter(|&i| lengths[i] > 0 && lengths[i] < max_len)
            .min_by_key(|&i| (freqs[i], std::cmp::Reverse(lengths[i])))
            .expect("kraft > 1 implies a demotable symbol exists");
        k -= 1 << (max_len - lengths[victim] - 1);
        lengths[victim] += 1;
    }
}

/// Assign canonical codes (MSB-first) for the given lengths.
pub fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// An encoder: symbol → (code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lengths: Vec<u32>,
}

impl Encoder {
    /// Build an encoder from code lengths.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        Encoder {
            codes: canonical_codes(lengths),
            lengths: lengths.to_vec(),
        }
    }

    /// Emit the code for `symbol`.
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.write_code_msb(self.codes[symbol], len);
    }

    /// Code length of `symbol` (0 = absent).
    pub fn length(&self, symbol: usize) -> u32 {
        self.lengths[symbol]
    }
}

/// A table-driven decoder for canonical codes.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// Flat lookup indexed by the next `table_bits` LSB-first bits:
    /// (symbol, code length).
    table: Vec<(u16, u8)>,
    table_bits: u32,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn from_lengths(lengths: &[u32]) -> Result<Self, CompressError> {
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return Err(CompressError::BadHuffmanTable("no symbols".into()));
        }
        if max > MAX_CODE_LEN {
            return Err(CompressError::BadHuffmanTable(format!(
                "length {max} exceeds {MAX_CODE_LEN}"
            )));
        }
        if lengths.len() > u16::MAX as usize {
            return Err(CompressError::BadHuffmanTable("alphabet too large".into()));
        }
        // Validate Kraft (over-subscribed tables are corrupt; incomplete
        // tables are accepted — single-symbol streams produce them).
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max - l))
            .sum();
        if kraft > 1u64 << max {
            return Err(CompressError::BadHuffmanTable("over-subscribed".into()));
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![(u16::MAX, 0u8); 1usize << max];
        for (sym, (&len, &code)) in lengths.iter().zip(&codes).enumerate() {
            if len == 0 {
                continue;
            }
            // The writer streams codes MSB-first via bit reversal, so the
            // reader sees the reversed code in its low bits.
            let rev = (code.reverse_bits()) >> (32 - len);
            let step = 1usize << len;
            let mut idx = rev as usize;
            while idx < table.len() {
                table[idx] = (sym as u16, len as u8);
                idx += step;
            }
        }
        Ok(Decoder {
            table,
            table_bits: max,
        })
    }

    /// Decode one symbol, consuming exactly its code length in bits.
    ///
    /// Codes are prefix-free, so at any full-width table index exactly one
    /// code matches; accumulating bits LSB-first and checking the table
    /// entry's length after each bit finds it without over-reading.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, CompressError> {
        let mut acc: usize = 0;
        for bit_no in 0..self.table_bits {
            acc |= (r.read_bit()? as usize) << bit_no;
            let (sym, len) = self.table[acc];
            if sym != u16::MAX && len as u32 == bit_no + 1 {
                return Ok(sym as usize);
            }
        }
        Err(CompressError::Corrupt("invalid huffman code".into()))
    }
}

/// Serialize code lengths as 4-bit nibbles, preceded by a u16 symbol
/// count.
pub fn write_lengths(w: &mut BitWriter, lengths: &[u32]) {
    w.write_bits(lengths.len() as u64, 16);
    for &l in lengths {
        debug_assert!(l <= MAX_CODE_LEN);
        w.write_bits(l as u64, 4);
    }
}

/// Inverse of [`write_lengths`].
pub fn read_lengths(r: &mut BitReader<'_>) -> Result<Vec<u32>, CompressError> {
    let n = r.read_bits(16)? as usize;
    let mut lengths = Vec::with_capacity(n);
    for _ in 0..n {
        lengths.push(r.read_bits(4)? as u32);
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize]) {
        let lengths = build_lengths(freqs, MAX_CODE_LEN);
        let enc = Encoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn two_symbol_alphabet() {
        roundtrip_symbols(&[5, 3], &[0, 1, 0, 0, 1, 1, 0]);
    }

    #[test]
    fn single_symbol_alphabet_gets_one_bit() {
        let lengths = build_lengths(&[0, 42, 0], MAX_CODE_LEN);
        assert_eq!(lengths, vec![0, 1, 0]);
        roundtrip_symbols(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn skewed_frequencies_give_short_codes_to_common_symbols() {
        let freqs = [1000, 10, 10, 1];
        let lengths = build_lengths(&freqs, MAX_CODE_LEN);
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[1] <= lengths[3]);
        roundtrip_symbols(&freqs, &[0, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn kraft_inequality_holds_after_limiting() {
        // Fibonacci-ish frequencies force deep trees; limit to 6 bits.
        let freqs: Vec<u64> = (0..30).map(|i| 1u64 << (i / 2)).collect();
        let lengths = build_lengths(&freqs, 6);
        assert!(lengths.iter().all(|&l| (1..=6).contains(&l)));
        let kraft: f64 = lengths.iter().map(|&l| (2f64).powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = build_lengths(&[7, 7, 7, 7, 2, 2, 1], MAX_CODE_LEN);
        let codes = canonical_codes(&lengths);
        for i in 0..lengths.len() {
            for j in 0..lengths.len() {
                if i == j || lengths[i] == 0 || lengths[j] == 0 {
                    continue;
                }
                if lengths[i] <= lengths[j] {
                    let shift = lengths[j] - lengths[i];
                    assert!(codes[i] != codes[j] >> shift, "code {i} is a prefix of {j}");
                }
            }
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed_table() {
        // Three codes of length 1 is over-subscribed.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Decoder::from_lengths(&[0, 0]).is_err());
    }

    #[test]
    fn lengths_serialization_roundtrip() {
        let lengths = vec![0u32, 3, 5, 15, 1, 0, 7];
        let mut w = BitWriter::new();
        write_lengths(&mut w, &lengths);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_lengths(&mut r).unwrap(), lengths);
    }

    #[test]
    fn large_alphabet_roundtrip() {
        // Deflate-sized alphabet with uneven use.
        let mut freqs = vec![0u64; 286];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = ((i * 37) % 97) as u64;
        }
        freqs[256] = 1; // EOB always present
        let stream: Vec<usize> = (0..2000)
            .map(|i| (i * 31) % 286)
            .filter(|&s| freqs[s] > 0)
            .collect();
        roundtrip_symbols(&freqs, &stream);
    }
}

//! A bzip2-style block codec: RLE1 → BWT → MTF → zero-run coding →
//! canonical Huffman.
//!
//! Differences from real bzip2 are deliberate simplifications that do not
//! change the algorithm family: one Huffman table per block instead of
//! six with selectors, and a plain 4-bit length table instead of the
//! delta-coded one. Block size is `level × 100 KiB`, like bzip2's `-1`
//! through `-9`.

use crate::bitio::{BitReader, BitWriter};
use crate::bwt::{bwt_decode, bwt_encode};
use crate::checksum::crc32;
use crate::codec::Codec;
use crate::error::CompressError;
use crate::huffman::{build_lengths, read_lengths, write_lengths, Decoder, Encoder, MAX_CODE_LEN};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::rle::{rle1_decode, rle1_encode, zrle_decode, zrle_encode, SYM_EOB, ZRLE_ALPHABET};

const MAGIC: &[u8; 4] = b"SBZ1";

/// Bzip-style codec.
#[derive(Debug, Clone)]
pub struct BzipCodec {
    block_size: usize,
}

impl BzipCodec {
    /// Default: 900 KiB blocks (bzip2 `-9`).
    pub fn new() -> Self {
        Self::with_level(9)
    }

    /// Block size `level × 100 KiB`, `level` in 1..=9.
    pub fn with_level(level: u32) -> Self {
        assert!((1..=9).contains(&level), "level must be 1..=9");
        BzipCodec {
            block_size: level as usize * 100_000,
        }
    }
}

impl Default for BzipCodec {
    fn default() -> Self {
        BzipCodec::new()
    }
}

impl Codec for BzipCodec {
    fn name(&self) -> &str {
        "bzip"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(input).to_le_bytes());

        let mut w = BitWriter::new();
        // The RLE1 pre-pass runs over the whole input; its output is then
        // carved into BWT blocks.
        let rled = rle1_encode(input);
        let nblocks = rled.len().div_ceil(self.block_size);
        w.write_bits(nblocks as u64, 32);
        w.write_bits(rled.len() as u64, 48);
        for chunk in rled.chunks(self.block_size) {
            let (last, primary) = bwt_encode(chunk);
            let mtfed = mtf_encode(&last);
            let symbols = zrle_encode(&mtfed);

            let mut freqs = vec![0u64; ZRLE_ALPHABET];
            for &s in &symbols {
                freqs[s as usize] += 1;
            }
            let lengths = build_lengths(&freqs, MAX_CODE_LEN);
            let enc = Encoder::from_lengths(&lengths);

            w.write_bits(chunk.len() as u64, 32);
            w.write_bits(primary as u64, 32);
            write_lengths(&mut w, &lengths);
            for &s in &symbols {
                enc.encode(&mut w, s as usize);
            }
        }
        out.extend_from_slice(&w.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 16 || &input[..4] != MAGIC {
            return Err(CompressError::BadMagic { expected: "SBZ1" });
        }
        let orig_len = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(input[12..16].try_into().unwrap());

        let mut r = BitReader::new(&input[16..]);
        let nblocks = r.read_bits(32)? as usize;
        let rled_len = r.read_bits(48)? as usize;
        if nblocks > rled_len.max(1) {
            return Err(CompressError::Corrupt(format!(
                "{nblocks} blocks for {rled_len} rle bytes"
            )));
        }
        let mut rled = Vec::with_capacity(rled_len);
        for _ in 0..nblocks {
            let block_len = r.read_bits(32)? as usize;
            let primary = r.read_bits(32)? as u32;
            if block_len == 0 {
                continue;
            }
            if block_len > rled_len {
                return Err(CompressError::Corrupt("block longer than stream".into()));
            }
            let lengths = read_lengths(&mut r)?;
            if lengths.len() != ZRLE_ALPHABET {
                return Err(CompressError::Corrupt("bad zrle alphabet size".into()));
            }
            let dec = Decoder::from_lengths(&lengths)?;
            let mut symbols = Vec::with_capacity(block_len);
            loop {
                let s = dec.decode(&mut r)? as u16;
                let done = s == SYM_EOB;
                symbols.push(s);
                if done {
                    break;
                }
                if symbols.len() > 4 * block_len + 64 {
                    return Err(CompressError::Corrupt("runaway block".into()));
                }
            }
            let mtfed = zrle_decode(&symbols)?;
            if mtfed.len() != block_len {
                return Err(CompressError::Corrupt(format!(
                    "block decoded to {} of {block_len} bytes",
                    mtfed.len()
                )));
            }
            let last = mtf_decode(&mtfed);
            let chunk = bwt_decode(&last, primary)?;
            rled.extend_from_slice(&chunk);
        }
        if rled.len() != rled_len {
            return Err(CompressError::Corrupt(format!(
                "rle stream {} of declared {rled_len} bytes",
                rled.len()
            )));
        }
        let out = rle1_decode(&rled)?;
        if out.len() != orig_len {
            return Err(CompressError::Corrupt(format!(
                "size mismatch: declared {orig_len}, produced {}",
                out.len()
            )));
        }
        let computed = crc32(&out);
        if computed != stored_crc {
            return Err(CompressError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = BzipCodec::with_level(1);
        let z = c.compress(data);
        assert_eq!(c.decompress(&z).unwrap(), data, "len {}", data.len());
        z.len()
    }

    #[test]
    fn trivial_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabc");
        roundtrip(&[0u8; 5000]);
    }

    #[test]
    fn text_compresses_better_than_half() {
        let data = b"compressing the incompressible with isabela, in situ. ".repeat(200);
        let z = roundtrip(&data);
        assert!(z < data.len() / 2, "bzip output {z} of {}", data.len());
    }

    #[test]
    fn grid_key_stream_compresses() {
        let mut data = Vec::new();
        for x in 0..25i32 {
            for y in 0..25i32 {
                for z in 0..25i32 {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        let z = roundtrip(&data);
        // The paper's bzip2 gets 512 kB from 12 MB (4.3%). Ours should at
        // least quarter the stream.
        assert!(z < data.len() / 4, "bzip output {z} of {}", data.len());
    }

    #[test]
    fn multi_block_inputs_roundtrip() {
        // Force multiple 100 kB blocks.
        let mut data = Vec::new();
        let mut state = 3u64;
        for i in 0..350_000usize {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push(if i % 3 == 0 {
                (state >> 33) as u8
            } else {
                b'x'
            });
        }
        roundtrip(&data);
    }

    #[test]
    fn corruption_is_detected() {
        let c = BzipCodec::with_level(1);
        let data = b"a block of data that goes through all five stages ".repeat(50);
        let z = c.compress(&data);
        // Magic.
        let mut bad = z.clone();
        bad[1] = b'!';
        assert!(matches!(
            c.decompress(&bad),
            Err(CompressError::BadMagic { .. })
        ));
        // Truncation.
        assert!(c.decompress(&z[..z.len() / 2]).is_err());
        // Bit flip in the entropy-coded body.
        let mut bad = z.clone();
        let i = z.len() - 2;
        bad[i] ^= 0x40;
        assert!(c.decompress(&bad).is_err());
    }

    #[test]
    fn levels_change_block_size_not_correctness() {
        let data = b"level test ".repeat(30_000); // 330 kB
        let z1 = BzipCodec::with_level(1).compress(&data);
        let z9 = BzipCodec::with_level(9).compress(&data);
        assert_eq!(BzipCodec::with_level(1).decompress(&z1).unwrap(), data);
        assert_eq!(BzipCodec::with_level(9).decompress(&z9).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "level must be 1..=9")]
    fn level_zero_panics() {
        let _ = BzipCodec::with_level(0);
    }
}

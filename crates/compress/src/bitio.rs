//! Bit-granular I/O, LSB-first (the DEFLATE convention).

use crate::error::CompressError;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the low `n` bits of `bits` (LSB emitted first). `n <= 57`.
    pub fn write_bits(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits limited to 57 bits per call");
        debug_assert!(n == 64 || bits >> n == 0, "value wider than bit count");
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Append a Huffman code given MSB-first (codes are conventionally
    /// built MSB-first; DEFLATE streams them bit-reversed).
    pub fn write_code_msb(&mut self, code: u32, len: u32) {
        let rev = (code.reverse_bits()) >> (32 - len);
        self.write_bits(rev as u64, len);
    }

    /// Pad to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Number of complete bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Finish (byte-aligning) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data`, starting at its first byte.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (`n <= 57`), LSB-first.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CompressError> {
        debug_assert!(n <= 57);
        self.refill();
        if self.nbits < n {
            return Err(CompressError::Truncated(format!(
                "wanted {n} bits, {} left",
                self.nbits
            )));
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let v = self.acc & mask;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<u32, CompressError> {
        Ok(self.read_bits(1)? as u32)
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Bits still available (buffered plus unread bytes).
    pub fn bits_remaining(&self) -> u64 {
        self.nbits as u64 + 8 * (self.data.len() - self.pos) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0x3FFF, 14);
        w.write_bits(0, 3);
        w.write_bits(0x1FFFFF, 21);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
        assert_eq!(r.read_bits(3).unwrap(), 0);
        assert_eq!(r.read_bits(21).unwrap(), 0x1FFFFF);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1); // bit 0 of byte 0
        w.write_bits(0b11, 2); // bits 1-2
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0111]);
    }

    #[test]
    fn code_msb_is_bit_reversed() {
        let mut w = BitWriter::new();
        // Code 0b110 (MSB-first) must appear as 0b011 LSB-first.
        w.write_code_msb(0b110, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0011]);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn align_byte_discards_partial() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.read_bits(3).unwrap();
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0x01);
    }

    #[test]
    fn bits_remaining_tracks_consumption() {
        let mut r = BitReader::new(&[0, 0, 0, 0]);
        assert_eq!(r.bits_remaining(), 32);
        r.read_bits(5).unwrap();
        assert_eq!(r.bits_remaining(), 27);
    }
}

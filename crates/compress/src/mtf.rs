//! Move-to-front transform (the bzip2 stage between BWT and entropy
//! coding).

/// Forward move-to-front: each byte is replaced by its current position in
/// a recency list, then moved to the front.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&t| t == b).expect("byte in table");
            table[..=pos].rotate_right(1);
            pos as u8
        })
        .collect()
}

/// Inverse move-to-front.
pub fn mtf_decode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&pos| {
            let b = table[pos as usize];
            table[..=pos as usize].rotate_right(1);
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for data in [
            b"".to_vec(),
            b"banana".to_vec(),
            (0u8..=255).collect::<Vec<_>>(),
            vec![42u8; 500],
        ] {
            assert_eq!(mtf_decode(&mtf_encode(&data)), data);
        }
    }

    #[test]
    fn runs_become_zeros() {
        // BWT output is full of runs; MTF turns them into zeros, which the
        // RUNA/RUNB stage then squeezes.
        let out = mtf_encode(b"aaaaabbbbb");
        assert_eq!(&out[1..5], &[0, 0, 0, 0]);
        assert_eq!(&out[6..10], &[0, 0, 0, 0]);
    }

    #[test]
    fn first_occurrence_is_initial_position() {
        let out = mtf_encode(&[5, 5, 0]);
        assert_eq!(out[0], 5); // byte 5 initially at position 5
        assert_eq!(out[1], 0); // now at front
        assert_eq!(out[2], 1); // byte 0 pushed to position 1
    }
}

//! Parallel block compression: the pbzip2/pigz approach applied to any
//! [`Codec`].
//!
//! The paper's §V post-mortem is blunt about why the codec approach lost
//! to aggregation: transform+gzip/bzip2 ran serially over every segment
//! on the map/merge critical path, doubling runtime (+106 %) even as it
//! cut bytes 77.8 %. [`BlockCodec`] attacks exactly that cost. It carves
//! a segment into fixed-size blocks (default 256 KiB), compresses each
//! block independently on a shared worker pool, and frames the output
//! with a per-block offset/CRC table so decompression is parallel too
//! and a corrupted block is detected before its bytes can propagate.
//!
//! # Frame format ("SBK1")
//!
//! ```text
//! magic      4 bytes  "SBK1"
//! block_size u32 LE   uncompressed bytes per block (last may be short)
//! orig_len   u64 LE   total uncompressed length
//! num_blocks u32 LE   must equal ceil(orig_len / block_size)
//! table      num_blocks × (comp_len u32 LE, crc32c u32 LE)
//! blocks     concatenated inner-codec streams, table order
//! ```
//!
//! The CRC-32C is over each block's *compressed* bytes, so corruption is
//! caught with a cheap hardware-accelerated scan before the inner codec
//! ever parses attacker-influenced data. Each block is a complete,
//! self-delimiting inner-codec stream; the inner codec's own integrity
//! checks still run on the decompressed side.
//!
//! # Pool sharing
//!
//! Worker threads are bounded by a [`CodecPool`]: a counting permit pool
//! sized from `std::thread::available_parallelism`. The pool hands out
//! *extra* workers — the calling thread always participates — so a
//! `BlockCodec` degrades to the serial whole-buffer path when the pool
//! is exhausted rather than oversubscribing the host. Because the engine
//! clones one `Arc<dyn Codec>` into every map/reduce slot, a single pool
//! naturally bounds compression parallelism job-wide.

use crate::checksum::crc32c;
use crate::codec::{Codec, CodecHandle};
use crate::error::CompressError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 4] = b"SBK1";
/// Fixed frame prefix: magic + block_size + orig_len + num_blocks.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Per-block table entry: compressed length + CRC-32C.
const ENTRY_LEN: usize = 8;
/// Default block size; the EXPERIMENTS.md sweep (64 KiB–1 MiB) puts the
/// throughput knee here on grid key streams.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// A counting permit pool bounding the *extra* threads block codecs may
/// spawn, shared across every codec handle cloned from the same config.
///
/// Permits are taken for the duration of one compress/decompress call
/// and returned afterwards, so concurrent segment closes on different
/// slots split the machine between them instead of each assuming it owns
/// `available_parallelism` cores.
#[derive(Debug)]
pub struct CodecPool {
    permits: AtomicUsize,
    workers: usize,
}

impl CodecPool {
    /// A pool handing out at most `workers` extra threads in total.
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(CodecPool {
            permits: AtomicUsize::new(workers),
            workers,
        })
    }

    /// Pool sized for this host: `available_parallelism - 1` extra
    /// workers (the calling thread is the `- 1`).
    pub fn for_host() -> Arc<Self> {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(cores.saturating_sub(1))
    }

    /// Total extra workers this pool can hand out.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Take up to `want` permits; returns how many were actually granted
    /// (possibly zero — the caller then runs serially).
    fn acquire(&self, want: usize) -> usize {
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, n: usize) {
        self.permits.fetch_add(n, Ordering::Release);
    }
}

/// Wraps any inner [`Codec`] with block splitting + parallel execution.
pub struct BlockCodec {
    inner: CodecHandle,
    block_size: usize,
    pool: Arc<CodecPool>,
    name: String,
}

impl BlockCodec {
    /// Default 256 KiB blocks on a host-sized private pool.
    pub fn new(inner: CodecHandle) -> Self {
        Self::with_pool(inner, DEFAULT_BLOCK_SIZE, CodecPool::for_host())
    }

    /// Custom block size on a host-sized private pool.
    pub fn with_block_size(inner: CodecHandle, block_size: usize) -> Self {
        Self::with_pool(inner, block_size, CodecPool::for_host())
    }

    /// Full control: block size and a shared worker pool.
    pub fn with_pool(inner: CodecHandle, block_size: usize, pool: Arc<CodecPool>) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            block_size <= u32::MAX as usize,
            "block size must fit the frame's u32 field"
        );
        let name = format!("block-{}", inner.name());
        BlockCodec {
            inner,
            block_size,
            pool,
            name,
        }
    }

    /// Uncompressed bytes per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The shared worker pool backing this codec.
    pub fn pool(&self) -> &Arc<CodecPool> {
        &self.pool
    }

    /// Run `work(block_index)` for every index in `0..count`, stealing
    /// indices from a shared atomic counter across the calling thread
    /// plus up to `count - 1` pool workers.
    fn run_blocks<F>(&self, count: usize, work: F)
    where
        F: Fn(usize) + Sync,
    {
        let extra = if count > 1 {
            self.pool.acquire(count - 1)
        } else {
            0
        };
        let next = AtomicUsize::new(0);
        let drain = || loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= count {
                break;
            }
            work(k);
        };
        if extra == 0 {
            drain();
        } else {
            std::thread::scope(|s| {
                for _ in 0..extra {
                    s.spawn(drain);
                }
                drain();
            });
            self.pool.release(extra);
        }
    }
}

impl Codec for BlockCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let num_blocks = input.len().div_ceil(self.block_size);
        let blocks: Vec<&[u8]> = input.chunks(self.block_size).collect();
        let compressed: Vec<Mutex<Vec<u8>>> =
            (0..num_blocks).map(|_| Mutex::new(Vec::new())).collect();
        self.run_blocks(num_blocks, |k| {
            let z = self.inner.compress(blocks[k]);
            *compressed[k].lock().expect("compress slot poisoned") = z;
        });

        let body_len: usize = compressed
            .iter()
            .map(|m| m.lock().expect("compress slot poisoned").len())
            .sum();
        let mut out = Vec::with_capacity(HEADER_LEN + num_blocks * ENTRY_LEN + body_len);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&(num_blocks as u32).to_le_bytes());
        for m in &compressed {
            let z = m.lock().expect("compress slot poisoned");
            out.extend_from_slice(&(z.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32c(&z).to_le_bytes());
        }
        for m in &compressed {
            out.extend_from_slice(&m.lock().expect("compress slot poisoned"));
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 4 || &input[..4] != MAGIC {
            return Err(CompressError::BadMagic { expected: "SBK1" });
        }
        if input.len() < HEADER_LEN {
            return Err(CompressError::Truncated("block frame header".into()));
        }
        let block_size = u32::from_le_bytes(input[4..8].try_into().unwrap()) as usize;
        let orig_len = u64::from_le_bytes(input[8..16].try_into().unwrap()) as usize;
        let num_blocks = u32::from_le_bytes(input[16..20].try_into().unwrap()) as usize;
        if block_size == 0 {
            return Err(CompressError::Corrupt("zero block size".into()));
        }
        if num_blocks != orig_len.div_ceil(block_size) {
            return Err(CompressError::Corrupt(format!(
                "{num_blocks} blocks cannot cover {orig_len} bytes at {block_size}-byte blocks"
            )));
        }
        let table_len = num_blocks
            .checked_mul(ENTRY_LEN)
            .ok_or_else(|| CompressError::Corrupt("block count overflow".into()))?;
        if input.len() < HEADER_LEN + table_len {
            return Err(CompressError::Truncated("block offset table".into()));
        }
        let (table, body) = input[HEADER_LEN..].split_at(table_len);

        // Walk the table once to turn (len, crc) pairs into absolute
        // body offsets, validating total coverage before spawning work.
        let mut entries = Vec::with_capacity(num_blocks);
        let mut offset = 0usize;
        for e in table.chunks_exact(ENTRY_LEN) {
            let comp_len = u32::from_le_bytes(e[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(e[4..].try_into().unwrap());
            let end = offset
                .checked_add(comp_len)
                .filter(|&end| end <= body.len())
                .ok_or_else(|| CompressError::Truncated("block body".into()))?;
            entries.push((offset, comp_len, crc));
            offset = end;
        }
        if offset != body.len() {
            return Err(CompressError::Corrupt(format!(
                "table covers {offset} of {} body bytes",
                body.len()
            )));
        }

        let mut out = vec![0u8; orig_len];
        let slots: Vec<Mutex<&mut [u8]>> = out.chunks_mut(block_size).map(Mutex::new).collect();
        // First failure wins by block index so the reported error is
        // deterministic regardless of thread interleaving.
        let failure: Mutex<Option<(usize, CompressError)>> = Mutex::new(None);
        let failed = AtomicBool::new(false);
        self.run_blocks(num_blocks, |k| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let (off, len, stored) = entries[k];
            let z = &body[off..off + len];
            let result = {
                let computed = crc32c(z);
                if computed != stored {
                    Err(CompressError::ChecksumMismatch { stored, computed })
                } else {
                    self.inner.decompress(z).and_then(|decoded| {
                        let mut slot = slots[k].lock().expect("output slot poisoned");
                        if decoded.len() != slot.len() {
                            Err(CompressError::Corrupt(format!(
                                "block {k} decoded to {} of {} bytes",
                                decoded.len(),
                                slot.len()
                            )))
                        } else {
                            slot.copy_from_slice(&decoded);
                            Ok(())
                        }
                    })
                }
            };
            if let Err(e) = result {
                failed.store(true, Ordering::Relaxed);
                let mut slot = failure.lock().expect("failure slot poisoned");
                if slot.as_ref().is_none_or(|(idx, _)| k < *idx) {
                    *slot = Some((k, e));
                }
            }
        });
        if let Some((_, e)) = failure.into_inner().expect("failure slot poisoned") {
            return Err(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{IdentityCodec, RleCodec};
    use crate::deflate::DeflateCodec;

    fn grid_stream(n: i32) -> Vec<u8> {
        let mut data = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        data
    }

    #[test]
    fn name_composes_from_inner() {
        let c = BlockCodec::new(Arc::new(DeflateCodec::new()));
        assert_eq!(c.name(), "block-deflate");
        assert_eq!(c.block_size(), DEFAULT_BLOCK_SIZE);
    }

    #[test]
    fn roundtrip_across_sizes_and_alignments() {
        let pool = CodecPool::new(3);
        for block_size in [1usize, 7, 1024, 64 * 1024] {
            let c = BlockCodec::with_pool(Arc::new(DeflateCodec::new()), block_size, pool.clone());
            for data in [
                Vec::new(),
                vec![42u8],
                vec![7u8; block_size],         // exactly one block
                vec![9u8; block_size * 4],     // exactly aligned
                vec![1u8; block_size * 3 + 1], // one spare byte
                grid_stream(12),
            ] {
                let z = c.compress(&data);
                assert_eq!(
                    c.decompress(&z).unwrap(),
                    data,
                    "block_size {block_size}, len {}",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_frames_are_identical() {
        // Determinism: the engine's byte accounting requires the same
        // input to produce the same frame regardless of worker count.
        let data = grid_stream(20);
        let serial =
            BlockCodec::with_pool(Arc::new(DeflateCodec::new()), 32 * 1024, CodecPool::new(0));
        let parallel =
            BlockCodec::with_pool(Arc::new(DeflateCodec::new()), 32 * 1024, CodecPool::new(7));
        assert_eq!(serial.compress(&data), parallel.compress(&data));
    }

    #[test]
    fn pool_permits_are_returned() {
        let pool = CodecPool::new(2);
        let c = BlockCodec::with_pool(Arc::new(RleCodec), 1024, pool.clone());
        let data = vec![5u8; 100 * 1024];
        for _ in 0..4 {
            let z = c.compress(&data);
            assert_eq!(c.decompress(&z).unwrap(), data);
        }
        assert_eq!(pool.permits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn truncated_offset_table_rejected() {
        let c = BlockCodec::with_block_size(Arc::new(IdentityCodec), 1024);
        let z = c.compress(&vec![3u8; 10 * 1024]);
        // Cut inside the table (header is 20 bytes, table is 10 × 8).
        assert!(matches!(
            c.decompress(&z[..HEADER_LEN + 3 * ENTRY_LEN + 2]),
            Err(CompressError::Truncated(_))
        ));
        // Cut inside the body.
        assert!(c.decompress(&z[..z.len() - 5]).is_err());
        // Short header.
        assert!(c.decompress(&z[..HEADER_LEN - 1]).is_err());
        assert!(matches!(
            c.decompress(b"XXXX"),
            Err(CompressError::BadMagic { .. })
        ));
    }

    #[test]
    fn per_block_crc_catches_corruption() {
        let c = BlockCodec::with_block_size(Arc::new(IdentityCodec), 1024);
        let data: Vec<u8> = (0..40 * 1024).map(|i| (i % 251) as u8).collect();
        let z = c.compress(&data);
        // Flip a byte inside block 17's compressed body. With identity
        // inner, the only integrity check is the frame's own CRC.
        let body_start = HEADER_LEN + 40 * ENTRY_LEN;
        let mut bad = z.clone();
        bad[body_start + 17 * 1024 + 100] ^= 0x01;
        assert!(matches!(
            c.decompress(&bad),
            Err(CompressError::ChecksumMismatch { .. })
        ));
        // Flip a CRC in the table itself.
        let mut bad = z.clone();
        bad[HEADER_LEN + 5 * ENTRY_LEN + 4] ^= 0x80;
        assert!(matches!(
            c.decompress(&bad),
            Err(CompressError::ChecksumMismatch { .. })
        ));
        assert_eq!(c.decompress(&z).unwrap(), data);
    }

    #[test]
    fn header_field_corruption_rejected() {
        let c = BlockCodec::with_block_size(Arc::new(IdentityCodec), 1024);
        let z = c.compress(&vec![1u8; 5000]);
        // Zero block size.
        let mut bad = z.clone();
        bad[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(c.decompress(&bad).is_err());
        // Inconsistent block count.
        let mut bad = z.clone();
        bad[16..20].copy_from_slice(&99u32.to_le_bytes());
        assert!(c.decompress(&bad).is_err());
        // Inflated declared length.
        let mut bad = z;
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(c.decompress(&bad).is_err());
    }

    #[test]
    fn error_reporting_is_deterministic() {
        // Corrupt two blocks; the lowest index must win every time.
        let c = BlockCodec::with_pool(Arc::new(IdentityCodec), 512, CodecPool::new(4));
        let data = vec![8u8; 16 * 512];
        let z = c.compress(&data);
        let body_start = HEADER_LEN + 16 * ENTRY_LEN;
        let mut bad = z;
        bad[body_start + 3 * 512] ^= 1;
        bad[body_start + 11 * 512] ^= 1;
        let first = c.decompress(&bad).unwrap_err();
        for _ in 0..8 {
            assert_eq!(c.decompress(&bad).unwrap_err(), first);
        }
    }
}

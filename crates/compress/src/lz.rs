//! LZ-class speed-first codec: an LZ4-style block format with a
//! hash-table greedy matcher and no entropy stage.
//!
//! This fills the tier between [`IdentityCodec`](crate::IdentityCodec)
//! (fast, 1.0×) and [`DeflateCodec`](crate::DeflateCodec) (small,
//! slow): the token stream stores literal runs and back-references
//! verbatim — no Huffman pass — so compression is a single greedy scan
//! and decompression is pure byte copying. On IFile segment bytes the
//! target is ≥3× deflate's compression throughput at a still-useful
//! ratio, which is what makes it cheap enough to run on the shuffle
//! wire and spill path by default.
//!
//! # Token stream
//!
//! The classic LZ4 sequence layout: a token byte whose high nibble is
//! the literal-run length and low nibble the match length minus
//! [`MIN_MATCH`] (each nibble saturates at 15 and continues in 255-run
//! extension bytes), then the literals, then a 2-byte little-endian
//! back-reference offset (1..=65535), then any match-length extension
//! bytes. The final sequence is literals only — the stream ends after
//! them, with no offset. Matches never extend into the last
//! [`LAST_LITERALS`] bytes and the scan stops [`MFLIMIT`] bytes before
//! the end, so every stream terminates in a literal run.
//!
//! # Frame
//!
//! `"SLZ1" | method u8 | orig_len u64 | payload_crc u32 | payload` —
//! `method` 0 stores the input verbatim (the incompressible-input
//! escape: a frame never exceeds input + [`HEADER_LEN`] bytes), 1 is
//! the token stream. `payload_crc` is CRC-32C over the *compressed*
//! payload bytes, so a frame that crossed a wire or a spill file is
//! validated before any decoding work happens — corruption of the
//! transported representation fails loudly without relying on the
//! decoder stumbling over it structurally.
//!
//! The matcher reuses the u64 wide-compare prefix extender from
//! [`crate::lz77`] (eight bytes per probe via XOR trailing zeros) with
//! a flat hash table instead of hash chains — sized to the input
//! (2^8..2^14 slots, roughly one per four positions, so compressing a
//! few-KiB shuffle segment does not pay a fixed 64 KiB table init) —
//! one candidate per position, greedy emit, plus LZ4-style skip
//! acceleration so incompressible regions are scanned at increasing
//! stride instead of probing every byte.

use crate::checksum::crc32c;
use crate::codec::Codec;
use crate::error::CompressError;

const MAGIC: &[u8; 4] = b"SLZ1";
const METHOD_STORED: u8 = 0;
const METHOD_LZ: u8 = 1;

/// Frame header size: magic + method + orig_len + payload CRC.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// Minimum back-reference length (LZ4's 4; shorter matches cost more
/// to encode than the literals they replace).
pub const MIN_MATCH: usize = 4;
/// Maximum back-reference offset (2-byte field).
pub const MAX_OFFSET: usize = 65_535;
/// Matches never cover the last bytes of the input; the stream always
/// ends in a literal run.
const LAST_LITERALS: usize = 5;
/// The match scan stops this close to the end (LZ4's `mflimit`): the
/// tail is cheaper as literals than as bounds checks in the hot loop.
const MFLIMIT: usize = 12;

/// Hash-table size ceiling (64 KiB of `u32` slots at 14 bits).
const MAX_HASH_BITS: u32 = 14;
/// Hash-table size floor: small tables still need enough slots that
/// nearby positions don't evict each other constantly.
const MIN_HASH_BITS: u32 = 8;
/// After `2^SKIP_TRIGGER` failed probes the scan stride starts growing,
/// so incompressible input degrades toward a memcpy instead of a
/// per-byte hash probe.
const SKIP_TRIGGER: u32 = 6;

/// Hash-table bits for an `n`-byte input: roughly one slot per four
/// input positions, clamped to `[MIN_HASH_BITS, MAX_HASH_BITS]`.
/// Shuffle segments are typically a few KiB — initializing a fixed
/// 64 KiB table per segment would cost more than scanning the segment
/// itself, so the table scales with the input instead.
#[inline]
fn table_bits(n: usize) -> u32 {
    (usize::BITS - n.leading_zeros())
        .saturating_sub(2)
        .clamp(MIN_HASH_BITS, MAX_HASH_BITS)
}

/// Cap on speculative output preallocation while decoding adversarial
/// frames (a forged `orig_len` must not allocate unbounded memory).
const PREALLOC_CAP: usize = 1 << 20;

#[inline]
fn hash4(data: &[u8], i: usize, bits: u32) -> usize {
    let v = u32::from_le_bytes(data[i..i + 4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - bits)) as usize
}

/// Length of the common prefix of `data[cand..]` and `data[i..]`,
/// capped at `max_len` — the same u64 wide compare as
/// [`crate::lz77`]'s extender: eight bytes per step, the first
/// differing byte read out of the XOR's trailing zeros.
#[inline]
fn match_len(data: &[u8], cand: usize, i: usize, max_len: usize) -> usize {
    debug_assert!(cand < i);
    let mut l = 0usize;
    // In bounds: `l + 8 <= max_len <= data.len() - i` keeps the `i`
    // side inside `data`, and `cand < i` keeps the candidate side
    // strictly before it.
    while l + 8 <= max_len {
        let a = u64::from_le_bytes(data[cand + l..cand + l + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[i + l..i + l + 8].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max_len && data[cand + l] == data[i + l] {
        l += 1;
    }
    l
}

fn put_len_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, mlen: usize) {
    debug_assert!((1..=MAX_OFFSET).contains(&offset) && mlen >= MIN_MATCH);
    let ml = mlen - MIN_MATCH;
    let lit_nibble = literals.len().min(15);
    let ml_nibble = ml.min(15);
    out.push(((lit_nibble as u8) << 4) | ml_nibble as u8);
    if lit_nibble == 15 {
        put_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if ml_nibble == 15 {
        put_len_ext(out, ml - 15);
    }
}

fn emit_last_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_nibble = literals.len().min(15);
    out.push((lit_nibble as u8) << 4);
    if lit_nibble == 15 {
        put_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// Single-pass tokenizer: flat hash table, one candidate per position,
/// forward extension via the wide compare, backward extension into the
/// pending literal run, one-step lazy lookahead (a longer match
/// starting one byte later wins, zlib's default strategy — record
/// streams otherwise fragment into short stride matches), and skip
/// acceleration over incompressible stretches.
fn compress_tokens(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let search_end = n.saturating_sub(MFLIMIT);
    let mut anchor = 0usize;
    if search_end > 0 {
        let match_cap = n - LAST_LITERALS;
        let bits = table_bits(n);
        let mut table = vec![u32::MAX; 1 << bits];
        // Probe position `p`: record it in the table and return its
        // candidate with the forward match length, if it has one.
        let probe = |table: &mut [u32], p: usize| -> Option<(usize, usize)> {
            let h = hash4(input, p, bits);
            let cand = table[h] as usize;
            table[h] = p as u32;
            if cand != u32::MAX as usize
                && p - cand <= MAX_OFFSET
                && input[cand..cand + 4] == input[p..p + 4]
            {
                Some((cand, match_len(input, cand, p, match_cap - p)))
            } else {
                None
            }
        };
        let mut i = 0usize;
        let mut probes = 0u32;
        while i < search_end {
            let Some((cand, flen)) = probe(&mut table, i) else {
                i += 1 + (probes >> SKIP_TRIGGER) as usize;
                probes += 1;
                continue;
            };
            let (mut mi, mut mcand, mut mlen) = (i, cand, flen);
            if mi + 1 < search_end {
                if let Some((c2, l2)) = probe(&mut table, mi + 1) {
                    if l2 > mlen {
                        (mi, mcand, mlen) = (mi + 1, c2, l2);
                    }
                }
            }
            // Extend backward into the literal run — bytes already
            // covered by the match are cheaper as match length.
            let mut start = mi;
            let mut mstart = mcand;
            while start > anchor && mstart > 0 && input[start - 1] == input[mstart - 1] {
                start -= 1;
                mstart -= 1;
            }
            let mlen = mlen + (mi - start);
            emit_sequence(&mut out, &input[anchor..start], mi - mcand, mlen);
            i = start + mlen;
            anchor = i;
            probes = 0;
            // Seed the last in-match position so adjacent repeats chain
            // (the bulk of the matched region is skipped, as in LZ4).
            if i >= 2 && i < search_end {
                table[hash4(input, i - 2, bits)] = (i - 2) as u32;
            }
        }
    }
    emit_last_literals(&mut out, &input[anchor..]);
    out
}

fn read_ext(payload: &[u8], p: &mut usize) -> Result<usize, CompressError> {
    let mut total = 0usize;
    loop {
        let Some(&b) = payload.get(*p) else {
            return Err(CompressError::Truncated(
                "lz length extension ran off the stream".into(),
            ));
        };
        *p += 1;
        total = total
            .checked_add(b as usize)
            .ok_or_else(|| CompressError::Corrupt("lz length extension overflows".into()))?;
        if b < 255 {
            return Ok(total);
        }
    }
}

/// Decode a token stream into exactly `orig_len` bytes. Every read is
/// bounds-checked and every length validated against `orig_len`, so a
/// malformed stream errors without panicking or over-allocating.
fn decompress_tokens(payload: &[u8], orig_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(orig_len.min(PREALLOC_CAP));
    let mut p = 0usize;
    loop {
        let Some(&token) = payload.get(p) else {
            return Err(CompressError::Truncated(
                "lz token stream ended without a final literal run".into(),
            ));
        };
        p += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit = lit
                .checked_add(read_ext(payload, &mut p)?)
                .ok_or_else(|| CompressError::Corrupt("lz literal length overflows".into()))?;
        }
        let end = p
            .checked_add(lit)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| {
                CompressError::Truncated(format!(
                    "lz literal run of {lit} bytes exceeds the stream"
                ))
            })?;
        if out.len().checked_add(lit).is_none_or(|v| v > orig_len) {
            return Err(CompressError::Corrupt(format!(
                "lz output exceeds the declared {orig_len} bytes"
            )));
        }
        out.extend_from_slice(&payload[p..end]);
        p = end;
        if p == payload.len() {
            break; // final sequence: literals only, no offset
        }
        if p + 2 > payload.len() {
            return Err(CompressError::Truncated("lz match offset".into()));
        }
        let offset = u16::from_le_bytes(payload[p..p + 2].try_into().unwrap()) as usize;
        p += 2;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::Corrupt(format!(
                "lz offset {offset} outside the {} decoded bytes",
                out.len()
            )));
        }
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            mlen = mlen
                .checked_add(read_ext(payload, &mut p)?)
                .ok_or_else(|| CompressError::Corrupt("lz match length overflows".into()))?;
        }
        let mlen = mlen + MIN_MATCH;
        if out.len().checked_add(mlen).is_none_or(|v| v > orig_len) {
            return Err(CompressError::Corrupt(format!(
                "lz output exceeds the declared {orig_len} bytes"
            )));
        }
        // Overlap-safe copy: each step copies at most the bytes that
        // already exist past `src`, doubling the available span, so
        // offset-1 runs expand correctly.
        let start = out.len() - offset;
        let mut copied = 0usize;
        while copied < mlen {
            let src = start + copied;
            let take = (mlen - copied).min(out.len() - src);
            out.extend_from_within(src..src + take);
            copied += take;
        }
    }
    if out.len() != orig_len {
        return Err(CompressError::Corrupt(format!(
            "lz stream decoded {} bytes, frame declared {orig_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Compress `input` into one framed lz block. Falls back to stored mode
/// when the token stream would not shrink the input, so the frame never
/// exceeds `input.len() + HEADER_LEN` bytes.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = compress_tokens(input);
    let (method, payload): (u8, &[u8]) = if tokens.len() < input.len() {
        (METHOD_LZ, &tokens)
    } else {
        (METHOD_STORED, input)
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(method);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decompress one framed lz block. The payload CRC (over the wire
/// bytes, not the decoded output) is verified before any decoding.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < HEADER_LEN || &input[..4] != MAGIC {
        return Err(CompressError::BadMagic { expected: "SLZ1" });
    }
    let method = input[4];
    let orig_len = u64::from_le_bytes(input[5..13].try_into().unwrap());
    let orig_len = usize::try_from(orig_len)
        .map_err(|_| CompressError::Corrupt(format!("lz frame declares {orig_len} bytes")))?;
    let stored_crc = u32::from_le_bytes(input[13..17].try_into().unwrap());
    let payload = &input[HEADER_LEN..];
    let computed = crc32c(payload);
    if computed != stored_crc {
        return Err(CompressError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    match method {
        METHOD_STORED => {
            if payload.len() != orig_len {
                return Err(CompressError::Corrupt(format!(
                    "stored lz payload is {} bytes, frame declared {orig_len}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        METHOD_LZ => decompress_tokens(payload, orig_len),
        other => Err(CompressError::Corrupt(format!(
            "unknown lz frame method {other}"
        ))),
    }
}

/// The lz format as a pluggable [`Codec`]: `lz` in the factory grammar,
/// composable as `block-lz` (parallel block frame) and `transform+lz`
/// (stride transform over residuals).
#[derive(Debug, Clone, Copy, Default)]
pub struct LzCodec;

impl Codec for LzCodec {
    fn name(&self) -> &str {
        "lz"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        compress(input)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        decompress(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let z = compress(data);
        assert_eq!(decompress(&z).unwrap(), data, "len {}", data.len());
        z.len()
    }

    fn grid_stream(n: i32) -> Vec<u8> {
        let mut data = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        data
    }

    fn lcg_bytes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcd");
        roundtrip(b"abcdabcdabcd");
    }

    #[test]
    fn runs_and_grids_compress() {
        let run = vec![7u8; 100_000];
        assert!(roundtrip(&run) < 1000, "long run must collapse");
        // Raw grid keys land near 34% (≈2.9×) — the big ratios come
        // from composing transform+lz; here we pin the matcher finds
        // the stride structure at all.
        let grid = grid_stream(20);
        let z = roundtrip(&grid);
        assert!(
            z * 5 < grid.len() * 2,
            "grid keys should compress to <40%: {z} of {}",
            grid.len()
        );
    }

    #[test]
    fn incompressible_input_stays_stored_and_bounded() {
        let data = lcg_bytes(50_000, 0x1234_5678);
        let z = compress(&data);
        assert!(z.len() <= data.len() + HEADER_LEN);
        assert_eq!(z[4], METHOD_STORED, "random bytes must take the escape");
        assert_eq!(decompress(&z).unwrap(), data);
    }

    #[test]
    fn mixed_and_boundary_shapes_roundtrip() {
        // Long literal runs needing extension bytes, matches right at
        // the mflimit tail, and every small size near the cutoffs.
        for n in 0..40 {
            roundtrip(&vec![b'x'; n]);
            roundtrip(&lcg_bytes(n, n as u64 + 1));
        }
        let mut data = lcg_bytes(300, 9); // 300 literals: 15 + ext
        data.extend_from_slice(&data.clone()); // then one big match
        roundtrip(&data);
        let mut tail = vec![0u8; 1000];
        tail.extend_from_slice(&lcg_bytes(13, 3)); // run ends near mflimit
        roundtrip(&tail);
    }

    #[test]
    fn frame_corruption_is_detected_not_panicked() {
        let data = grid_stream(12);
        let z = compress(&data);
        // Bad magic.
        let mut bad = z.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decompress(&bad),
            Err(CompressError::BadMagic { .. })
        ));
        // Every single-byte flip must error (the payload CRC covers the
        // wire bytes; header flips hit length/method/CRC validation).
        for i in 0..z.len() {
            let mut bad = z.clone();
            bad[i] ^= 0x01;
            assert!(decompress(&bad).is_err(), "flip at {i} went undetected");
        }
        // Every truncation must error.
        for keep in 0..z.len() {
            assert!(decompress(&z[..keep]).is_err(), "truncation to {keep}");
        }
    }

    #[test]
    fn adversarial_token_streams_error_cleanly() {
        let frame = |payload: &[u8], orig_len: u64| {
            let mut f = Vec::new();
            f.extend_from_slice(MAGIC);
            f.push(METHOD_LZ);
            f.extend_from_slice(&orig_len.to_le_bytes());
            f.extend_from_slice(&crc32c(payload).to_le_bytes());
            f.extend_from_slice(payload);
            f
        };
        // Offset pointing before the start of the output.
        assert!(decompress(&frame(&[0x14, b'z', 9, 0, 0], 100)).is_err());
        // Zero offset.
        assert!(decompress(&frame(&[0x14, b'z', 0, 0, 0], 100)).is_err());
        // Declared length never reached.
        assert!(decompress(&frame(&[0x10, b'z'], 50)).is_err());
        // Output overrunning the declared length.
        assert!(decompress(&frame(&[0x1F, b'z', 1, 0, 200, 0, 0], 3)).is_err());
        // Length extension running off the stream.
        assert!(decompress(&frame(&[0xF0, 255, 255], 10)).is_err());
        // Giant forged orig_len must not allocate before erroring.
        assert!(decompress(&frame(&[0x10, b'z'], u64::MAX)).is_err());
    }

    #[test]
    fn compresses_faster_than_deflate_on_segment_shaped_bytes() {
        // The design target: ≥3× deflate compression throughput on the
        // paper's grid-key workload. Enforced with margin by the gated
        // bench; asserted loosely here so a matcher regression fails
        // fast in unit tests too (debug builds: require >1×).
        let data = grid_stream(24);
        let deflate = crate::DeflateCodec::new();
        let t0 = std::time::Instant::now();
        let _ = compress(&data);
        let lz_t = t0.elapsed();
        let t0 = std::time::Instant::now();
        let _ = deflate.compress(&data);
        let deflate_t = t0.elapsed();
        assert!(
            lz_t < deflate_t,
            "lz compress ({lz_t:?}) should beat deflate ({deflate_t:?})"
        );
    }

    #[test]
    fn codec_trait_roundtrips_and_names() {
        let c = LzCodec;
        assert_eq!(c.name(), "lz");
        let data = grid_stream(10);
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }
}

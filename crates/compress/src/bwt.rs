//! Burrows–Wheeler transform over cyclic rotations.
//!
//! Forward: sort all rotations of the block (prefix-doubling, O(n log² n))
//! and emit the last column plus the index of the original rotation.
//! Inverse: the classic LF-mapping walk.

use crate::error::CompressError;

/// Forward BWT. Returns the last column and the primary index (the sorted
/// position of the original rotation).
pub fn bwt_encode(data: &[u8]) -> (Vec<u8>, u32) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    if n == 1 {
        return (data.to_vec(), 0);
    }

    // Prefix doubling over cyclic rotations.
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = data.iter().map(|&b| b as u32).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            (rank[i], rank[(i + k) % n])
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        let mut distinct = 1u32;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            if key(cur) != key(prev) {
                distinct += 1;
            }
            tmp[cur as usize] = distinct - 1;
        }
        std::mem::swap(&mut rank, &mut tmp);
        if distinct as usize == n {
            break;
        }
        k *= 2;
        if k >= n {
            // Ranks of (i, i+k) pairs with k >= n wrap fully; one more
            // pass always separates remaining ties for non-periodic data,
            // but periodic blocks (e.g. "abab") never become distinct.
            // Break ties deterministically by index.
            sa.sort_unstable_by_key(|&i| (rank[i as usize], i));
            break;
        }
    }

    let last: Vec<u8> = sa.iter().map(|&i| data[(i as usize + n - 1) % n]).collect();
    let primary = sa
        .iter()
        .position(|&i| i == 0)
        .expect("original rotation present") as u32;
    (last, primary)
}

/// Inverse BWT.
pub fn bwt_decode(last: &[u8], primary: u32) -> Result<Vec<u8>, CompressError> {
    let n = last.len();
    if n == 0 {
        return if primary == 0 {
            Ok(Vec::new())
        } else {
            Err(CompressError::Corrupt(
                "primary index in empty block".into(),
            ))
        };
    }
    if primary as usize >= n {
        return Err(CompressError::Corrupt(format!(
            "primary index {primary} out of range {n}"
        )));
    }

    // First-column start offset of each byte value.
    let mut count = [0usize; 256];
    for &b in last {
        count[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for b in 0..256 {
        starts[b] = acc;
        acc += count[b];
    }

    // LF mapping: row i in the last column corresponds to row lf[i] of the
    // first column.
    let mut lf = vec![0u32; n];
    let mut seen = [0usize; 256];
    for (i, &b) in last.iter().enumerate() {
        lf[i] = (starts[b as usize] + seen[b as usize]) as u32;
        seen[b as usize] += 1;
    }

    let mut out = vec![0u8; n];
    let mut row = primary as usize;
    for slot in out.iter_mut().rev() {
        *slot = last[row];
        row = lf[row] as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let (last, primary) = bwt_encode(data);
        assert_eq!(last.len(), data.len());
        assert_eq!(bwt_decode(&last, primary).unwrap(), data);
    }

    #[test]
    fn banana() {
        let (last, primary) = bwt_encode(b"banana");
        // Sorted rotations of "banana": abanan, anaban, ananab, banana,
        // nabana, nanaba → last column "nnbaaa", original at row 3.
        assert_eq!(&last, b"nnbaaa");
        assert_eq!(primary, 3);
        roundtrip(b"banana");
    }

    #[test]
    fn trivial_inputs() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(b"zz");
        roundtrip(b"ab");
    }

    #[test]
    fn periodic_inputs() {
        // Fully periodic blocks exercise the tie-break path.
        roundtrip(b"abababab");
        roundtrip(&[0u8; 64]);
        roundtrip(b"xyxyxyxyxyxyxy");
    }

    #[test]
    fn random_inputs() {
        let mut state = 99u64;
        for len in [10usize, 100, 1000, 4096] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn text_groups_similar_context() {
        // BWT of English-like text clusters equal characters.
        let data = b"she sells sea shells by the sea shore ".repeat(10);
        let (last, _) = bwt_encode(&data);
        // Count adjacent equal pairs; BWT output should have many.
        let pairs = last.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            pairs * 2 > last.len() / 2,
            "BWT should create runs: {pairs} pairs in {}",
            last.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn decode_rejects_bad_primary() {
        let (last, _) = bwt_encode(b"hello");
        assert!(bwt_decode(&last, 5).is_err());
        assert!(bwt_decode(&[], 1).is_err());
    }
}

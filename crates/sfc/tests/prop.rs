//! Property tests for the space-filling-curve crate.

use proptest::prelude::*;
use scihadoop_grid::{BoundingBox, Coord, Shape};
use scihadoop_sfc::{
    box_runs, collapse_sorted, zorder_box_runs, Curve, CurveRun, HilbertCurve, ZOrderCurve,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fast quadrant-descent decomposition must agree exactly with
    /// exhaustive cell enumeration on arbitrary boxes.
    #[test]
    fn zorder_fast_ranges_equal_exhaustive(
        cx in 0i32..24, cy in 0i32..24,
        w in 1u32..9, h in 1u32..9,
    ) {
        let bits = 5;
        let bbox = BoundingBox::new(Coord::new(vec![cx, cy]), Shape::new(vec![w, h])).unwrap();
        let curve = ZOrderCurve::with_bits(2, bits);
        prop_assert_eq!(
            zorder_box_runs(&bbox, bits).unwrap(),
            box_runs(&curve, &bbox).unwrap()
        );
    }

    /// Same property in three dimensions.
    #[test]
    fn zorder_fast_ranges_equal_exhaustive_3d(
        corner in proptest::collection::vec(0i32..6, 3),
        shape in proptest::collection::vec(1u32..4, 3),
    ) {
        let bits = 3;
        let bbox = BoundingBox::new(Coord::new(corner), Shape::new(shape)).unwrap();
        let curve = ZOrderCurve::with_bits(3, bits);
        prop_assert_eq!(
            zorder_box_runs(&bbox, bits).unwrap(),
            box_runs(&curve, &bbox).unwrap()
        );
    }

    /// Hilbert adjacency holds along arbitrary index segments, not just
    /// from zero.
    #[test]
    fn hilbert_segments_are_connected(start in 0u128..4000, len in 1u128..64) {
        let h = HilbertCurve::with_bits(2, 6);
        let end = (start + len).min((1u128 << 12) - 1);
        let mut prev = h.coords_of(start).unwrap();
        for i in start + 1..=end {
            let cur = h.coords_of(i).unwrap();
            let dist: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            prop_assert_eq!(dist, 1);
            prev = cur;
        }
    }

    /// collapse_sorted over any sorted index list covers exactly the
    /// input set with maximal runs.
    #[test]
    fn collapse_sorted_is_exact_and_maximal(
        set in proptest::collection::btree_set(0u128..500, 0..64),
    ) {
        let indices: Vec<u128> = set.iter().copied().collect();
        let runs = collapse_sorted(&indices);
        // Coverage.
        let covered: Vec<u128> = runs
            .iter()
            .flat_map(|r| r.start..=r.end)
            .collect();
        prop_assert_eq!(&covered, &indices);
        // Maximality: consecutive runs are separated by a gap.
        for w in runs.windows(2) {
            prop_assert!(w[0].end + 1 < w[1].start);
        }
    }

    /// CurveRun::overlaps is symmetric and consistent with contains.
    #[test]
    fn curve_run_overlap_symmetry(
        a_start in 0u128..100, a_len in 1u128..20,
        b_start in 0u128..100, b_len in 1u128..20,
    ) {
        let a = CurveRun { start: a_start, end: a_start + a_len - 1 };
        let b = CurveRun { start: b_start, end: b_start + b_len - 1 };
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        let any_shared = (a.start..=a.end).any(|i| b.contains(i));
        prop_assert_eq!(a.overlaps(&b), any_shared);
    }
}

//! Space-filling curves for key aggregation.
//!
//! Paper §IV-A: aggregation in the keys' n-dimensional space is hard
//! (suspected NP-hard), so the space is reduced to one dimension with a
//! space-filling curve; "each contiguous range of indices becomes an
//! aggregate key". The paper uses a Z-order curve "due to speed and ease
//! of implementation" and notes the Hilbert curve clusters better (Moon
//! et al.) at higher cost — both are implemented here, plus row-major as
//! the trivial baseline, so the trade-off can be measured
//! (`bench_curve_ablation`).

pub mod curve;
pub mod hilbert;
pub mod ranges;
pub mod rowmajor;
pub mod zorder;
pub mod zranges;

pub use curve::{index_prefix48, Curve, CurveIndex};
pub use hilbert::HilbertCurve;
pub use ranges::{box_runs, clustering_run_count, collapse_sorted, CurveRun};
pub use rowmajor::RowMajorCurve;
pub use zorder::ZOrderCurve;
pub use zranges::zorder_box_runs;

//! n-dimensional Hilbert curve via Skilling's transpose algorithm.
//!
//! Paper §IV-A: "Moon et al. have shown the Hilbert curve to have better
//! clustering properties than the Z-order curve, but the Hilbert curve
//! has more overhead." We implement it so the clustering/CPU trade-off is
//! measurable (`bench_curve_ablation`).
//!
//! The implementation follows John Skilling, *"Programming the Hilbert
//! curve"*, AIP Conf. Proc. 707 (2004): coordinates are converted to/from
//! a "transpose" form in place, and the Hilbert index is the bit
//! interleave of the transpose.

use crate::curve::{check_coords, check_index, Curve, CurveIndex};
use crate::zorder::ZOrderCurve;
use scihadoop_grid::GridError;

/// n-dimensional Hilbert curve.
#[derive(Debug, Clone)]
pub struct HilbertCurve {
    ndims: usize,
    bits: u32,
}

impl HilbertCurve {
    /// A Hilbert curve over `ndims` dimensions with 32-bit coordinates.
    pub fn new(ndims: usize) -> Self {
        Self::with_bits(ndims, 32)
    }

    /// A Hilbert curve with reduced per-dimension resolution.
    pub fn with_bits(ndims: usize, bits: u32) -> Self {
        assert!(ndims >= 1, "need at least one dimension");
        assert!((1..=32).contains(&bits), "bits per dim must be 1..=32");
        assert!(
            ndims as u32 * bits <= 128,
            "total index width exceeds 128 bits"
        );
        HilbertCurve { ndims, bits }
    }

    /// Skilling's `AxestoTranspose`: convert coordinates into the Hilbert
    /// transpose form, in place.
    fn axes_to_transpose(x: &mut [u32], bits: u32) {
        let n = x.len();
        let m = 1u32 << (bits - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p; // invert low bits of x[0]
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Skilling's `TransposetoAxes`: inverse of
    /// [`HilbertCurve::axes_to_transpose`].
    fn transpose_to_axes(x: &mut [u32], bits: u32) {
        let n = x.len();
        // Gray decode by H ^ (H/2).
        let mut t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work. q ranges over powers of two below 2^bits;
        // u64 arithmetic keeps the bits=32 endpoint representable.
        let end: u64 = 1u64 << bits;
        let mut q: u64 = 2;
        while q != end {
            let p = (q - 1) as u32;
            let qb = q as u32;
            for i in (0..n).rev() {
                if x[i] & qb != 0 {
                    x[0] ^= p;
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Pack the transpose form into a single index: interleave the bits of
    /// the transpose, dimension 0 most significant.
    fn pack(transpose: &[u32], bits: u32) -> CurveIndex {
        ZOrderCurve::interleave(transpose, bits)
    }

    /// Inverse of [`HilbertCurve::pack`].
    fn unpack(index: CurveIndex, ndims: usize, bits: u32) -> Vec<u32> {
        ZOrderCurve::deinterleave(index, ndims, bits)
    }
}

impl Curve for HilbertCurve {
    fn ndims(&self) -> usize {
        self.ndims
    }

    fn bits_per_dim(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn index_of(&self, coords: &[u32]) -> Result<CurveIndex, GridError> {
        check_coords(coords, self.ndims, self.bits)?;
        if self.ndims == 1 {
            return Ok(coords[0] as CurveIndex);
        }
        let mut x = coords.to_vec();
        Self::axes_to_transpose(&mut x, self.bits);
        Ok(Self::pack(&x, self.bits))
    }

    fn coords_of(&self, index: CurveIndex) -> Result<Vec<u32>, GridError> {
        check_index(index, self.ndims, self.bits)?;
        if self.ndims == 1 {
            return Ok(vec![index as u32]);
        }
        let mut x = Self::unpack(index, self.ndims, self.bits);
        Self::transpose_to_axes(&mut x, self.bits);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_2d_curve_is_the_classic_u() {
        // The order-2, 2-D Hilbert curve visits the canonical sequence.
        let h = HilbertCurve::with_bits(2, 2);
        let visited: Vec<Vec<u32>> = (0..16).map(|i| h.coords_of(i).unwrap()).collect();
        // Start and end at opposite bottom corners (standard orientation).
        assert_eq!(visited[0], vec![0, 0]);
        assert_eq!(visited[15], vec![3, 0]);
        // Every cell visited exactly once.
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn consecutive_indices_are_grid_neighbours() {
        // The defining property of the Hilbert curve: successive points
        // differ by exactly 1 in exactly one coordinate.
        for ndims in 2..=3 {
            let h = HilbertCurve::with_bits(ndims, 3);
            let side = 1u32 << 3;
            let total = (side as u128).pow(ndims as u32);
            let mut prev = h.coords_of(0).unwrap();
            for i in 1..total {
                let cur = h.coords_of(i).unwrap();
                let dist: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
                assert_eq!(dist, 1, "index {i}: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for ndims in 1..=4 {
            let h = HilbertCurve::with_bits(ndims, 2);
            let total = 1u128 << (2 * ndims as u32);
            for idx in 0..total {
                let c = h.coords_of(idx).unwrap();
                assert_eq!(h.index_of(&c).unwrap(), idx, "ndims={ndims} idx={idx}");
            }
        }
    }

    #[test]
    fn full_width_roundtrip() {
        let h = HilbertCurve::new(3);
        for coords in [
            [0u32, 0, 0],
            [u32::MAX, 0, 1],
            [0xDEAD_BEEF, 0xCAFE_F00D, 7],
        ] {
            let idx = h.index_of(&coords).unwrap();
            assert_eq!(h.coords_of(idx).unwrap(), coords);
        }
    }

    #[test]
    fn rejects_bad_input() {
        let h = HilbertCurve::with_bits(2, 4);
        assert!(h.index_of(&[16, 0]).is_err());
        assert!(h.index_of(&[1]).is_err());
        assert!(h.coords_of(1 << 9).is_err());
    }
}

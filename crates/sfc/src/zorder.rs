//! Z-order (Morton) curve: bit interleaving.
//!
//! The paper's choice (§IV-A): "Currently, a Z-order curve is used due to
//! speed and ease of implementation." The index of a point is formed by
//! interleaving the bits of its coordinates, most significant first, with
//! dimension 0 occupying the most significant position of each group.

use crate::curve::{check_coords, check_index, Curve, CurveIndex};
use scihadoop_grid::GridError;

/// n-dimensional Z-order (Morton) curve.
#[derive(Debug, Clone)]
pub struct ZOrderCurve {
    ndims: usize,
    bits: u32,
}

impl ZOrderCurve {
    /// A Z-order curve over `ndims` dimensions with full 32-bit
    /// coordinates (as the paper uses: "the mapping is from n 32-bit
    /// integers to a single 32n-bit integer").
    pub fn new(ndims: usize) -> Self {
        Self::with_bits(ndims, 32)
    }

    /// A Z-order curve with reduced per-dimension resolution; useful when
    /// the grid is small and shorter indices are desirable.
    pub fn with_bits(ndims: usize, bits: u32) -> Self {
        assert!(ndims >= 1, "need at least one dimension");
        assert!((1..=32).contains(&bits), "bits per dim must be 1..=32");
        assert!(
            ndims as u32 * bits <= 128,
            "total index width exceeds 128 bits"
        );
        ZOrderCurve { ndims, bits }
    }

    /// Interleave the low `bits` bits of each coordinate.
    pub(crate) fn interleave(coords: &[u32], bits: u32) -> CurveIndex {
        let mut index: CurveIndex = 0;
        for bit in (0..bits).rev() {
            for &c in coords {
                index = (index << 1) | (((c >> bit) & 1) as CurveIndex);
            }
        }
        index
    }

    /// Inverse of [`ZOrderCurve::interleave`].
    pub(crate) fn deinterleave(index: CurveIndex, ndims: usize, bits: u32) -> Vec<u32> {
        let mut coords = vec![0u32; ndims];
        let mut idx = index;
        for bit in 0..bits {
            for d in (0..ndims).rev() {
                coords[d] |= ((idx & 1) as u32) << bit;
                idx >>= 1;
            }
        }
        coords
    }
}

impl Curve for ZOrderCurve {
    fn ndims(&self) -> usize {
        self.ndims
    }

    fn bits_per_dim(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> &'static str {
        "z-order"
    }

    fn index_of(&self, coords: &[u32]) -> Result<CurveIndex, GridError> {
        check_coords(coords, self.ndims, self.bits)?;
        Ok(Self::interleave(coords, self.bits))
    }

    fn coords_of(&self, index: CurveIndex) -> Result<Vec<u32>, GridError> {
        check_index(index, self.ndims, self.bits)?;
        Ok(Self::deinterleave(index, self.ndims, self.bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dim_interleave_matches_hand_computation() {
        let z = ZOrderCurve::with_bits(2, 4);
        // (x=0b10, y=0b11): interleaved MSB-first x,y -> 0b1101 = 13.
        assert_eq!(z.index_of(&[0b10, 0b11]).unwrap(), 0b1101);
        // Unit square walk: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
        assert_eq!(z.index_of(&[0, 0]).unwrap(), 0);
        assert_eq!(z.index_of(&[0, 1]).unwrap(), 1);
        assert_eq!(z.index_of(&[1, 0]).unwrap(), 2);
        assert_eq!(z.index_of(&[1, 1]).unwrap(), 3);
    }

    #[test]
    fn fig6_numbering_of_paper() {
        // Paper Fig. 6 numbers a 4x4 grid with a Z-order curve; cell
        // indices 6-7, 9-10, 13 form the shaded region. Verify the curve
        // produces the canonical 4x4 Z numbering.
        let z = ZOrderCurve::with_bits(2, 2);
        // Canonical Z-order on 4x4 with (row, col):
        assert_eq!(z.index_of(&[1, 1]).unwrap(), 3);
        assert_eq!(z.index_of(&[3, 3]).unwrap(), 15);
        assert_eq!(z.index_of(&[0, 2]).unwrap(), 4);
        assert_eq!(z.index_of(&[2, 0]).unwrap(), 8);
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for ndims in 1..=4 {
            let z = ZOrderCurve::with_bits(ndims, 3);
            let side = 1u32 << 3;
            let cells = (side as u128).pow(ndims as u32);
            for idx in 0..cells {
                let c = z.coords_of(idx).unwrap();
                assert_eq!(z.index_of(&c).unwrap(), idx);
            }
        }
    }

    #[test]
    fn full_32bit_coords_roundtrip() {
        let z = ZOrderCurve::new(4);
        let coords = [u32::MAX, 0, 0xDEAD_BEEF, 0x1234_5678];
        let idx = z.index_of(&coords).unwrap();
        assert_eq!(z.coords_of(idx).unwrap(), coords);
    }

    #[test]
    fn rejects_out_of_range() {
        let z = ZOrderCurve::with_bits(2, 4);
        assert!(z.index_of(&[16, 0]).is_err());
        assert!(z.index_of(&[0]).is_err());
        assert!(z.coords_of(256).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds 128 bits")]
    fn too_many_total_bits_panics() {
        let _ = ZOrderCurve::with_bits(5, 32);
    }

    #[test]
    fn locality_within_aligned_quadrants() {
        // All cells of an aligned 2^k-cube occupy one contiguous index
        // range — the property aggregation exploits.
        let z = ZOrderCurve::with_bits(2, 4);
        let mut indices: Vec<_> = (4..8)
            .flat_map(|x| (4..8).map(move |y| (x, y)))
            .map(|(x, y)| z.index_of(&[x, y]).unwrap())
            .collect();
        indices.sort_unstable();
        for w in indices.windows(2) {
            assert_eq!(w[1], w[0] + 1, "aligned quadrant must be contiguous");
        }
    }
}

//! Efficient Z-order range decomposition of axis-aligned boxes.
//!
//! [`box_runs`](crate::ranges::box_runs) enumerates every cell — fine for
//! aggregation-time analysis, hopeless for carving reducer ranges out of
//! an 8000×8000 query region. This module decomposes a box into maximal
//! Z-order runs by recursive quadrant descent (the classic
//! LITMAX/BIGMIN-style subdivision of Tropf & Herzog, 1981): an aligned
//! quadrant fully inside the box contributes one run `[prefix·0…0,
//! prefix·1…1]` without visiting its cells.

use crate::ranges::CurveRun;
use crate::zorder::ZOrderCurve;
use scihadoop_grid::{BoundingBox, GridError};

/// Decompose `bbox` (non-negative coordinates) into maximal contiguous
/// Z-order runs for an `ndims`-dimensional curve with `bits` per
/// dimension. Equivalent to `box_runs(&ZOrderCurve::with_bits(..), bbox)`
/// but O(runs · bits) instead of O(cells · log cells).
pub fn zorder_box_runs(bbox: &BoundingBox, bits: u32) -> Result<Vec<CurveRun>, GridError> {
    let ndims = bbox.ndims();
    assert!((1..=32).contains(&bits));
    assert!(ndims as u32 * bits <= 128);
    if bbox.shape().is_empty() {
        return Ok(Vec::new());
    }
    let lo = bbox.corner().to_unsigned()?;
    let hi = bbox.upper_corner().to_unsigned()?;
    let limit = if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    for (&l, &h) in lo.iter().zip(&hi) {
        if l > limit || h > limit {
            return Err(GridError::OutOfBounds {
                coord: hi.iter().map(|&c| c as i32).collect(),
                context: format!("z-order space with {bits} bits/dim"),
            });
        }
    }

    let mut runs = Vec::new();
    descend(&lo, &hi, &vec![0u32; ndims], bits, bits, &mut runs);
    // The descent emits runs in ascending order; merge touching ones.
    let mut merged: Vec<CurveRun> = Vec::with_capacity(runs.len());
    for r in runs {
        match merged.last_mut() {
            Some(last) if last.end + 1 == r.start => last.end = r.end,
            _ => merged.push(r),
        }
    }
    Ok(merged)
}

/// Recursive quadrant descent. `prefix` holds the high bits chosen so
/// far for each dimension (left-aligned: the low `level` bits are still
/// free). Quadrants fully inside [lo, hi] emit one run; quadrants fully
/// outside are pruned; the rest recurse.
fn descend(
    lo: &[u32],
    hi: &[u32],
    prefix: &[u32],
    level: u32,
    bits: u32,
    runs: &mut Vec<CurveRun>,
) {
    let ndims = prefix.len();
    // Cell range covered by this quadrant in each dimension.
    let span: u32 = if level >= 32 {
        u32::MAX
    } else {
        (1u32 << level) - 1
    };
    let q_lo: Vec<u32> = prefix.to_vec();
    let q_hi: Vec<u32> = prefix.iter().map(|&p| p | span).collect();

    // Disjoint?
    if (0..ndims).any(|d| q_hi[d] < lo[d] || q_lo[d] > hi[d]) {
        return;
    }
    // Fully contained → one run.
    if (0..ndims).all(|d| q_lo[d] >= lo[d] && q_hi[d] <= hi[d]) {
        let start = ZOrderCurve::interleave(&q_lo, bits);
        let total_bits = level * ndims as u32;
        let len_minus_1 = if total_bits >= 128 {
            u128::MAX
        } else {
            (1u128 << total_bits) - 1
        };
        runs.push(CurveRun {
            start,
            end: start + len_minus_1,
        });
        return;
    }
    debug_assert!(
        level > 0,
        "level-0 quadrant is a single cell, always contained or disjoint"
    );
    // Recurse into the 2^ndims children in Z order (child index bits are
    // dimension 0 most significant, matching ZOrderCurve::interleave).
    let child_bit = level - 1;
    for child in 0..(1u32 << ndims) {
        let child_prefix: Vec<u32> = (0..ndims)
            .map(|d| {
                let bit = (child >> (ndims - 1 - d)) & 1;
                prefix[d] | (bit << child_bit)
            })
            .collect();
        descend(lo, hi, &child_prefix, child_bit, bits, runs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::box_runs;
    use scihadoop_grid::{Coord, Shape};

    fn bb(corner: Vec<i32>, shape: Vec<u32>) -> BoundingBox {
        BoundingBox::new(Coord::new(corner), Shape::new(shape)).unwrap()
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        let bits = 5;
        let curve = ZOrderCurve::with_bits(2, bits);
        for bbox in [
            bb(vec![0, 0], vec![4, 4]),
            bb(vec![1, 1], vec![4, 4]),
            bb(vec![3, 7], vec![9, 5]),
            bb(vec![0, 0], vec![32, 32]),
            bb(vec![31, 31], vec![1, 1]),
            bb(vec![5, 0], vec![1, 32]),
        ] {
            let fast = zorder_box_runs(&bbox, bits).unwrap();
            let slow = box_runs(&curve, &bbox).unwrap();
            assert_eq!(fast, slow, "bbox {bbox:?}");
        }
    }

    #[test]
    fn matches_exhaustive_in_3d() {
        let bits = 3;
        let curve = ZOrderCurve::with_bits(3, bits);
        let bbox = bb(vec![1, 2, 3], vec![5, 4, 3]);
        assert_eq!(
            zorder_box_runs(&bbox, bits).unwrap(),
            box_runs(&curve, &bbox).unwrap()
        );
    }

    #[test]
    fn aligned_cube_is_one_run_without_enumeration() {
        // A 2^20-sided aligned square would be 10^12 cells; the
        // decomposer must handle it instantly.
        let bbox = bb(vec![0, 0], vec![1 << 20, 1 << 20]);
        let runs = zorder_box_runs(&bbox, 20).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 1u128 << 40);
    }

    #[test]
    fn huge_unaligned_box_stays_tractable() {
        // 8000x8000 at 13 bits/dim — the paper's grid.
        let bbox = bb(vec![0, 0], vec![8000, 8000]);
        let runs = zorder_box_runs(&bbox, 13).unwrap();
        let total: u128 = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 64_000_000);
        assert!(
            runs.len() < 20_000,
            "decomposition should be compact: {} runs",
            runs.len()
        );
    }

    #[test]
    fn empty_and_oob_boxes() {
        let empty = bb(vec![0, 0], vec![0, 5]);
        assert!(zorder_box_runs(&empty, 4).unwrap().is_empty());
        let oob = bb(vec![20, 0], vec![4, 4]);
        assert!(zorder_box_runs(&oob, 4).is_err());
        let negative = bb(vec![-1, 0], vec![2, 2]);
        assert!(zorder_box_runs(&negative, 4).is_err());
    }
}

//! Row-major "curve": the trivial linearization baseline.
//!
//! Row-major order is what a naive mapper already walks, so it aggregates
//! perfectly along the fastest-varying dimension but fragments the moment
//! a query touches a multi-row region. It is the natural baseline for the
//! curve ablation bench.

use crate::curve::{check_coords, check_index, Curve, CurveIndex};
use scihadoop_grid::GridError;

/// Row-major linearization over a fixed power-of-two virtual extent.
///
/// Like the other curves it operates on a `2^bits`-sided virtual grid so
/// indices are comparable across curves.
#[derive(Debug, Clone)]
pub struct RowMajorCurve {
    ndims: usize,
    bits: u32,
}

impl RowMajorCurve {
    /// Row-major order over `ndims` dimensions of 32-bit coordinates.
    pub fn new(ndims: usize) -> Self {
        Self::with_bits(ndims, 32)
    }

    /// Row-major order with reduced per-dimension resolution.
    pub fn with_bits(ndims: usize, bits: u32) -> Self {
        assert!(ndims >= 1, "need at least one dimension");
        assert!((1..=32).contains(&bits), "bits per dim must be 1..=32");
        assert!(
            ndims as u32 * bits <= 128,
            "total index width exceeds 128 bits"
        );
        RowMajorCurve { ndims, bits }
    }
}

impl Curve for RowMajorCurve {
    fn ndims(&self) -> usize {
        self.ndims
    }

    fn bits_per_dim(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> &'static str {
        "row-major"
    }

    fn index_of(&self, coords: &[u32]) -> Result<CurveIndex, GridError> {
        check_coords(coords, self.ndims, self.bits)?;
        let mut index: CurveIndex = 0;
        for &c in coords {
            index = (index << self.bits) | c as CurveIndex;
        }
        Ok(index)
    }

    fn coords_of(&self, index: CurveIndex) -> Result<Vec<u32>, GridError> {
        check_index(index, self.ndims, self.bits)?;
        let mask: CurveIndex = if self.bits >= 32 {
            u32::MAX as CurveIndex
        } else {
            (1 << self.bits) - 1
        };
        let mut coords = vec![0u32; self.ndims];
        let mut idx = index;
        for d in (0..self.ndims).rev() {
            coords[d] = (idx & mask) as u32;
            idx >>= self.bits;
        }
        Ok(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major() {
        let r = RowMajorCurve::with_bits(2, 4);
        assert_eq!(r.index_of(&[0, 0]).unwrap(), 0);
        assert_eq!(r.index_of(&[0, 1]).unwrap(), 1);
        assert_eq!(r.index_of(&[1, 0]).unwrap(), 16);
        assert_eq!(r.index_of(&[2, 3]).unwrap(), 35);
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        let r = RowMajorCurve::with_bits(3, 2);
        for idx in 0..64u128 {
            let c = r.coords_of(idx).unwrap();
            assert_eq!(r.index_of(&c).unwrap(), idx);
        }
    }

    #[test]
    fn full_width_roundtrip() {
        let r = RowMajorCurve::new(4);
        let coords = [u32::MAX, 1, 0, 0xABCD_EF01];
        let idx = r.index_of(&coords).unwrap();
        assert_eq!(r.coords_of(idx).unwrap(), coords);
    }

    #[test]
    fn rejects_bad_input() {
        let r = RowMajorCurve::with_bits(2, 4);
        assert!(r.index_of(&[16, 0]).is_err());
        assert!(r.index_of(&[0, 0, 0]).is_err());
        assert!(r.coords_of(256).is_err());
    }
}

//! Decomposing a box of cells into contiguous curve-index runs.
//!
//! Paper Fig. 6: "Cells are numbered with a space-filling curve, and
//! contiguous numbers are collapsed into ranges" (the caption's example
//! collapses a region to `6-7, 9-10, 13`). The number of runs a region
//! decomposes into is Moon et al.'s *clustering number* — the quality
//! metric for the curve ablation bench.

use crate::curve::{Curve, CurveIndex};
use scihadoop_grid::{BoundingBox, GridError};

/// One contiguous run of curve indices, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CurveRun {
    /// First index of the run.
    pub start: CurveIndex,
    /// Last index of the run (inclusive).
    pub end: CurveIndex,
}

impl CurveRun {
    /// A run covering a single index.
    pub fn singleton(i: CurveIndex) -> Self {
        CurveRun { start: i, end: i }
    }

    /// Number of cells in the run.
    pub fn len(&self) -> u128 {
        self.end - self.start + 1
    }

    /// Runs are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `i` lies inside the run.
    pub fn contains(&self, i: CurveIndex) -> bool {
        self.start <= i && i <= self.end
    }

    /// True if the runs share at least one index.
    pub fn overlaps(&self, other: &CurveRun) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Collapse a sorted, deduplicated list of curve indices into maximal
/// runs.
pub fn collapse_sorted(indices: &[CurveIndex]) -> Vec<CurveRun> {
    let mut runs: Vec<CurveRun> = Vec::new();
    for &i in indices {
        match runs.last_mut() {
            Some(r) if i == r.end + 1 => r.end = i,
            Some(r) if i <= r.end => {} // duplicate, ignore
            _ => runs.push(CurveRun::singleton(i)),
        }
    }
    runs
}

/// Decompose every cell of `bbox` into maximal contiguous runs on `curve`.
///
/// This is the exhaustive (O(cells log cells)) decomposition the
/// aggregation library performs incrementally; exposed directly for
/// analysis and the curve ablation bench.
pub fn box_runs(curve: &dyn Curve, bbox: &BoundingBox) -> Result<Vec<CurveRun>, GridError> {
    let mut indices = Vec::with_capacity(bbox.num_cells() as usize);
    for cell in bbox.cells() {
        indices.push(curve.index_of_coord(&cell)?);
    }
    indices.sort_unstable();
    Ok(collapse_sorted(&indices))
}

/// Moon et al.'s clustering number: how many maximal runs the region
/// splits into on this curve. Lower is better for aggregation.
pub fn clustering_run_count(curve: &dyn Curve, bbox: &BoundingBox) -> Result<usize, GridError> {
    Ok(box_runs(curve, bbox)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hilbert::HilbertCurve;
    use crate::rowmajor::RowMajorCurve;
    use crate::zorder::ZOrderCurve;
    use scihadoop_grid::{Coord, Shape};

    fn bbox(corner: Vec<i32>, shape: Vec<u32>) -> BoundingBox {
        BoundingBox::new(Coord::new(corner), Shape::new(shape)).unwrap()
    }

    #[test]
    fn collapse_merges_adjacent_and_skips_duplicates() {
        let runs = collapse_sorted(&[1, 2, 3, 3, 5, 7, 8]);
        assert_eq!(
            runs,
            vec![
                CurveRun { start: 1, end: 3 },
                CurveRun::singleton(5),
                CurveRun { start: 7, end: 8 },
            ]
        );
    }

    #[test]
    fn aligned_quadrant_is_one_zorder_run() {
        let z = ZOrderCurve::with_bits(2, 4);
        let b = bbox(vec![4, 4], vec![4, 4]);
        let runs = box_runs(&z, &b).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 16);
    }

    #[test]
    fn unaligned_box_fragments_on_zorder() {
        let z = ZOrderCurve::with_bits(2, 4);
        let b = bbox(vec![1, 1], vec![4, 4]);
        let runs = box_runs(&z, &b).unwrap();
        assert!(runs.len() > 1);
        let total: u128 = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn hilbert_clusters_no_worse_than_zorder_on_average() {
        // Moon et al.'s result, spot-checked over a sweep of boxes.
        let z = ZOrderCurve::with_bits(2, 5);
        let h = HilbertCurve::with_bits(2, 5);
        let mut z_total = 0usize;
        let mut h_total = 0usize;
        for cx in 0..6 {
            for cy in 0..6 {
                let b = bbox(vec![cx, cy], vec![5, 5]);
                z_total += clustering_run_count(&z, &b).unwrap();
                h_total += clustering_run_count(&h, &b).unwrap();
            }
        }
        assert!(
            h_total <= z_total,
            "hilbert runs {h_total} should be <= z-order runs {z_total}"
        );
    }

    #[test]
    fn row_major_run_count_equals_row_count_for_interior_box() {
        // A W-wide box not touching the virtual-grid edge splits into one
        // run per row on row-major order.
        let r = RowMajorCurve::with_bits(2, 6);
        let b = bbox(vec![3, 3], vec![7, 5]);
        assert_eq!(clustering_run_count(&r, &b).unwrap(), 7);
    }

    #[test]
    fn full_width_rows_merge_on_row_major() {
        // A box spanning the full virtual width is fully contiguous.
        let r = RowMajorCurve::with_bits(2, 3);
        let b = bbox(vec![2, 0], vec![4, 8]);
        assert_eq!(clustering_run_count(&r, &b).unwrap(), 1);
    }

    #[test]
    fn run_overlap_and_contains() {
        let a = CurveRun { start: 5, end: 9 };
        assert!(a.contains(5) && a.contains(9) && !a.contains(10));
        assert!(a.overlaps(&CurveRun { start: 9, end: 12 }));
        assert!(!a.overlaps(&CurveRun { start: 10, end: 12 }));
    }
}

//! The curve abstraction shared by all space-filling curves.

use scihadoop_grid::{Coord, GridError};

/// A position on a space-filling curve.
///
/// 128 bits accommodate up to 4 dimensions of 32-bit coordinates (the
/// paper's keys are `n` 32-bit integers mapped to "a single 32n-bit
/// integer", §IV-A).
pub type CurveIndex = u128;

/// A bijection between n-dimensional non-negative grid coordinates and a
/// one-dimensional curve index.
pub trait Curve: Send + Sync {
    /// Number of dimensions this curve instance is configured for.
    fn ndims(&self) -> usize;

    /// Bits of resolution per dimension.
    fn bits_per_dim(&self) -> u32;

    /// Human-readable curve name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Map unsigned coordinates to a curve index.
    ///
    /// Every coordinate must fit in [`Curve::bits_per_dim`] bits.
    fn index_of(&self, coords: &[u32]) -> Result<CurveIndex, GridError>;

    /// Inverse of [`Curve::index_of`].
    fn coords_of(&self, index: CurveIndex) -> Result<Vec<u32>, GridError>;

    /// Map a signed grid coordinate (must be non-negative) to an index.
    fn index_of_coord(&self, coord: &Coord) -> Result<CurveIndex, GridError> {
        if coord.ndims() != self.ndims() {
            return Err(GridError::DimensionMismatch {
                expected: self.ndims(),
                actual: coord.ndims(),
            });
        }
        let unsigned = coord.to_unsigned()?;
        self.index_of(&unsigned)
    }

    /// Inverse of [`Curve::index_of_coord`].
    fn coord_of_index(&self, index: CurveIndex) -> Result<Coord, GridError> {
        let coords = self.coords_of(index)?;
        Ok(Coord::new(coords.into_iter().map(|c| c as i32).collect()))
    }
}

/// Order-preserving 48-bit compression of a curve index: indices below
/// 2⁴⁸ map to themselves, larger ones clamp to 2⁴⁸ − 1. Monotone
/// non-decreasing over the whole `u128` range, so it can seed a sort
/// prefix (`KeySemantics::sort_prefix` in the engine) whose low 48 bits
/// order aggregate keys by curve position — 48 bits cover a full 2-D
/// 32-bit-per-dim curve plus 16 spare, and clamped indices simply fall
/// back to the full comparator on ties.
pub fn index_prefix48(index: CurveIndex) -> u64 {
    const MAX48: u128 = (1 << 48) - 1;
    index.min(MAX48) as u64
}

/// Validate that `coords` has the right arity and each component fits in
/// `bits` bits. Shared by all curve implementations.
pub(crate) fn check_coords(coords: &[u32], ndims: usize, bits: u32) -> Result<(), GridError> {
    if coords.len() != ndims {
        return Err(GridError::DimensionMismatch {
            expected: ndims,
            actual: coords.len(),
        });
    }
    let limit = if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    for &c in coords {
        if c > limit {
            return Err(GridError::OutOfBounds {
                coord: coords.iter().map(|&x| x as i32).collect(),
                context: format!("curve with {bits} bits/dim"),
            });
        }
    }
    Ok(())
}

/// Validate that a curve index fits in `ndims * bits` bits.
pub(crate) fn check_index(index: CurveIndex, ndims: usize, bits: u32) -> Result<(), GridError> {
    let total_bits = ndims as u32 * bits;
    if total_bits < 128 && index >> total_bits != 0 {
        return Err(GridError::Deserialize(format!(
            "curve index {index} exceeds {total_bits} bits"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_coords_enforces_arity_and_range() {
        assert!(check_coords(&[1, 2], 2, 8).is_ok());
        assert!(check_coords(&[1], 2, 8).is_err());
        assert!(check_coords(&[256, 0], 2, 8).is_err());
        assert!(check_coords(&[255, 255], 2, 8).is_ok());
        assert!(check_coords(&[u32::MAX], 1, 32).is_ok());
    }

    #[test]
    fn index_prefix48_is_monotone_and_identity_below_clamp() {
        const MAX48: u128 = (1 << 48) - 1;
        assert_eq!(index_prefix48(0), 0);
        assert_eq!(index_prefix48(12345), 12345);
        assert_eq!(index_prefix48(MAX48), MAX48 as u64);
        assert_eq!(index_prefix48(MAX48 + 1), MAX48 as u64);
        assert_eq!(index_prefix48(u128::MAX), MAX48 as u64);
        let probes = [
            0u128,
            1,
            255,
            MAX48 - 1,
            MAX48,
            MAX48 + 1,
            1 << 64,
            u128::MAX - 1,
            u128::MAX,
        ];
        for w in probes.windows(2) {
            assert!(index_prefix48(w[0]) <= index_prefix48(w[1]));
        }
    }

    #[test]
    fn check_index_enforces_total_bits() {
        assert!(check_index(255, 2, 4).is_ok());
        assert!(check_index(256, 2, 4).is_err());
        assert!(check_index(u128::MAX, 4, 32).is_ok());
    }
}

//! Offline sequence detection for inspection (the Fig. 2 illustration:
//! "Highlighted sequence has δ=0xa, s=47, φ=34").

use std::collections::HashMap;

/// One detected linear sequence in a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceReport {
    /// Stride `s` of equation (1).
    pub stride: usize,
    /// Phase `φ` (byte offset modulo stride).
    pub phase: usize,
    /// Difference `δ`.
    pub delta: u8,
    /// How many consecutive times the relation held.
    pub support: usize,
}

/// Exhaustively detect the strongest linear sequences
/// `x[φ+ks] = x[φ+(k−1)s] + δ` in `data`, for strides up to `max_stride`.
///
/// Returns sequences sorted by support (descending), strongest first.
/// This is the analysis view of the detector — O(n·max_stride), intended
/// for inspection and tests, not the streaming path.
pub fn detect_sequences(data: &[u8], max_stride: usize, top: usize) -> Vec<SequenceReport> {
    let mut best: HashMap<(usize, usize, u8), usize> = HashMap::new();
    for s in 1..=max_stride.min(data.len().saturating_sub(1)) {
        // Track current run per phase.
        let mut runs = vec![(0u8, 0usize); s]; // (delta, run)
        for i in s..data.len() {
            let phase = i % s;
            let delta = data[i].wrapping_sub(data[i - s]);
            let (d, r) = runs[phase];
            let run = if delta == d { r + 1 } else { 1 };
            runs[phase] = (delta, run);
            let key = (s, phase, delta);
            let entry = best.entry(key).or_insert(0);
            if run > *entry {
                *entry = run;
            }
        }
    }
    let mut reports: Vec<SequenceReport> = best
        .into_iter()
        .map(|((stride, phase, delta), support)| SequenceReport {
            stride,
            phase,
            delta,
            support,
        })
        .collect();
    reports.sort_by(|a, b| b.support.cmp(&a.support).then(a.stride.cmp(&b.stride)));
    reports.truncate(top);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_a_planted_sequence() {
        // Plant x[10 + 16k] = 3k: stride 16, phase 10, delta 3.
        let mut data = vec![0xEEu8; 400];
        for k in 0..24 {
            data[10 + 16 * k] = (3 * k) as u8;
        }
        let reports = detect_sequences(&data, 20, 2000);
        assert!(
            reports
                .iter()
                .any(|r| r.stride == 16 && r.phase == 10 && r.delta == 3 && r.support >= 20),
            "planted sequence not found"
        );
    }

    #[test]
    fn constant_stream_reports_delta_zero() {
        let data = vec![7u8; 100];
        let reports = detect_sequences(&data, 4, 4);
        assert!(reports.iter().all(|r| r.delta == 0));
        assert!(reports[0].support > 90);
    }

    #[test]
    fn counter_stream_detects_stride_of_record() {
        // BE u32 counter: low byte advances by 1 at stride 4, phase 3 —
        // the Fig. 2 pattern (there δ=0x0a, s=47, φ=34).
        let data: Vec<u8> = (0..200u32).flat_map(|i| i.to_be_bytes()).collect();
        let reports = detect_sequences(&data, 8, 2000);
        assert!(
            reports
                .iter()
                .any(|r| r.stride == 4 && r.phase == 3 && r.delta == 1 && r.support > 150),
            "counter sequence (s=4, φ=3, δ=1) not detected"
        );
    }

    #[test]
    fn respects_top_limit_and_empty_input() {
        assert!(detect_sequences(&[], 10, 5).is_empty());
        let data: Vec<u8> = (0..100u8).collect();
        assert!(detect_sequences(&data, 10, 3).len() <= 3);
    }
}

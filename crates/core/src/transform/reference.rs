//! The original per-byte, per-stride predictor, retained verbatim as an
//! executable specification.
//!
//! [`StridePredictor`](super::StridePredictor) now runs a batch loop
//! over a compact active-stride list; this module keeps the
//! straightforward implementation it replaced so that (a) property tests
//! can assert the optimized path is byte-identical on arbitrary inputs
//! and configs, and (b) `bench_codec` can measure the kernel speedup
//! against the real before-state rather than a synthetic strawman.

use super::predictor::TransformConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Sequence {
    delta: u8,
    run: u32,
}

#[derive(Debug, Clone)]
struct StrideState {
    stride: usize,
    table_offset: usize,
    active: bool,
    hits: u64,
    total: u64,
    activated_at: u64,
    warmup: u64,
    removed_at_cycle: u64,
    last_selected_cycle: u64,
}

/// The pre-optimization predictor: every byte scans the full stride set.
#[derive(Debug, Clone)]
pub struct ReferencePredictor {
    config: TransformConfig,
    strides: Vec<StrideState>,
    table: Vec<Sequence>,
    history: Vec<u8>,
    pos: u64,
    cycle: u64,
}

impl ReferencePredictor {
    /// Fresh predictor state.
    pub fn new(config: TransformConfig) -> Self {
        let stride_list = config.stride_list();
        let mut table_len = 0usize;
        let strides = stride_list
            .iter()
            .map(|&s| {
                let st = StrideState {
                    stride: s,
                    table_offset: table_len,
                    active: true,
                    hits: 0,
                    total: 0,
                    activated_at: 0,
                    warmup: s as u64,
                    removed_at_cycle: 0,
                    last_selected_cycle: 0,
                };
                table_len += s;
                st
            })
            .collect();
        ReferencePredictor {
            history: vec![0u8; config.max_stride.max(1)],
            config,
            strides,
            table: vec![Sequence::default(); table_len],
            pos: 0,
            cycle: 0,
        }
    }

    #[inline]
    fn hist(&self, back: usize) -> u8 {
        let idx = (self.pos as usize - back) % self.history.len();
        self.history[idx]
    }

    #[inline]
    fn predict(&self) -> Option<u8> {
        let mut best_run = self.config.run_threshold;
        let mut best: Option<u8> = None;
        for st in &self.strides {
            if !st.active || (st.stride as u64) > self.pos {
                continue;
            }
            let phase = (self.pos % st.stride as u64) as usize;
            let seq = &self.table[st.table_offset + phase];
            if seq.run > best_run {
                best_run = seq.run;
                best = Some(self.hist(st.stride).wrapping_add(seq.delta));
            }
        }
        best
    }

    fn advance(&mut self, x: u8) {
        for st in &mut self.strides {
            let s = st.stride;
            if !st.active || (s as u64) > self.pos {
                continue;
            }
            let idx = (self.pos as usize - s) % self.history.len();
            let prev = self.history[idx];
            let phase = (self.pos % s as u64) as usize;
            let seq = &mut self.table[st.table_offset + phase];
            let counted = if st.warmup > 0 {
                st.warmup -= 1;
                false
            } else {
                st.total += 1;
                true
            };
            if prev.wrapping_add(seq.delta) == x {
                seq.run += 1;
                if counted {
                    st.hits += 1;
                }
            } else {
                seq.delta = x.wrapping_sub(prev);
                seq.run = 0;
            }
        }

        let idx = (self.pos as usize) % self.history.len();
        self.history[idx] = x;
        self.pos += 1;

        if !self.config.adaptive {
            return;
        }

        let cycle = self.cycle;
        let pos = self.pos;
        let (num, den) = (
            self.config.hit_rate_num as u64,
            self.config.hit_rate_den as u64,
        );
        for st in &mut self.strides {
            if st.active
                && pos - st.activated_at >= 2 * st.stride as u64
                && st.total > 0
                && st.hits * den < st.total * num
            {
                st.active = false;
                st.removed_at_cycle = cycle;
            }
        }

        if self.pos.is_multiple_of(self.config.selection_cycle as u64) {
            self.cycle += 1;
            let cycle = self.cycle;
            if let Some(st) = self
                .strides
                .iter_mut()
                .filter(|st| !st.active && cycle - st.last_selected_cycle >= st.stride as u64)
                .max_by_key(|st| cycle - st.removed_at_cycle)
            {
                st.active = true;
                st.hits = 0;
                st.total = 0;
                st.activated_at = pos;
                st.warmup = st.stride as u64;
                st.last_selected_cycle = cycle;
            }
        }
    }

    /// Forward transform: returns the delta stream `y`.
    pub fn forward(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        for &x in input {
            let y = match self.predict() {
                Some(p) => x.wrapping_sub(p),
                None => x,
            };
            out.push(y);
            self.advance(x);
        }
        out
    }

    /// Inverse transform: reconstructs `x` from the delta stream.
    pub fn inverse(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        for &y in input {
            let x = match self.predict() {
                Some(p) => y.wrapping_add(p),
                None => y,
            };
            out.push(x);
            self.advance(x);
        }
        out
    }

    /// Number of currently active strides.
    pub fn active_strides(&self) -> usize {
        self.strides.iter().filter(|s| s.active).count()
    }
}

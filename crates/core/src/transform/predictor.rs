//! The stride-predictor state machine shared by the forward and inverse
//! transforms (§III-A, §III-B, §III-C).
//!
//! # Hot-path layout
//!
//! The original implementation scanned the *full* stride set at every
//! byte — once to predict, once to update, once to check eviction — so
//! a default config (strides 1..=100) paid ~300 stride visits per input
//! byte even after adaptation had narrowed the useful set to one or two
//! strides. The current code keeps a compact `active_list` of stride
//! indices and walks only that, fusing the update and eviction checks
//! into one pass; per-stride phase counters replace the per-byte `%`,
//! and the history ring is power-of-two sized so lookups are a mask.
//! The evolution of predictor state is byte-identical to the original
//! (kept as [`ReferencePredictor`](super::reference::ReferencePredictor)
//! and cross-checked by property tests): active strides are visited in
//! stride-list order, so the "first strictly-better run wins" tie-break
//! and the `max_by_key` selection tie-break are preserved exactly.

/// Tuning knobs of the detector. Defaults are the paper's values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformConfig {
    /// The full set is every stride in `1..=max_stride` (paper: 100,
    /// with 1000 in the brute-force comparison).
    pub max_stride: usize,
    /// If set, the full set is exactly these strides instead (the
    /// "user specifies lengths" alternative of §III, used by the stride
    /// ablation experiment with a single stride of 12).
    pub explicit_strides: Option<Vec<usize>>,
    /// If false, every stride stays active forever — the brute-force
    /// detector §III-A compares against (4× slower at max stride 100,
    /// 17× at 1000).
    pub adaptive: bool,
    /// Bytes per selection cycle (paper: 256 — "large enough to reduce
    /// CPU overhead and small enough to quickly react to input changes").
    pub selection_cycle: usize,
    /// Hit-rate eviction threshold, as a fraction (paper: 5/6).
    pub hit_rate_num: u32,
    /// Denominator of the eviction threshold.
    pub hit_rate_den: u32,
    /// A prediction is emitted only when the best run length exceeds this
    /// (paper: 2).
    pub run_threshold: u32,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            max_stride: 100,
            explicit_strides: None,
            adaptive: true,
            selection_cycle: 256,
            hit_rate_num: 5,
            hit_rate_den: 6,
            run_threshold: 2,
        }
    }
}

impl TransformConfig {
    /// The paper's adaptive detector with the given maximum stride.
    pub fn adaptive(max_stride: usize) -> Self {
        TransformConfig {
            max_stride,
            ..Default::default()
        }
    }

    /// The brute-force baseline: every stride considered at every byte.
    pub fn brute_force(max_stride: usize) -> Self {
        TransformConfig {
            max_stride,
            adaptive: false,
            ..Default::default()
        }
    }

    /// A fixed set of user-specified strides (no adaptation needed —
    /// nothing to evict when the user already chose).
    pub fn fixed(strides: Vec<usize>) -> Self {
        assert!(!strides.is_empty(), "need at least one stride");
        let max = *strides.iter().max().expect("non-empty");
        TransformConfig {
            max_stride: max,
            explicit_strides: Some(strides),
            adaptive: false,
            ..Default::default()
        }
    }

    pub(crate) fn stride_list(&self) -> Vec<usize> {
        let strides = match &self.explicit_strides {
            Some(v) => v.clone(),
            None => (1..=self.max_stride).collect(),
        };
        assert!(
            strides.iter().all(|&s| s >= 1 && s <= self.max_stride),
            "strides must lie in 1..=max_stride"
        );
        strides
    }
}

/// Per-stride diagnostic snapshot (see
/// [`StridePredictor::stride_reports`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideReport {
    /// The stride length.
    pub stride: usize,
    /// Whether it is currently in the active set.
    pub active: bool,
    /// Correct predictions since (re)activation.
    pub hits: u64,
    /// Counted observations since (re)activation.
    pub observations: u64,
    /// Longest current run among this stride's phases.
    pub best_run: u32,
}

impl StrideReport {
    /// Hit rate in [0, 1]; 0 when nothing was observed.
    pub fn hit_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.hits as f64 / self.observations as f64
        }
    }
}

/// One tracked sequence: a (stride, phase) cell of the sequence table.
#[derive(Debug, Clone, Copy, Default)]
struct Sequence {
    /// The difference δ of equation (1).
    delta: u8,
    /// "the number of times in a row that the sequence has predicted the
    /// correct value"
    run: u32,
}

/// Per-stride bookkeeping for the active-set policy.
#[derive(Debug, Clone)]
struct StrideState {
    stride: usize,
    /// Index into the flat sequence table where this stride's `stride`
    /// phases begin.
    table_offset: usize,
    active: bool,
    /// Current phase (`pos % stride`), maintained incrementally while
    /// the stride is active and recomputed on re-activation, so the hot
    /// loop never divides.
    phase: u32,
    /// Correct predictions since (re)activation.
    hits: u64,
    /// Total predictions since (re)activation.
    total: u64,
    /// Byte offset at which the stride was last activated.
    activated_at: u64,
    /// Observations still inside the post-activation warm-up window (one
    /// per phase): they update deltas and runs but do not count toward
    /// the hit rate, giving it "a chance to settle" (§III-A).
    warmup: u64,
    /// Selection cycle in which the stride was evicted (valid when
    /// inactive).
    removed_at_cycle: u64,
    /// Selection cycle in which the stride was last re-admitted.
    last_selected_cycle: u64,
}

/// The predictor: feed it bytes via [`StridePredictor::forward`] /
/// [`StridePredictor::inverse`]; both directions evolve identical state,
/// which is what makes the transform invertible without side information.
#[derive(Debug, Clone)]
pub struct StridePredictor {
    config: TransformConfig,
    strides: Vec<StrideState>,
    /// Indices of active strides, in stride-list order (the order the
    /// original implementation visited them, which the prediction and
    /// selection tie-breaks depend on).
    active_list: Vec<u32>,
    /// Flat sequence table; stride `s` with phase `φ` lives at
    /// `table_offset(s) + φ`.
    table: Vec<Sequence>,
    /// Ring buffer of the last `max_stride` original (reconstructed)
    /// bytes, power-of-two sized.
    history: Vec<u8>,
    /// `history.len() - 1`.
    hist_mask: usize,
    /// Total bytes processed.
    pos: u64,
    /// Current selection cycle number.
    cycle: u64,
}

impl StridePredictor {
    /// Fresh predictor state.
    pub fn new(config: TransformConfig) -> Self {
        let stride_list = config.stride_list();
        let mut table_len = 0usize;
        let strides: Vec<StrideState> = stride_list
            .iter()
            .map(|&s| {
                let st = StrideState {
                    stride: s,
                    table_offset: table_len,
                    active: true,
                    phase: 0,
                    hits: 0,
                    total: 0,
                    activated_at: 0,
                    warmup: s as u64,
                    removed_at_cycle: 0,
                    last_selected_cycle: 0,
                };
                table_len += s;
                st
            })
            .collect();
        let hist_len = config.max_stride.max(1).next_power_of_two();
        StridePredictor {
            active_list: (0..strides.len() as u32).collect(),
            history: vec![0u8; hist_len],
            hist_mask: hist_len - 1,
            config,
            strides,
            table: vec![Sequence::default(); table_len],
            pos: 0,
            cycle: 0,
        }
    }

    /// The configuration this predictor runs.
    pub fn config(&self) -> &TransformConfig {
        &self.config
    }

    fn rebuild_active_list(&mut self) {
        self.active_list.clear();
        let strides = &self.strides;
        self.active_list.extend(
            strides
                .iter()
                .enumerate()
                .filter(|(_, st)| st.active)
                .map(|(i, _)| i as u32),
        );
    }

    /// §III-B: the prediction for the next byte, if any sequence's run
    /// length exceeds the threshold. Walks only the active list; the
    /// first strictly-better run wins, as in the full-set scan.
    #[inline]
    fn predict(&self) -> Option<u8> {
        let pos = self.pos;
        let mut best_run = self.config.run_threshold;
        let mut best: Option<u8> = None;
        for &ai in &self.active_list {
            let st = &self.strides[ai as usize];
            if (st.stride as u64) > pos {
                continue;
            }
            let seq = &self.table[st.table_offset + st.phase as usize];
            if seq.run > best_run {
                best_run = seq.run;
                let prev = self.history[(pos as usize - st.stride) & self.hist_mask];
                best = Some(prev.wrapping_add(seq.delta));
            }
        }
        best
    }

    /// Feed the actual byte `x` (original on the forward path,
    /// reconstructed on the inverse path) and evolve all state.
    ///
    /// One pass over the active list updates each stride's sequence cell
    /// *and* applies the eviction rule: an active stride's counters only
    /// change here and they change on every byte, so checking right
    /// after the update is the original per-byte check.
    fn advance(&mut self, x: u8) {
        let pos = self.pos;
        let new_pos = pos + 1;
        let adaptive = self.config.adaptive;
        let (num, den) = (
            self.config.hit_rate_num as u64,
            self.config.hit_rate_den as u64,
        );
        let mut evicted = false;
        for &ai in &self.active_list {
            let st = &mut self.strides[ai as usize];
            let s = st.stride;
            if (s as u64) <= pos {
                let prev = self.history[(pos as usize - s) & self.hist_mask];
                let seq = &mut self.table[st.table_offset + st.phase as usize];
                let counted = if st.warmup > 0 {
                    st.warmup -= 1;
                    false
                } else {
                    st.total += 1;
                    true
                };
                if prev.wrapping_add(seq.delta) == x {
                    seq.run += 1;
                    if counted {
                        st.hits += 1;
                    }
                } else {
                    seq.delta = x.wrapping_sub(prev);
                    seq.run = 0;
                }
                // Eviction: active ≥ 2s bytes and hit rate below
                // threshold.
                if adaptive
                    && new_pos - st.activated_at >= 2 * s as u64
                    && st.total > 0
                    && st.hits * den < st.total * num
                {
                    st.active = false;
                    st.removed_at_cycle = self.cycle;
                    evicted = true;
                }
            }
            st.phase += 1;
            if st.phase as usize >= s {
                st.phase = 0;
            }
        }

        // Record the byte.
        self.history[pos as usize & self.hist_mask] = x;
        self.pos = new_pos;

        if !adaptive {
            return;
        }
        if evicted {
            self.rebuild_active_list();
        }

        // Selection: once per cycle, re-admit the eligible stride that has
        // been out of the active set the longest. This still scans the
        // full stride list, but only once per `selection_cycle` bytes,
        // and the `max_by_key` (last-max-wins) tie-break is untouched.
        if new_pos.is_multiple_of(self.config.selection_cycle as u64) {
            self.cycle += 1;
            let cycle = self.cycle;
            if let Some(st) = self
                .strides
                .iter_mut()
                .filter(|st| !st.active && cycle - st.last_selected_cycle >= st.stride as u64)
                .max_by_key(|st| cycle - st.removed_at_cycle)
            {
                st.active = true;
                st.phase = (new_pos % st.stride as u64) as u32;
                st.hits = 0;
                st.total = 0;
                st.activated_at = new_pos;
                st.warmup = st.stride as u64;
                st.last_selected_cycle = cycle;
                self.rebuild_active_list();
            }
        }
    }

    fn transform<const FORWARD: bool>(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        for &b in input {
            let pred = self.predict();
            let x = if FORWARD {
                out.push(match pred {
                    Some(p) => b.wrapping_sub(p),
                    None => b,
                });
                b
            } else {
                let x = match pred {
                    Some(p) => b.wrapping_add(p),
                    None => b,
                };
                out.push(x);
                x
            };
            self.advance(x);
        }
        out
    }

    /// Forward transform (§III-B): returns the delta stream `y`.
    pub fn forward(&mut self, input: &[u8]) -> Vec<u8> {
        self.transform::<true>(input)
    }

    /// Inverse transform (§III-C): reconstructs `x` from the delta stream.
    pub fn inverse(&mut self, input: &[u8]) -> Vec<u8> {
        self.transform::<false>(input)
    }

    /// Number of currently active strides (observability for tests and
    /// the tuning bench).
    pub fn active_strides(&self) -> usize {
        self.active_list.len()
    }

    /// Per-stride diagnostics, most-effective strides first (by hit rate
    /// among active strides, then by stride). Lets tooling answer the
    /// §III-A question "which strides matter for this input" — typically
    /// "one or two linear sequences are enough".
    pub fn stride_reports(&self) -> Vec<StrideReport> {
        let mut out: Vec<StrideReport> = self
            .strides
            .iter()
            .map(|st| StrideReport {
                stride: st.stride,
                active: st.active,
                hits: st.hits,
                observations: st.total,
                best_run: (0..st.stride)
                    .map(|phi| self.table[st.table_offset + phi].run)
                    .max()
                    .unwrap_or(0),
            })
            .collect();
        out.sort_by(|a, b| {
            b.active
                .cmp(&a.active)
                .then(b.hit_rate().total_cmp(&a.hit_rate()))
                .then(a.stride.cmp(&b.stride))
        });
        out
    }

    /// Fraction of input bytes that were emitted as zero deltas would be
    /// ideal; this instead reports the overall hit rate of currently
    /// active strides (diagnostic).
    pub fn mean_active_hit_rate(&self) -> f64 {
        let (hits, total) = self
            .strides
            .iter()
            .filter(|s| s.active)
            .fold((0u64, 0u64), |(h, t), s| (h + s.hits, t + s.total));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::reference::ReferencePredictor;

    fn grid_stream(n: i32) -> Vec<u8> {
        let mut data = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        data
    }

    fn roundtrip(config: &TransformConfig, data: &[u8]) -> Vec<u8> {
        let t = StridePredictor::new(config.clone()).forward(data);
        let back = StridePredictor::new(config.clone()).inverse(&t);
        assert_eq!(back, data, "inverse(forward(x)) != x");
        t
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        let c = TransformConfig::default();
        roundtrip(&c, b"");
        roundtrip(&c, b"a");
        roundtrip(&c, b"ab");
        roundtrip(&c, &[0u8; 10]);
    }

    #[test]
    fn roundtrip_grid_stream() {
        let c = TransformConfig::default();
        roundtrip(&c, &grid_stream(12));
    }

    #[test]
    fn roundtrip_random_data() {
        let mut state = 5u64;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&TransformConfig::default(), &data);
        roundtrip(&TransformConfig::brute_force(20), &data);
        roundtrip(&TransformConfig::fixed(vec![12]), &data);
    }

    #[test]
    fn grid_stream_becomes_mostly_zero() {
        // The whole point of the transform: on a regular grid walk, almost
        // every byte is predicted and the delta stream is almost all 0.
        let c = TransformConfig::default();
        let data = grid_stream(16); // records of 12 bytes
        let t = roundtrip(&c, &data);
        let zeros = t.iter().filter(|&&b| b == 0).count();
        // Wrap rows (the z coordinate resets every 16 records, a stride of
        // 192 > max_stride) stay unpredictable; everything else zeroes.
        assert!(
            zeros as f64 > 0.92 * t.len() as f64,
            "only {zeros}/{} zero bytes after transform",
            t.len()
        );
    }

    #[test]
    fn fixed_stride_matches_record_size_predicts_well() {
        let data = grid_stream(16);
        let c = TransformConfig::fixed(vec![12]);
        let t = roundtrip(&c, &data);
        let zeros = t.iter().filter(|&&b| b == 0).count();
        assert!(
            zeros as f64 > 0.9 * t.len() as f64,
            "stride-12 should predict a 12-byte-record stream: {zeros}/{}",
            t.len()
        );
    }

    #[test]
    fn wrong_fixed_stride_predicts_poorly() {
        let data = grid_stream(16);
        let good = TransformConfig::fixed(vec![12]);
        let bad = TransformConfig::fixed(vec![7]);
        let tg = roundtrip(&good, &data);
        let tb = roundtrip(&bad, &data);
        let zg = tg.iter().filter(|&&b| b == 0).count();
        let zb = tb.iter().filter(|&&b| b == 0).count();
        assert!(
            zg > zb,
            "stride 12 ({zg} zeros) must beat stride 7 ({zb} zeros)"
        );
    }

    #[test]
    fn adaptive_evicts_useless_strides() {
        let c = TransformConfig::adaptive(50);
        let mut p = StridePredictor::new(c);
        let data = grid_stream(12);
        let _ = p.forward(&data);
        // On a perfectly regular stream most strides mispredict (only
        // multiples of 12 survive); the active set must have shrunk.
        assert!(
            p.active_strides() < 50,
            "active set did not shrink: {}",
            p.active_strides()
        );
    }

    #[test]
    fn brute_force_never_evicts() {
        let c = TransformConfig::brute_force(50);
        let mut p = StridePredictor::new(c);
        let _ = p.forward(&grid_stream(10));
        assert_eq!(p.active_strides(), 50);
    }

    #[test]
    fn streaming_chunks_equal_one_shot() {
        // Feeding the data in chunks must produce the identical stream
        // (constant-size state, no lookahead — §III-D).
        let data = grid_stream(10);
        let c = TransformConfig::default();
        let one = StridePredictor::new(c.clone()).forward(&data);
        let mut p = StridePredictor::new(c);
        let mut chunked = Vec::new();
        for chunk in data.chunks(997) {
            chunked.extend_from_slice(&p.forward(chunk));
        }
        assert_eq!(one, chunked);
    }

    #[test]
    fn linear_counter_stream_is_predicted() {
        // A pure 32-bit counter: low byte advances by 1 with stride 4
        // (the Fig. 2 pattern with δ=1).
        let data: Vec<u8> = (0..4000u32).flat_map(|i| i.to_be_bytes()).collect();
        let c = TransformConfig::adaptive(16);
        let t = roundtrip(&c, &data);
        let zeros = t.iter().filter(|&&b| b == 0).count();
        assert!(
            zeros as f64 > 0.95 * t.len() as f64,
            "counter stream should be almost fully predicted: {zeros}/{}",
            t.len()
        );
    }

    #[test]
    #[should_panic(expected = "need at least one stride")]
    fn fixed_requires_strides() {
        let _ = TransformConfig::fixed(vec![]);
    }

    #[test]
    fn stride_reports_identify_the_record_size() {
        // §III-A: "one or two linear sequences are enough to achieve most
        // of the compression ... typically equal to, or a small multiple
        // of, the size of the serialized key/value pair." The top report
        // on a 12-byte-record stream must be a multiple of 12.
        let mut p = StridePredictor::new(TransformConfig::adaptive(50));
        let _ = p.forward(&grid_stream(12));
        let reports = p.stride_reports();
        let top = &reports[0];
        assert!(top.active);
        assert_eq!(top.stride % 12, 0, "top stride {}", top.stride);
        assert!(top.hit_rate() > 0.9, "hit rate {}", top.hit_rate());
        assert!(top.best_run > 100);
        // Reports cover the full stride universe.
        assert_eq!(reports.len(), 50);
    }

    #[test]
    fn adapts_across_multi_variable_streams() {
        // §III: "If multiple variables are output ... they may have
        // different stride lengths due to different shapes." A stream that
        // switches from 12-byte records (3-D keys) to 8-byte records
        // (2-D keys) defeats any single fixed stride, but the adaptive
        // detector re-tunes after the switch.
        let mut data = Vec::new();
        for x in 0..20i32 {
            for y in 0..20i32 {
                for z in 0..20i32 {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        let switch = data.len();
        for x in 0..90i32 {
            for y in 0..90i32 {
                data.extend_from_slice(&x.to_be_bytes());
                data.extend_from_slice(&y.to_be_bytes());
            }
        }
        let adaptive = TransformConfig::default();
        let t = roundtrip(&adaptive, &data);
        // Both halves should end up mostly predicted (skip a re-learning
        // window after the switch).
        let head_zeros = t[..switch].iter().filter(|&&b| b == 0).count();
        let tail = &t[switch + 8192..];
        let tail_zeros = tail.iter().filter(|&&b| b == 0).count();
        assert!(
            head_zeros as f64 > 0.9 * switch as f64,
            "head {head_zeros}/{switch}"
        );
        assert!(
            tail_zeros as f64 > 0.9 * tail.len() as f64,
            "tail {tail_zeros}/{}",
            tail.len()
        );
        // A fixed stride tuned to the first variable does much worse on
        // the second half.
        let fixed = TransformConfig::fixed(vec![12]);
        let tf = roundtrip(&fixed, &data);
        let fixed_tail_zeros = tf[switch + 8192..].iter().filter(|&&b| b == 0).count();
        assert!(
            tail_zeros > fixed_tail_zeros,
            "adaptive tail {tail_zeros} must beat fixed-12 tail {fixed_tail_zeros}"
        );
    }

    #[test]
    fn delta_zero_counts_as_valid_prediction() {
        // §III-A: "a value of 0 for δ is still valid" — constant bytes
        // must be predicted too. All-constant stream → all zeros out
        // (after warm-up).
        let data = vec![0xABu8; 2000];
        let c = TransformConfig::adaptive(8);
        let t = roundtrip(&c, &data);
        let tail = &t[64..];
        assert!(
            tail.iter().all(|&b| b == 0),
            "constant stream not predicted"
        );
    }

    #[test]
    fn fast_path_matches_reference_byte_for_byte() {
        // The optimized batch loop must evolve exactly the same state as
        // the original full-set scan — same output bytes, same surviving
        // active set — across configs that exercise eviction, selection,
        // warm-up, and the fixed/brute-force modes.
        let mut mixed = grid_stream(14);
        let mut state = 99u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            mixed.push((state >> 33) as u8);
        }
        mixed.extend((0..3000u32).flat_map(|i| i.to_be_bytes()));
        for config in [
            TransformConfig::default(),
            TransformConfig::adaptive(17),
            TransformConfig::adaptive(1),
            TransformConfig::brute_force(33),
            TransformConfig::fixed(vec![12]),
            TransformConfig::fixed(vec![3, 7, 12, 100]),
            TransformConfig {
                selection_cycle: 64,
                hit_rate_num: 1,
                hit_rate_den: 2,
                run_threshold: 0,
                ..TransformConfig::adaptive(25)
            },
        ] {
            let fast = StridePredictor::new(config.clone());
            let slow = ReferencePredictor::new(config.clone());
            let mut fast_f = fast.clone();
            let mut slow_f = slow.clone();
            let f1 = fast_f.forward(&mixed);
            let f2 = slow_f.forward(&mixed);
            assert_eq!(f1, f2, "forward diverged for {config:?}");
            assert_eq!(
                fast_f.active_strides(),
                slow_f.active_strides(),
                "active set diverged for {config:?}"
            );
            let mut fast_i = fast.clone();
            let mut slow_i = slow.clone();
            assert_eq!(
                fast_i.inverse(&f1),
                slow_i.inverse(&f2),
                "inverse diverged for {config:?}"
            );
        }
    }
}

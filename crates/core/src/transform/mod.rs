//! §III — Semantically-informed byte-level compression.
//!
//! A stream of serialized grid keys is almost periodic: walking a regular
//! grid produces records whose bytes repeat with a stride equal to (a
//! small multiple of) the record size, except for a few counter bytes
//! that advance linearly (Fig. 2 highlights one such sequence with
//! δ=0x0a, s=47, φ=34). Generic compressors stumble on those changing
//! bytes; this transform predicts them and emits deltas from the
//! prediction, after which the stream is mostly zeros and compresses by
//! orders of magnitude (Fig. 3).
//!
//! The adaptive detector maintains a *full set* of strides (all strides
//! up to a maximum) and an *active set* that is actually consulted each
//! byte. Strides whose hit rate falls below 5/6 after at least `2s` bytes
//! of residency are evicted; every 256-byte *selection cycle* one evicted
//! stride is re-admitted, each stride eligible once every `s` cycles
//! (§III-A). The forward and inverse transforms share the predictor state
//! machine, so the inverse needs no side information (§III-C).

mod analyze;
mod codec;
mod predictor;
mod reference;

pub use analyze::{detect_sequences, SequenceReport};
pub use codec::TransformCodec;
pub use predictor::{StridePredictor, StrideReport, TransformConfig};
pub use reference::ReferencePredictor;

/// Forward-transform a whole buffer with a fresh predictor.
pub fn forward(config: &TransformConfig, data: &[u8]) -> Vec<u8> {
    let mut p = StridePredictor::new(config.clone());
    p.forward(data)
}

/// Inverse-transform a whole buffer with a fresh predictor.
pub fn inverse(config: &TransformConfig, data: &[u8]) -> Vec<u8> {
    let mut p = StridePredictor::new(config.clone());
    p.inverse(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_level_helpers_roundtrip() {
        let config = TransformConfig::default();
        let data: Vec<u8> = (0..2000u32).flat_map(|i| i.to_be_bytes()).collect();
        let t = forward(&config, &data);
        assert_eq!(inverse(&config, &t), data);
        assert_eq!(t.len(), data.len(), "transform is size-preserving");
    }
}

//! The transform as a pluggable codec: transform, then hand the residual
//! stream to a generic compressor ("by running on top of a generic
//! compression scheme, we retain the ability to compress other data in
//! the stream such as values", §III).

use super::predictor::{StridePredictor, TransformConfig};
use scihadoop_compress::{Codec, CompressError};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"SXF1";

/// `TransformCodec` = stride-predictive transform ∘ inner codec.
///
/// This is the "custom compression module" of §III: it can be dropped
/// anywhere a [`Codec`] is accepted (in particular the MapReduce engine's
/// intermediate-data codec slot), matching how the paper plugs its module
/// into Hadoop's pluggable compression.
#[derive(Clone)]
pub struct TransformCodec {
    config: TransformConfig,
    inner: Arc<dyn Codec>,
    name: String,
}

impl TransformCodec {
    /// Wrap `inner` with the transform using `config`.
    pub fn new(config: TransformConfig, inner: Arc<dyn Codec>) -> Self {
        // Compose the name from the actual inner codec so wrapped
        // block/pooled codecs stay distinguishable in counters and
        // reports (the old static-name fallback collapsed them all to
        // "transform+inner").
        let name = match inner.name() {
            "identity" => "transform".to_string(),
            other => format!("transform+{other}"),
        };
        TransformCodec {
            config,
            inner,
            name,
        }
    }

    /// The paper's default: adaptive detector, max stride 100.
    pub fn with_defaults(inner: Arc<dyn Codec>) -> Self {
        TransformCodec::new(TransformConfig::default(), inner)
    }

    /// Access the inner codec.
    pub fn inner(&self) -> &Arc<dyn Codec> {
        &self.inner
    }
}

impl std::fmt::Debug for TransformCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformCodec")
            .field("config", &self.config)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl Codec for TransformCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let transformed = StridePredictor::new(self.config.clone()).forward(input);
        let compressed = self.inner.compress(&transformed);
        let mut out = Vec::with_capacity(compressed.len() + 8);
        out.extend_from_slice(MAGIC);
        // Record the stride universe so decompression reconstructs the
        // same predictor. (Selection-cycle etc. are compile-time defaults
        // in this reproduction; max_stride is the knob experiments vary.)
        out.extend_from_slice(&(self.config.max_stride as u32).to_le_bytes());
        out.extend_from_slice(&compressed);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        if input.len() < 8 || &input[..4] != MAGIC {
            return Err(CompressError::BadMagic { expected: "SXF1" });
        }
        let max_stride = u32::from_le_bytes(input[4..8].try_into().unwrap()) as usize;
        if max_stride != self.config.max_stride {
            return Err(CompressError::Corrupt(format!(
                "stream used max_stride {max_stride}, codec configured {}",
                self.config.max_stride
            )));
        }
        let transformed = self.inner.decompress(&input[8..])?;
        Ok(StridePredictor::new(self.config.clone()).inverse(&transformed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_compress::{BzipCodec, DeflateCodec, IdentityCodec};

    fn grid_stream(n: i32) -> Vec<u8> {
        let mut data = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    data.extend_from_slice(&x.to_be_bytes());
                    data.extend_from_slice(&y.to_be_bytes());
                    data.extend_from_slice(&z.to_be_bytes());
                }
            }
        }
        data
    }

    #[test]
    fn roundtrip_over_all_inner_codecs() {
        let data = grid_stream(15);
        for inner in [
            Arc::new(IdentityCodec) as Arc<dyn Codec>,
            Arc::new(DeflateCodec::new()),
            Arc::new(BzipCodec::with_level(1)),
        ] {
            let c = TransformCodec::with_defaults(inner);
            let z = c.compress(&data);
            assert_eq!(c.decompress(&z).unwrap(), data, "codec {}", c.name());
        }
    }

    #[test]
    fn transform_improves_deflate_on_key_streams() {
        // Fig. 3's headline: transform+gzip beats gzip by ~50x on a grid
        // key stream. Require at least 4x here on a small grid.
        let data = grid_stream(20);
        let plain = DeflateCodec::new();
        let wrapped = TransformCodec::with_defaults(Arc::new(DeflateCodec::new()));
        let z_plain = plain.compress(&data).len();
        let z_wrapped = wrapped.compress(&data).len();
        assert!(
            z_wrapped * 4 < z_plain,
            "transform+deflate {z_wrapped} should be <1/4 of deflate {z_plain}"
        );
    }

    #[test]
    fn transform_improves_bzip_on_key_streams() {
        let data = grid_stream(20);
        let plain = BzipCodec::with_level(1);
        let wrapped = TransformCodec::with_defaults(Arc::new(BzipCodec::with_level(1)));
        let z_plain = plain.compress(&data).len();
        let z_wrapped = wrapped.compress(&data).len();
        assert!(
            z_wrapped < z_plain,
            "transform+bzip {z_wrapped} should beat bzip {z_plain}"
        );
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let data = grid_stream(8);
        let a = TransformCodec::new(TransformConfig::adaptive(100), Arc::new(IdentityCodec));
        let b = TransformCodec::new(TransformConfig::adaptive(50), Arc::new(IdentityCodec));
        let z = a.compress(&data);
        assert!(b.decompress(&z).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let c = TransformCodec::with_defaults(Arc::new(IdentityCodec));
        assert!(c.decompress(b"nope").is_err());
        let mut z = c.compress(b"hello hello hello");
        z[0] = b'Z';
        assert!(c.decompress(&z).is_err());
    }

    #[test]
    fn names_reflect_inner_codec() {
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(DeflateCodec::new())).name(),
            "transform+deflate"
        );
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(BzipCodec::new())).name(),
            "transform+bzip"
        );
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(IdentityCodec)).name(),
            "transform"
        );
        // Non-builtin inner codecs keep their identity instead of
        // collapsing to a "transform+inner" fallback.
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(scihadoop_compress::RleCodec)).name(),
            "transform+rle"
        );
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(scihadoop_compress::LzCodec)).name(),
            "transform+lz"
        );
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(scihadoop_compress::BlockCodec::new(Arc::new(
                scihadoop_compress::LzCodec
            ))))
            .name(),
            "transform+block-lz"
        );
        assert_eq!(
            TransformCodec::with_defaults(Arc::new(scihadoop_compress::BlockCodec::new(Arc::new(
                DeflateCodec::new()
            ))))
            .name(),
            "transform+block-deflate"
        );
    }
}

//! The engine integration: aggregate-key semantics for the MapReduce
//! engine's [`KeySemantics`] hook.
//!
//! This is the paper's "one set of changes inside Hadoop (detailed in
//! section IV-B), which allows aggregate keys to be split during the
//! routing and sorting phases", expressed against the engine's pluggable
//! hook instead of a Hadoop patch.

use super::key::{AggregateKey, AggregateRecord, AGGREGATE_KEY_LEN};
use super::split::{overlap_split, route_split, RangePartitioner};
use scihadoop_mapreduce::{KeySemantics, KvPair, RouteSink};
use std::cmp::Ordering;

/// Key semantics for serialized [`AggregateKey`]s.
///
/// * `compare` — bytewise, which equals (variable, start, length) order
///   thanks to the big-endian layout;
/// * `route` — splits a record at partition boundaries and routes each
///   piece to the reducer owning its curve range (§IV-B case 1);
/// * `sort_split` — splits overlapping keys along overlap boundaries
///   (§IV-B case 2, Fig. 7);
/// * `group_eq` — exact key equality (after `sort_split`, equal-or-
///   disjoint holds, so equality groups precisely the data that must be
///   reduced together).
#[derive(Debug, Clone)]
pub struct AggregateKeyOps {
    partitioner: RangePartitioner,
    value_width: usize,
}

impl AggregateKeyOps {
    /// Semantics for values `value_width` bytes wide, routed by
    /// `partitioner`.
    pub fn new(partitioner: RangePartitioner, value_width: usize) -> Self {
        assert!(value_width > 0, "value width must be positive");
        AggregateKeyOps {
            partitioner,
            value_width,
        }
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &RangePartitioner {
        &self.partitioner
    }

    fn parse(&self, pair: &KvPair) -> Option<AggregateRecord> {
        let key = AggregateKey::from_bytes(&pair.key).ok()?;
        AggregateRecord::new(key, pair.value.clone(), self.value_width).ok()
    }
}

impl KeySemantics for AggregateKeyOps {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    /// Sort prefix packing the 16 low variable bits over the 48 high
    /// curve-index bits: `variable:16 | index_prefix48(start):48`.
    ///
    /// The packing is purely positional — bytes 0..4 (variable) and
    /// 4..20 (start), zero-padded — so it is monotone over *arbitrary*
    /// byte strings under the bytewise `compare`, junk keys included:
    /// zero-padding only coarsens bytewise order into ties, and the
    /// clamp (variable ≥ 2¹⁶ − 1 saturates to `u64::MAX`, start
    /// saturates at 2⁴⁸ − 1) is monotone in the padded value. Ties fall
    /// back to the comparator, which resolves length and the clamped
    /// tails.
    fn sort_prefix(&self, key: &[u8]) -> u64 {
        let mut buf = [0u8; 20];
        let n = key.len().min(20);
        buf[..n].copy_from_slice(&key[..n]);
        let variable = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes")) as u64;
        let start = u128::from_be_bytes(buf[4..20].try_into().expect("16 bytes"));
        if variable >= 0xFFFF {
            u64::MAX
        } else {
            (variable << 48) | scihadoop_sfc::index_prefix48(start)
        }
    }

    fn partition(&self, key: &[u8], parts: usize) -> usize {
        match AggregateKey::from_bytes(key) {
            Ok(k) => self.partitioner.partition_of(k.run.start).min(parts - 1),
            Err(_) => 0,
        }
    }

    fn route(&self, pair: KvPair, parts: usize) -> Vec<(usize, KvPair)> {
        match self.parse(&pair) {
            Some(record) => route_split(&record, &self.partitioner, self.value_width)
                .into_iter()
                .map(|(p, rec)| {
                    (
                        p.min(parts - 1),
                        KvPair::new(rec.key.to_bytes(), rec.values),
                    )
                })
                .collect(),
            // Unparseable keys fall back to partition 0 rather than being
            // dropped; the engine's counters will still account them.
            None => vec![(0, pair)],
        }
    }

    fn route_slices(&self, key: &[u8], value: &[u8], parts: usize, emit: &mut RouteSink<'_>) {
        // Same split as `route`, but each piece's key is serialized into a
        // stack buffer and its values borrowed straight from `value` — no
        // owned `AggregateRecord` is ever built.
        let parsed = AggregateKey::from_bytes(key)
            .ok()
            .filter(|k| k.cell_count() * self.value_width as u128 == value.len() as u128);
        let run = match parsed {
            Some(k) => k.run,
            // Unparseable keys fall back to partition 0, as in `route`.
            None => return emit(0, key, value),
        };
        let mut key_buf = [0u8; AGGREGATE_KEY_LEN];
        key_buf[0..4].copy_from_slice(&key[0..4]);
        let mut start = run.start;
        while start <= run.end {
            let p = self.partitioner.partition_of(start);
            let piece_end = match self.partitioner.lower_bound(p + 1) {
                Some(next) if next <= run.end => next - 1,
                _ => run.end,
            };
            key_buf[4..20].copy_from_slice(&start.to_be_bytes());
            key_buf[20..28].copy_from_slice(&((piece_end - start + 1) as u64).to_be_bytes());
            let from = (start - run.start) as usize * self.value_width;
            let to = (piece_end - run.start + 1) as usize * self.value_width;
            emit(p.min(parts - 1), &key_buf, &value[from..to]);
            if piece_end == run.end {
                break;
            }
            start = piece_end + 1;
        }
    }

    fn sort_splits(&self) -> bool {
        true
    }

    /// Two records interact iff their curve ranges overlap on the same
    /// variable — exactly when [`overlap_split`] would cut either. Over a
    /// bytewise-sorted run (variable, start, length order) this satisfies
    /// the closure contract: once a later record's start passes an
    /// earlier record's end, every record after it does too. Unparseable
    /// keys interact with everything, collapsing the streaming windows
    /// back into one whole-run batch so the passthrough ordering matches
    /// the non-streaming path.
    fn sort_interacts(&self, a: &[u8], b: &[u8]) -> bool {
        match (AggregateKey::from_bytes(a), AggregateKey::from_bytes(b)) {
            (Ok(ka), Ok(kb)) => {
                ka.variable == kb.variable
                    && ka.run.start <= kb.run.end
                    && kb.run.start <= ka.run.end
            }
            _ => true,
        }
    }

    fn sort_split(&self, records: Vec<KvPair>) -> Vec<KvPair> {
        let mut parsed = Vec::with_capacity(records.len());
        let mut passthrough = Vec::new();
        for pair in records {
            match self.parse(&pair) {
                Some(rec) => parsed.push(rec),
                None => passthrough.push(pair),
            }
        }
        let mut out: Vec<KvPair> = overlap_split(parsed, self.value_width)
            .into_iter()
            .map(|rec| KvPair::new(rec.key.to_bytes(), rec.values))
            .collect();
        out.extend(passthrough);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_sfc::CurveRun;

    fn pair(start: u128, end: u128, width: usize) -> KvPair {
        let n = (end - start + 1) as usize;
        let rec = AggregateRecord::new(
            AggregateKey::new(0, CurveRun { start, end }),
            (0..n)
                .flat_map(|i| vec![(start as usize + i) as u8; width])
                .collect(),
            width,
        )
        .unwrap();
        KvPair::new(rec.key.to_bytes(), rec.values)
    }

    fn ops(parts: usize, span: u128, width: usize) -> AggregateKeyOps {
        AggregateKeyOps::new(RangePartitioner::uniform(parts, span), width)
    }

    #[test]
    fn route_splits_across_partition_boundaries() {
        let ops = ops(4, 100, 1);
        let routed = ops.route(pair(20, 60, 1), 4);
        assert_eq!(routed.len(), 3);
        let parts: Vec<usize> = routed.iter().map(|(p, _)| *p).collect();
        assert_eq!(parts, vec![0, 1, 2]);
        // Piece payloads cover all 41 cells.
        let total: usize = routed.iter().map(|(_, p)| p.value.len()).sum();
        assert_eq!(total, 41);
    }

    #[test]
    fn route_within_one_partition_is_unsplit() {
        let ops = ops(4, 100, 2);
        let p = pair(30, 40, 2);
        let routed = ops.route(p.clone(), 4);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0], (1, p));
    }

    #[test]
    fn sort_split_resolves_overlap() {
        let ops = ops(1, 100, 1);
        let out = ops.sort_split(vec![pair(0, 10, 1), pair(5, 15, 1)]);
        let keys: Vec<AggregateKey> = out
            .iter()
            .map(|p| AggregateKey::from_bytes(&p.key).unwrap())
            .collect();
        let runs: Vec<(u128, u128)> = keys.iter().map(|k| (k.run.start, k.run.end)).collect();
        assert_eq!(runs, vec![(0, 4), (5, 10), (5, 10), (11, 15)]);
    }

    #[test]
    fn partition_uses_range_start() {
        let ops = ops(4, 100, 1);
        assert_eq!(ops.partition(&pair(0, 5, 1).key, 4), 0);
        assert_eq!(ops.partition(&pair(80, 90, 1).key, 4), 3);
        // Garbage keys fall back to partition 0.
        assert_eq!(ops.partition(b"garbage", 4), 0);
    }

    #[test]
    fn unparseable_pairs_pass_through() {
        let ops = ops(2, 100, 1);
        let junk = KvPair::new(b"junk".to_vec(), b"v".to_vec());
        let routed = ops.route(junk.clone(), 2);
        assert_eq!(routed, vec![(0, junk.clone())]);
        let out = ops.sort_split(vec![junk.clone()]);
        assert_eq!(out, vec![junk]);
    }

    #[test]
    fn route_slices_emits_the_same_pieces_as_route() {
        let ops = ops(4, 100, 1);
        for p in [pair(20, 60, 1), pair(30, 40, 1)] {
            let mut sliced = Vec::new();
            ops.route_slices(&p.key, &p.value, 4, &mut |part, k, v| {
                sliced.push((part, KvPair::new(k.to_vec(), v.to_vec())));
            });
            assert_eq!(sliced, ops.route(p, 4));
        }
        // Unparseable keys pass through to partition 0 on both paths.
        let junk = KvPair::new(b"junk".to_vec(), b"v".to_vec());
        let mut sliced = Vec::new();
        ops.route_slices(&junk.key, &junk.value, 4, &mut |part, k, v| {
            sliced.push((part, KvPair::new(k.to_vec(), v.to_vec())));
        });
        assert_eq!(sliced, ops.route(junk, 4));
    }

    #[test]
    fn sort_interacts_is_range_overlap() {
        let ops = ops(1, 100, 1);
        assert!(ops.sort_splits());
        let a = pair(0, 10, 1);
        let b = pair(5, 15, 1);
        let c = pair(11, 20, 1);
        assert!(ops.sort_interacts(&a.key, &b.key), "overlap");
        assert!(
            ops.sort_interacts(&a.key, &a.key),
            "equal keys must interact"
        );
        assert!(!ops.sort_interacts(&a.key, &c.key), "disjoint ranges");
        // Same ranges on different variables never interact.
        let mut other_var = a.key.clone();
        other_var[0..4].copy_from_slice(&7u32.to_be_bytes());
        assert!(!ops.sort_interacts(&a.key, &other_var));
        // Unparseable keys conservatively interact with everything.
        assert!(ops.sort_interacts(b"junk", &a.key));
        assert!(ops.sort_interacts(&a.key, b"junk"));
    }

    #[test]
    fn sort_prefix_is_order_preserving_over_valid_and_junk_keys() {
        let ops = ops(1, 100, 1);
        const MAX48: u128 = (1 << 48) - 1;
        // Valid keys (several variables, boundary starts straddling the
        // 48-bit clamp), junk byte strings, prefixes-of-keys — the
        // contract must hold across the whole mixed set.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for variable in [0u32, 1, 7, 0xFFFE, 0xFFFF, u32::MAX] {
            for start in [0u128, 1, 99, MAX48 - 1, MAX48, MAX48 + 1, u128::MAX - 9] {
                for len in [1u64, 10] {
                    let end = start.saturating_add(len as u128 - 1);
                    keys.push(AggregateKey::new(variable, CurveRun { start, end }).to_bytes());
                }
            }
        }
        keys.push(Vec::new());
        keys.push(b"junk".to_vec());
        keys.push(vec![0u8; 3]);
        keys.push(vec![0xFF; 28]);
        keys.push(keys[0][..10].to_vec());
        for a in &keys {
            for b in &keys {
                if ops.sort_prefix(a) < ops.sort_prefix(b) {
                    assert_eq!(
                        ops.compare(a, b),
                        Ordering::Less,
                        "prefix contract violated for {a:?} vs {b:?}"
                    );
                }
            }
        }
        // Below both clamps the prefix is exact, so distinct
        // (variable, start) pairs must not tie.
        let k1 = AggregateKey::new(3, CurveRun { start: 5, end: 9 }).to_bytes();
        let k2 = AggregateKey::new(3, CurveRun { start: 6, end: 9 }).to_bytes();
        let k3 = AggregateKey::new(4, CurveRun { start: 0, end: 9 }).to_bytes();
        assert!(ops.sort_prefix(&k1) < ops.sort_prefix(&k2));
        assert!(ops.sort_prefix(&k2) < ops.sort_prefix(&k3));
    }

    #[test]
    fn serialized_sort_order_equals_semantic_order() {
        let ops = ops(1, 100, 1);
        let a = pair(5, 9, 1);
        let b = pair(5, 12, 1);
        let c = pair(6, 7, 1);
        assert_eq!(ops.compare(&a.key, &b.key), Ordering::Less); // shorter first
        assert_eq!(ops.compare(&b.key, &c.key), Ordering::Less); // start order
    }
}

//! Re-aggregation after key splitting — the paper's §IV-B future-work
//! item, implemented: "Aggregation is currently performed only inside
//! mappers. It could also be performed in other places to offset the
//! increase in key count caused by key splitting."
//!
//! After routing and overlap splitting, a reducer's stream contains many
//! adjacent aggregate records that originally were one. Coalescing merges
//! records whose runs are exactly adjacent (end + 1 == next start) for the
//! same variable, undoing split inflation without changing any cell's
//! value.

use super::key::AggregateRecord;
use scihadoop_sfc::CurveRun;

/// Merge adjacent contiguous records (same variable, `a.end + 1 ==
/// b.start`) in a sorted record stream. Records must be pairwise
/// non-overlapping (i.e. post-[`overlap_split`]+grouping, or any split
/// output); overlapping inputs are left unmerged rather than corrupted.
///
/// [`overlap_split`]: super::split::overlap_split
pub fn coalesce_adjacent(mut records: Vec<AggregateRecord>) -> Vec<AggregateRecord> {
    records.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out: Vec<AggregateRecord> = Vec::with_capacity(records.len());
    for rec in records {
        match out.last_mut() {
            Some(prev)
                if prev.key.variable == rec.key.variable
                    && prev.key.run.end.checked_add(1) == Some(rec.key.run.start) =>
            {
                prev.key.run = CurveRun {
                    start: prev.key.run.start,
                    end: rec.key.run.end,
                };
                prev.values.extend_from_slice(&rec.values);
            }
            _ => out.push(rec),
        }
    }
    out
}

/// Fraction of split inflation recovered by coalescing: given the
/// original record count before splitting, the count after splitting, and
/// the count after coalescing, returns 1.0 for full recovery and 0.0 for
/// none.
pub fn split_recovery(original: usize, split: usize, coalesced: usize) -> f64 {
    if split <= original {
        return 1.0;
    }
    (split - coalesced) as f64 / (split - original) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::key::AggregateKey;
    use crate::aggregate::split::{route_split, RangePartitioner};

    fn rec(start: u128, end: u128) -> AggregateRecord {
        let n = (end - start + 1) as usize;
        AggregateRecord::new(
            AggregateKey::new(0, CurveRun { start, end }),
            (0..n).map(|i| ((start as usize + i) % 251) as u8).collect(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn adjacent_records_merge() {
        let merged = coalesce_adjacent(vec![rec(5, 9), rec(0, 4), rec(10, 12)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].key.run, CurveRun { start: 0, end: 12 });
        // Values concatenate in curve order.
        let expected = rec(0, 12);
        assert_eq!(merged[0].values, expected.values);
    }

    #[test]
    fn gaps_stop_merging() {
        let merged = coalesce_adjacent(vec![rec(0, 4), rec(6, 9)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_variables_do_not_merge() {
        let a = rec(0, 4);
        let mut b = rec(5, 9);
        b.key.variable = 1;
        let merged = coalesce_adjacent(vec![a, b]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn coalesce_inverts_route_split() {
        // The §IV-B scenario end-to-end: one record split across
        // partitions, then each partition's share coalesced back.
        let original = rec(0, 99);
        let partitioner = RangePartitioner::uniform(4, 100);
        let pieces = route_split(&original, &partitioner, 1);
        assert_eq!(pieces.len(), 4);
        // All pieces land back together (e.g. the same reducer after a
        // rebalance): coalescing restores the original exactly.
        let merged = coalesce_adjacent(pieces.into_iter().map(|(_, r)| r).collect());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], original);
    }

    #[test]
    fn overlapping_inputs_are_left_alone() {
        // Defensive: overlapping records (which should have gone through
        // overlap_split first) must not be silently merged.
        let merged = coalesce_adjacent(vec![rec(0, 5), rec(3, 9)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_adjacent(vec![]).is_empty());
    }

    #[test]
    fn recovery_metric() {
        assert_eq!(split_recovery(10, 40, 10), 1.0);
        assert_eq!(split_recovery(10, 40, 40), 0.0);
        assert_eq!(split_recovery(10, 40, 25), 0.5);
        assert_eq!(split_recovery(10, 10, 10), 1.0);
    }
}

//! Key splitting (§IV-B) — the "one set of changes inside Hadoop" the
//! paper made, reproduced here as pure functions the engine's key-
//! semantics hook calls.
//!
//! Two cases:
//! 1. *Routing*: "A mapper may generate an aggregate key whose simple
//!    keys do not all route to the same reducer" — split at partition
//!    boundaries.
//! 2. *Sorting*: "When sorting keys at a reducer, overlapping keys are
//!    split along the overlap boundaries (Fig. 7). This is necessary
//!    because unequal overlapping keys contain data that map to the same
//!    simple keys, but since the aggregate keys are unequal, the data
//!    would not be reduced together."

use super::key::{AggregateKey, AggregateRecord};
use scihadoop_sfc::{CurveIndex, CurveRun};
use std::collections::BTreeSet;

/// Routes curve indices to reducers by contiguous index ranges — the
/// routing SciHadoop uses so each reducer owns a region of the space.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    /// `boundaries[p]` is the first index owned by partition `p`;
    /// partition `p` owns `boundaries[p] .. boundaries[p+1]` (the last
    /// partition is unbounded above).
    boundaries: Vec<CurveIndex>,
}

impl RangePartitioner {
    /// Partition `[0, span)` into `parts` equal contiguous ranges.
    pub fn uniform(parts: usize, span: CurveIndex) -> Self {
        assert!(parts >= 1, "need at least one partition");
        assert!(span >= parts as CurveIndex, "span smaller than parts");
        let step = span / parts as CurveIndex;
        RangePartitioner {
            boundaries: (0..parts).map(|p| p as CurveIndex * step).collect(),
        }
    }

    /// Explicit boundaries; `boundaries[0]` must be 0 and the list strictly
    /// increasing.
    pub fn from_boundaries(boundaries: Vec<CurveIndex>) -> Self {
        assert!(!boundaries.is_empty(), "need at least one partition");
        assert_eq!(boundaries[0], 0, "partition 0 must start at index 0");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must increase strictly"
        );
        RangePartitioner { boundaries }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.boundaries.len()
    }

    /// Partition owning `index`.
    pub fn partition_of(&self, index: CurveIndex) -> usize {
        match self.boundaries.binary_search(&index) {
            Ok(p) => p,
            Err(ins) => ins - 1,
        }
    }

    /// First index of partition `p`, or `None` past the end.
    pub fn lower_bound(&self, p: usize) -> Option<CurveIndex> {
        self.boundaries.get(p).copied()
    }
}

/// Split an aggregate record at partition boundaries and route each piece
/// (§IV-B case 1). Pieces stay contiguous, so the output is at most
/// `1 + number of boundaries crossed` records.
pub fn route_split(
    record: &AggregateRecord,
    partitioner: &RangePartitioner,
    value_width: usize,
) -> Vec<(usize, AggregateRecord)> {
    let mut out = Vec::new();
    let mut start = record.key.run.start;
    let end = record.key.run.end;
    while start <= end {
        let p = partitioner.partition_of(start);
        let piece_end = match partitioner.lower_bound(p + 1) {
            Some(next) if next <= end => next - 1,
            _ => end,
        };
        let run = CurveRun {
            start,
            end: piece_end,
        };
        out.push((p, record.slice(run, value_width)));
        if piece_end == end {
            break;
        }
        start = piece_end + 1;
    }
    out
}

/// Split overlapping aggregate records along overlap boundaries
/// (§IV-B case 2, Fig. 7): afterwards any two records are either equal in
/// range or disjoint, so grouping by key reunites data for the same
/// simple keys.
pub fn overlap_split(records: Vec<AggregateRecord>, value_width: usize) -> Vec<AggregateRecord> {
    // Collect cut points per variable: every range start and every
    // range end+1 is a potential boundary.
    let mut cuts: BTreeSet<(u32, CurveIndex)> = BTreeSet::new();
    for r in &records {
        cuts.insert((r.key.variable, r.key.run.start));
        if let Some(after) = r.key.run.end.checked_add(1) {
            cuts.insert((r.key.variable, after));
        }
    }
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let var = r.key.variable;
        let mut start = r.key.run.start;
        let end = r.key.run.end;
        while start <= end {
            // Next cut strictly after `start`, within this record.
            let next_cut = cuts
                .range((
                    std::ops::Bound::Excluded((var, start)),
                    std::ops::Bound::Included((var, end)),
                ))
                .next()
                .map(|&(_, c)| c);
            let piece_end = match next_cut {
                Some(c) => c - 1,
                None => end,
            };
            out.push(r.slice(
                CurveRun {
                    start,
                    end: piece_end,
                },
                value_width,
            ));
            if piece_end == end {
                break;
            }
            start = piece_end + 1;
        }
    }
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// Group records with identical keys (after [`overlap_split`] keys are
/// equal or disjoint): each group is one reduce call's input.
pub fn group_equal(mut records: Vec<AggregateRecord>) -> Vec<(AggregateKey, Vec<Vec<u8>>)> {
    records.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out: Vec<(AggregateKey, Vec<Vec<u8>>)> = Vec::new();
    for r in records {
        match out.last_mut() {
            Some((k, vals)) if *k == r.key => vals.push(r.values),
            _ => out.push((r.key, vec![r.values])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(var: u32, start: CurveIndex, end: CurveIndex, width: usize) -> AggregateRecord {
        let n = (end - start + 1) as usize;
        let values: Vec<u8> = (0..n)
            .flat_map(|i| vec![((start as usize + i) % 251) as u8; width])
            .collect();
        AggregateRecord::new(
            AggregateKey::new(var, CurveRun { start, end }),
            values,
            width,
        )
        .unwrap()
    }

    #[test]
    fn uniform_partitioner_owns_contiguous_ranges() {
        let p = RangePartitioner::uniform(4, 100);
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(24), 0);
        assert_eq!(p.partition_of(25), 1);
        assert_eq!(p.partition_of(99), 3);
        assert_eq!(p.partition_of(1000), 3); // unbounded last partition
        assert_eq!(p.parts(), 4);
    }

    #[test]
    fn route_split_preserves_all_cells() {
        let p = RangePartitioner::uniform(4, 100);
        let r = rec(0, 20, 60, 4);
        let pieces = route_split(&r, &p, 4);
        // Crosses boundaries at 25 and 50: three pieces.
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].0, 0);
        assert_eq!(pieces[1].0, 1);
        assert_eq!(pieces[2].0, 2);
        let total: u128 = pieces.iter().map(|(_, r)| r.key.cell_count()).sum();
        assert_eq!(total, 41);
        // Cell values survive the split.
        for (_, piece) in &pieces {
            for i in piece.key.run.start..=piece.key.run.end {
                assert_eq!(
                    piece.value_at(i, 4).unwrap(),
                    r.value_at(i, 4).unwrap(),
                    "cell {i}"
                );
            }
        }
    }

    #[test]
    fn route_split_single_partition_is_identity() {
        let p = RangePartitioner::uniform(4, 100);
        let r = rec(0, 30, 40, 2);
        let pieces = route_split(&r, &p, 2);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].0, 1);
        assert_eq!(pieces[0].1, r);
    }

    #[test]
    fn overlap_split_fig7() {
        // Fig. 7: two overlapping ranges are split on the overlap
        // boundaries. [0,10] and [5,15] → [0,4],[5,10] and [5,10],[11,15].
        let a = rec(0, 0, 10, 1);
        let b = rec(0, 5, 15, 1);
        let pieces = overlap_split(vec![a, b], 1);
        let runs: Vec<(CurveIndex, CurveIndex)> = pieces
            .iter()
            .map(|r| (r.key.run.start, r.key.run.end))
            .collect();
        assert_eq!(runs, vec![(0, 4), (5, 10), (5, 10), (11, 15)]);
    }

    #[test]
    fn overlap_split_nested_ranges() {
        // [0,20] containing [5,10].
        let pieces = overlap_split(vec![rec(0, 0, 20, 1), rec(0, 5, 10, 1)], 1);
        let runs: Vec<(CurveIndex, CurveIndex)> = pieces
            .iter()
            .map(|r| (r.key.run.start, r.key.run.end))
            .collect();
        assert_eq!(runs, vec![(0, 4), (5, 10), (5, 10), (11, 20)]);
    }

    #[test]
    fn overlap_split_disjoint_is_identity() {
        let a = rec(0, 0, 4, 2);
        let b = rec(0, 10, 14, 2);
        let pieces = overlap_split(vec![b.clone(), a.clone()], 2);
        assert_eq!(pieces, vec![a, b]);
    }

    #[test]
    fn overlap_split_ignores_other_variables() {
        // Same ranges, different variables: no split.
        let a = rec(0, 0, 10, 1);
        let b = rec(1, 5, 15, 1);
        let pieces = overlap_split(vec![a.clone(), b.clone()], 1);
        assert_eq!(pieces, vec![a, b]);
    }

    #[test]
    fn overlap_split_preserves_cell_values() {
        let a = rec(0, 0, 10, 4);
        let b = rec(0, 5, 15, 4);
        let pieces = overlap_split(vec![a.clone(), b.clone()], 4);
        for piece in &pieces {
            for i in piece.key.run.start..=piece.key.run.end {
                let original = if piece.value_at(i, 4) == a.value_at(i, 4) {
                    &a
                } else {
                    &b
                };
                assert_eq!(piece.value_at(i, 4), original.value_at(i, 4));
            }
        }
        // Total cells double-counted in the overlap region.
        let total: u128 = pieces.iter().map(|r| r.key.cell_count()).sum();
        assert_eq!(total, 22);
    }

    #[test]
    fn group_equal_groups_identical_ranges() {
        let pieces = overlap_split(vec![rec(0, 0, 10, 1), rec(0, 5, 15, 1)], 1);
        let groups = group_equal(pieces);
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes, vec![1, 2, 1]);
    }

    #[test]
    fn split_counts_measure_key_inflation() {
        // §IV-B's open question: "We have not yet determined how much the
        // key count is increased by key splitting." Quantify on a case.
        let p = RangePartitioner::uniform(8, 80);
        let r = rec(0, 0, 79, 1);
        let pieces = route_split(&r, &p, 1);
        assert_eq!(pieces.len(), 8, "one record became {} pieces", pieces.len());
    }

    #[test]
    #[should_panic(expected = "span smaller than parts")]
    fn uniform_rejects_tiny_span() {
        let _ = RangePartitioner::uniform(10, 5);
    }

    #[test]
    fn from_boundaries_validation() {
        let p = RangePartitioner::from_boundaries(vec![0, 10, 20]);
        assert_eq!(p.partition_of(9), 0);
        assert_eq!(p.partition_of(10), 1);
    }
}

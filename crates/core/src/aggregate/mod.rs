//! §IV — Key aggregation.
//!
//! Instead of emitting one `(coordinate, value)` pair per cell, the
//! mapper hands its pairs to this library, which maps coordinates onto a
//! space-filling curve and collapses contiguous curve indices into
//! aggregate keys (`(start, length)` ranges) whose values are stored in
//! curve order (§IV-A). Because Hadoop assumes keys are atomic (§II-B),
//! aggregate keys must be splittable in two places (§IV-B):
//!
//! * **routing** — an aggregate key whose simple keys do not all route to
//!   the same reducer is split at partition boundaries;
//! * **sorting** — overlapping aggregate keys at a reducer are split
//!   along the overlap boundaries (Fig. 7) so that data for the same
//!   simple keys is reduced together.
//!
//! §IV-C's alignment/padding mitigation for overlap is in [`align`].

pub mod align;
pub mod buffer;
pub mod coalesce;
pub mod key;
pub mod keyops;
pub mod split;

pub use align::{align_run, expand_record, overlapping_pairs, padding_overhead};
pub use buffer::Aggregator;
pub use coalesce::{coalesce_adjacent, split_recovery};
pub use key::{AggregateKey, AggregateRecord};
pub use keyops::AggregateKeyOps;
pub use split::{group_equal, overlap_split, route_split, RangePartitioner};

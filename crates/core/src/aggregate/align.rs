//! Avoiding key overlap by alignment (§IV-C).
//!
//! "If keys are allowed to contain empty space, overlap may be reduced by
//! actually expanding the key to a predetermined alignment. If the
//! alignment is large enough, this will increase the probability that
//! overlapping keys will actually be equal. This also adds complexity,
//! storage overhead per aggregate value, and false sharing, so it may not
//! be worthwhile."
//!
//! We implement the expansion plus the metrics (`overlapping_pairs`,
//! padding overhead) that let the alignment ablation bench quantify that
//! trade-off.

use super::key::{AggregateKey, AggregateRecord};
use scihadoop_sfc::{CurveIndex, CurveRun};

/// Expand a run outward to `alignment`-sized boundaries.
pub fn align_run(run: CurveRun, alignment: CurveIndex) -> CurveRun {
    assert!(alignment >= 1, "alignment must be positive");
    let start = (run.start / alignment) * alignment;
    let end_block = run.end / alignment;
    let end = end_block
        .checked_add(1)
        .and_then(|b| b.checked_mul(alignment))
        .map(|e| e - 1)
        .unwrap_or(u128::MAX);
    CurveRun { start, end }
}

/// Expand a record to alignment boundaries, padding new cells with
/// `fill` (one value's worth of bytes). The padding is the "storage
/// overhead per aggregate value" §IV-C warns about.
pub fn expand_record(
    record: &AggregateRecord,
    alignment: CurveIndex,
    value_width: usize,
    fill: &[u8],
) -> AggregateRecord {
    assert_eq!(fill.len(), value_width, "fill must be one value wide");
    let target = align_run(record.key.run, alignment);
    let lead = (record.key.run.start - target.start) as usize;
    let trail = (target.end - record.key.run.end) as usize;
    let mut values = Vec::with_capacity((lead + trail) * value_width + record.values.len());
    for _ in 0..lead {
        values.extend_from_slice(fill);
    }
    values.extend_from_slice(&record.values);
    for _ in 0..trail {
        values.extend_from_slice(fill);
    }
    AggregateRecord {
        key: AggregateKey::new(record.key.variable, target),
        values,
    }
}

/// Count pairs of records (same variable) whose ranges overlap but are
/// not equal — exactly the pairs the sort phase would have to split.
pub fn overlapping_pairs(records: &[AggregateRecord]) -> usize {
    let mut count = 0;
    for i in 0..records.len() {
        for j in i + 1..records.len() {
            let (a, b) = (&records[i].key, &records[j].key);
            if a.variable == b.variable && a.run.overlaps(&b.run) && a.run != b.run {
                count += 1;
            }
        }
    }
    count
}

/// Padding overhead in bytes introduced by aligning `records`.
pub fn padding_overhead(
    records: &[AggregateRecord],
    alignment: CurveIndex,
    value_width: usize,
) -> u128 {
    records
        .iter()
        .map(|r| {
            let aligned = align_run(r.key.run, alignment);
            (aligned.len() - r.key.run.len()) * value_width as u128
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: CurveIndex, end: CurveIndex) -> AggregateRecord {
        let n = (end - start + 1) as usize;
        AggregateRecord::new(
            AggregateKey::new(0, CurveRun { start, end }),
            vec![1u8; n],
            1,
        )
        .unwrap()
    }

    #[test]
    fn align_run_expands_to_boundaries() {
        assert_eq!(
            align_run(CurveRun { start: 5, end: 11 }, 8),
            CurveRun { start: 0, end: 15 }
        );
        assert_eq!(
            align_run(CurveRun { start: 8, end: 15 }, 8),
            CurveRun { start: 8, end: 15 }
        );
        assert_eq!(
            align_run(CurveRun { start: 0, end: 0 }, 1),
            CurveRun { start: 0, end: 0 }
        );
    }

    #[test]
    fn expand_record_pads_with_fill() {
        let r = rec(5, 6);
        let e = expand_record(&r, 4, 1, &[0xFF]);
        assert_eq!(e.key.run, CurveRun { start: 4, end: 7 });
        assert_eq!(e.values, vec![0xFF, 1, 1, 0xFF]);
    }

    #[test]
    fn aligned_overlapping_keys_become_equal() {
        // The §IV-C scenario: two records overlapping inside one aligned
        // block become equal after expansion.
        let a = rec(3, 9);
        let b = rec(5, 12);
        assert_eq!(overlapping_pairs(&[a.clone(), b.clone()]), 1);
        let ea = expand_record(&a, 16, 1, &[0]);
        let eb = expand_record(&b, 16, 1, &[0]);
        assert_eq!(ea.key, eb.key);
        assert_eq!(overlapping_pairs(&[ea, eb]), 0);
    }

    #[test]
    fn straddling_records_still_overlap() {
        // §IV-C: "no alignment is large enough to completely eliminate
        // overlap, because there are always rectangles that straddle the
        // alignment boundary."
        let a = rec(6, 9); // straddles the 8-boundary
        let b = rec(8, 12);
        let ea = expand_record(&a, 8, 1, &[0]);
        let eb = expand_record(&b, 8, 1, &[0]);
        assert_eq!(ea.key.run, CurveRun { start: 0, end: 15 });
        assert_eq!(eb.key.run, CurveRun { start: 8, end: 15 });
        assert_eq!(overlapping_pairs(&[ea, eb]), 1);
    }

    #[test]
    fn padding_overhead_counts_added_cells() {
        let records = vec![rec(5, 6)];
        // Aligned to 8: [0,7] = 8 cells, 2 real → 6 bytes padding.
        assert_eq!(padding_overhead(&records, 8, 1), 6);
        assert_eq!(padding_overhead(&records, 1, 1), 0);
    }

    #[test]
    fn larger_alignment_reduces_overlap_but_costs_more() {
        // A sliding-window-like workload: shifted ranges.
        let records: Vec<AggregateRecord> = (0..8).map(|i| rec(i * 6, i * 6 + 9)).collect();
        let base = overlapping_pairs(&records);
        let mut prev_overlap = base;
        let mut prev_cost = 0u128;
        for align in [4u128, 16, 64] {
            let expanded: Vec<AggregateRecord> = records
                .iter()
                .map(|r| expand_record(r, align, 1, &[0]))
                .collect();
            let overlap = overlapping_pairs(&expanded);
            let cost = padding_overhead(&records, align, 1);
            assert!(overlap <= prev_overlap || cost >= prev_cost);
            prev_overlap = overlap;
            prev_cost = cost;
        }
    }
}

//! The aggregation buffer (§IV-A): the user-facing library mappers push
//! `(coordinate, value)` pairs into.
//!
//! "Aggregation is performed on subsets of the intermediate data due to
//! memory limitations. Whenever the size of the aggregation buffer
//! reaches a set threshold, the results are written out and the buffer is
//! cleared."

use super::key::{AggregateKey, AggregateRecord};
use scihadoop_grid::{Coord, GridError};
use scihadoop_sfc::{collapse_sorted, Curve, CurveIndex};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Buffers `(variable, coordinate, value)` triples, collapses contiguous
/// curve indices into [`AggregateRecord`]s, and flushes when a byte
/// threshold is reached.
pub struct Aggregator {
    curve: Arc<dyn Curve>,
    threshold_bytes: usize,
    /// Sorted staging area: (variable, curve index) → value bytes.
    buf: BTreeMap<(u32, CurveIndex), Vec<u8>>,
    buffered_bytes: usize,
    /// Value width per variable, fixed at first push.
    widths: BTreeMap<u32, usize>,
    /// Total simple pairs pushed (statistics for the evaluation).
    pairs_in: u64,
    /// Total aggregate records flushed.
    records_out: u64,
}

impl Aggregator {
    /// A buffer over `curve`, flushing automatically once roughly
    /// `threshold_bytes` of values are staged.
    pub fn new(curve: impl Curve + 'static, threshold_bytes: usize) -> Self {
        Self::with_curve(Arc::new(curve), threshold_bytes)
    }

    /// Like [`Aggregator::new`] with a shared curve handle.
    pub fn with_curve(curve: Arc<dyn Curve>, threshold_bytes: usize) -> Self {
        assert!(threshold_bytes > 0, "threshold must be positive");
        Aggregator {
            curve,
            threshold_bytes,
            buf: BTreeMap::new(),
            buffered_bytes: 0,
            widths: BTreeMap::new(),
            pairs_in: 0,
            records_out: 0,
        }
    }

    /// Push a pair for variable 0. Returns flushed records if the push
    /// crossed the buffer threshold.
    pub fn push(
        &mut self,
        coord: &Coord,
        value: &[u8],
    ) -> Result<Option<Vec<AggregateRecord>>, GridError> {
        self.push_var(0, coord, value)
    }

    /// Push a pair for an explicit variable.
    pub fn push_var(
        &mut self,
        variable: u32,
        coord: &Coord,
        value: &[u8],
    ) -> Result<Option<Vec<AggregateRecord>>, GridError> {
        let width = *self.widths.entry(variable).or_insert(value.len());
        if value.len() != width {
            return Err(GridError::Deserialize(format!(
                "variable {variable} has {width}-byte values, got {}",
                value.len()
            )));
        }
        if width == 0 {
            return Err(GridError::Deserialize("zero-width values".into()));
        }
        let index = self.curve.index_of_coord(coord)?;
        let prev = self.buf.insert((variable, index), value.to_vec());
        if prev.is_none() {
            self.buffered_bytes += width;
        }
        self.pairs_in += 1;
        if self.buffered_bytes >= self.threshold_bytes {
            Ok(Some(self.flush()))
        } else {
            Ok(None)
        }
    }

    /// Drain the buffer into aggregate records, one per maximal
    /// contiguous index run per variable.
    pub fn flush(&mut self) -> Vec<AggregateRecord> {
        let mut out = Vec::new();
        let buf = std::mem::take(&mut self.buf);
        self.buffered_bytes = 0;

        let mut current_var: Option<u32> = None;
        let mut indices: Vec<CurveIndex> = Vec::new();
        let mut values: BTreeMap<CurveIndex, Vec<u8>> = BTreeMap::new();
        let emit = |var: u32,
                    indices: &mut Vec<CurveIndex>,
                    values: &mut BTreeMap<CurveIndex, Vec<u8>>,
                    out: &mut Vec<AggregateRecord>| {
            for run in collapse_sorted(indices) {
                let mut payload = Vec::new();
                for i in run.start..=run.end {
                    payload.extend_from_slice(&values[&i]);
                }
                out.push(AggregateRecord {
                    key: AggregateKey::new(var, run),
                    values: payload,
                });
            }
            indices.clear();
            values.clear();
        };

        for ((var, index), value) in buf {
            if current_var != Some(var) {
                if let Some(v) = current_var {
                    emit(v, &mut indices, &mut values, &mut out);
                }
                current_var = Some(var);
            }
            indices.push(index);
            values.insert(index, value);
        }
        if let Some(v) = current_var {
            emit(v, &mut indices, &mut values, &mut out);
        }
        self.records_out += out.len() as u64;
        out
    }

    /// The curve indices are computed by this curve.
    pub fn curve(&self) -> &Arc<dyn Curve> {
        &self.curve
    }

    /// Value width of a variable, if any pair has been pushed for it.
    pub fn value_width(&self, variable: u32) -> Option<usize> {
        self.widths.get(&variable).copied()
    }

    /// Simple pairs pushed so far.
    pub fn pairs_in(&self) -> u64 {
        self.pairs_in
    }

    /// Aggregate records flushed so far.
    pub fn records_out(&self) -> u64 {
        self.records_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_sfc::{CurveRun, RowMajorCurve, ZOrderCurve};

    #[test]
    fn full_aligned_tile_collapses_to_one_record() {
        let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, 4), 1 << 20);
        for x in 0..4 {
            for y in 0..4 {
                agg.push(&Coord::new(vec![x, y]), &[x as u8, y as u8])
                    .unwrap();
            }
        }
        let recs = agg.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].key.cell_count(), 16);
        assert_eq!(recs[0].values.len(), 32);
    }

    #[test]
    fn values_are_stored_in_curve_order() {
        let curve = ZOrderCurve::with_bits(2, 4);
        let mut agg = Aggregator::new(curve.clone(), 1 << 20);
        // Push in row-major order; values must come out in Z order.
        for x in 0..2 {
            for y in 0..2 {
                agg.push(&Coord::new(vec![x, y]), &[(10 * x + y) as u8])
                    .unwrap();
            }
        }
        let recs = agg.flush();
        assert_eq!(recs.len(), 1);
        // Z order on the unit square: (0,0) (0,1) (1,0) (1,1).
        assert_eq!(recs[0].values, vec![0, 1, 10, 11]);
    }

    #[test]
    fn disjoint_regions_produce_multiple_records() {
        let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, 4), 1 << 20);
        agg.push(&Coord::new(vec![0, 0]), &[1]).unwrap();
        agg.push(&Coord::new(vec![7, 7]), &[2]).unwrap();
        let recs = agg.flush();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.key.cell_count() == 1));
    }

    #[test]
    fn threshold_triggers_auto_flush() {
        // 8-byte threshold, 4-byte values: third push flushes.
        let mut agg = Aggregator::new(RowMajorCurve::with_bits(1, 8), 8);
        assert!(agg.push(&Coord::new(vec![0]), &[0; 4]).unwrap().is_none());
        let flushed = agg.push(&Coord::new(vec![1]), &[0; 4]).unwrap();
        let recs = flushed.expect("crossing threshold flushes");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].key.run, CurveRun { start: 0, end: 1 });
        // Buffer is empty again.
        assert!(agg.push(&Coord::new(vec![5]), &[0; 4]).unwrap().is_none());
    }

    #[test]
    fn flush_boundary_reduces_aggregation() {
        // §IV-A: "keys generated after a flush cannot be aggregated with
        // keys generated before a flush."
        let mut big = Aggregator::new(RowMajorCurve::with_bits(1, 8), 1 << 20);
        let mut small = Aggregator::new(RowMajorCurve::with_bits(1, 8), 4);
        let mut small_records = 0;
        for i in 0..16 {
            big.push(&Coord::new(vec![i]), &[i as u8]).unwrap();
            if let Some(recs) = small.push(&Coord::new(vec![i]), &[i as u8]).unwrap() {
                small_records += recs.len();
            }
        }
        let big_records = big.flush().len();
        small_records += small.flush().len();
        assert_eq!(big_records, 1);
        assert!(small_records > 1);
    }

    #[test]
    fn variables_do_not_aggregate_together() {
        let mut agg = Aggregator::new(RowMajorCurve::with_bits(1, 8), 1 << 20);
        agg.push_var(0, &Coord::new(vec![0]), &[1]).unwrap();
        agg.push_var(1, &Coord::new(vec![1]), &[2]).unwrap();
        let recs = agg.flush();
        assert_eq!(recs.len(), 2);
        assert_ne!(recs[0].key.variable, recs[1].key.variable);
    }

    #[test]
    fn duplicate_coordinate_keeps_latest_value() {
        let mut agg = Aggregator::new(RowMajorCurve::with_bits(1, 8), 1 << 20);
        agg.push(&Coord::new(vec![3]), &[1]).unwrap();
        agg.push(&Coord::new(vec![3]), &[9]).unwrap();
        let recs = agg.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].values, vec![9]);
    }

    #[test]
    fn mixed_value_width_is_rejected() {
        let mut agg = Aggregator::new(RowMajorCurve::with_bits(1, 8), 1 << 20);
        agg.push(&Coord::new(vec![0]), &[0; 4]).unwrap();
        assert!(agg.push(&Coord::new(vec![1]), &[0; 2]).is_err());
        // Different variables may differ in width.
        assert!(agg.push_var(1, &Coord::new(vec![1]), &[0; 2]).is_ok());
    }

    #[test]
    fn negative_coordinates_are_rejected_by_curve() {
        let mut agg = Aggregator::new(ZOrderCurve::with_bits(2, 4), 1 << 20);
        assert!(agg.push(&Coord::new(vec![-1, 0]), &[0]).is_err());
    }

    #[test]
    fn statistics_count_pairs_and_records() {
        let mut agg = Aggregator::new(RowMajorCurve::with_bits(1, 8), 1 << 20);
        for i in 0..10 {
            agg.push(&Coord::new(vec![i]), &[0]).unwrap();
        }
        let recs = agg.flush();
        assert_eq!(agg.pairs_in(), 10);
        assert_eq!(agg.records_out(), recs.len() as u64);
    }
}

//! Aggregate keys: contiguous curve-index ranges (§IV-A: "each contiguous
//! range of indices becomes an aggregate key").

use scihadoop_grid::GridError;
use scihadoop_sfc::{CurveIndex, CurveRun};

/// An aggregate intermediate key: a variable plus an inclusive range of
/// space-filling-curve indices.
///
/// Replaces up to `run.len()` simple keys (each ~16–23 bytes serialized,
/// see `scihadoop-grid::writable`) with one constant-size key — the
/// mechanism behind Fig. 8's keys-to-kilobytes collapse.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggregateKey {
    /// Variable index (names live in dataset metadata; the paper's §I
    /// measurements show why names must not ride along on every key).
    pub variable: u32,
    /// Inclusive curve-index range.
    pub run: CurveRun,
}

/// Serialized size of an aggregate key: u32 variable + u128 start +
/// u64 length, all big-endian so bytewise sorting equals numeric sorting.
pub const AGGREGATE_KEY_LEN: usize = 4 + 16 + 8;

impl AggregateKey {
    /// Construct a key.
    pub fn new(variable: u32, run: CurveRun) -> Self {
        AggregateKey { variable, run }
    }

    /// A key covering a single curve index.
    pub fn singleton(variable: u32, index: CurveIndex) -> Self {
        AggregateKey {
            variable,
            run: CurveRun::singleton(index),
        }
    }

    /// Number of simple keys this aggregate key stands for.
    pub fn cell_count(&self) -> u128 {
        self.run.len()
    }

    /// Serialize (big-endian, bytewise-sortable).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(AGGREGATE_KEY_LEN);
        out.extend_from_slice(&self.variable.to_be_bytes());
        out.extend_from_slice(&self.run.start.to_be_bytes());
        out.extend_from_slice(&(self.run.len() as u64).to_be_bytes());
        out
    }

    /// Deserialize.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, GridError> {
        if buf.len() < AGGREGATE_KEY_LEN {
            return Err(GridError::Deserialize(format!(
                "aggregate key needs {AGGREGATE_KEY_LEN} bytes, got {}",
                buf.len()
            )));
        }
        let variable = u32::from_be_bytes(buf[0..4].try_into().unwrap());
        let start = u128::from_be_bytes(buf[4..20].try_into().unwrap());
        let len = u64::from_be_bytes(buf[20..28].try_into().unwrap());
        if len == 0 {
            return Err(GridError::Deserialize("zero-length aggregate key".into()));
        }
        let end = start
            .checked_add(len as u128 - 1)
            .ok_or_else(|| GridError::Deserialize("aggregate key overflows".into()))?;
        Ok(AggregateKey {
            variable,
            run: CurveRun { start, end },
        })
    }
}

/// An aggregate key plus its values, stored contiguously in curve order
/// (§I: "values can be stored in order and keys are represented in
/// aggregate").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateRecord {
    /// The range this record covers.
    pub key: AggregateKey,
    /// `key.cell_count() * value_width` bytes, one fixed-width value per
    /// cell, in ascending curve-index order.
    pub values: Vec<u8>,
}

impl AggregateRecord {
    /// Construct a record, checking the value payload length.
    pub fn new(key: AggregateKey, values: Vec<u8>, value_width: usize) -> Result<Self, GridError> {
        let expected = key.cell_count() * value_width as u128;
        if values.len() as u128 != expected {
            return Err(GridError::Deserialize(format!(
                "aggregate record for {} cells × {value_width} B needs {expected} B, got {}",
                key.cell_count(),
                values.len()
            )));
        }
        Ok(AggregateRecord { key, values })
    }

    /// The values of one cell within the run.
    pub fn value_at(&self, index: CurveIndex, value_width: usize) -> Option<&[u8]> {
        if !self.key.run.contains(index) {
            return None;
        }
        let off = (index - self.key.run.start) as usize * value_width;
        Some(&self.values[off..off + value_width])
    }

    /// Slice the record to a sub-run (used by both split paths).
    pub fn slice(&self, run: scihadoop_sfc::CurveRun, value_width: usize) -> AggregateRecord {
        assert!(
            run.start >= self.key.run.start && run.end <= self.key.run.end,
            "slice {run:?} outside record {:?}",
            self.key.run
        );
        let from = (run.start - self.key.run.start) as usize * value_width;
        let to = (run.end - self.key.run.start + 1) as usize * value_width;
        AggregateRecord {
            key: AggregateKey::new(self.key.variable, run),
            values: self.values[from..to].to_vec(),
        }
    }

    /// Total serialized size: key + values (per-record framing is the
    /// engine's concern).
    pub fn serialized_len(&self) -> usize {
        AGGREGATE_KEY_LEN + self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrips() {
        let k = AggregateKey::new(
            3,
            CurveRun {
                start: 1000,
                end: 1009,
            },
        );
        let bytes = k.to_bytes();
        assert_eq!(bytes.len(), AGGREGATE_KEY_LEN);
        assert_eq!(AggregateKey::from_bytes(&bytes).unwrap(), k);
    }

    #[test]
    fn key_bytes_sort_by_variable_then_start() {
        let a = AggregateKey::new(
            0,
            CurveRun {
                start: 500,
                end: 600,
            },
        );
        let b = AggregateKey::new(
            0,
            CurveRun {
                start: 501,
                end: 501,
            },
        );
        let c = AggregateKey::new(1, CurveRun { start: 0, end: 0 });
        let mut v = [c.to_bytes(), b.to_bytes(), a.to_bytes()];
        v.sort();
        assert_eq!(v[0], a.to_bytes());
        assert_eq!(v[1], b.to_bytes());
        assert_eq!(v[2], c.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(AggregateKey::from_bytes(&[0; 10]).is_err());
        // Zero length.
        let mut bytes = AggregateKey::singleton(0, 5).to_bytes();
        bytes[20..28].copy_from_slice(&0u64.to_be_bytes());
        assert!(AggregateKey::from_bytes(&bytes).is_err());
        // Overflowing range.
        let mut bytes = AggregateKey::singleton(0, u128::MAX).to_bytes();
        bytes[20..28].copy_from_slice(&2u64.to_be_bytes());
        assert!(AggregateKey::from_bytes(&bytes).is_err());
    }

    #[test]
    fn record_checks_payload_length() {
        let k = AggregateKey::new(0, CurveRun { start: 10, end: 12 });
        assert!(AggregateRecord::new(k.clone(), vec![0; 12], 4).is_ok());
        assert!(AggregateRecord::new(k, vec![0; 11], 4).is_err());
    }

    #[test]
    fn value_at_indexes_in_curve_order() {
        let k = AggregateKey::new(0, CurveRun { start: 10, end: 12 });
        let values = vec![1u8, 1, 2, 2, 3, 3];
        let r = AggregateRecord::new(k, values, 2).unwrap();
        assert_eq!(r.value_at(10, 2).unwrap(), &[1, 1]);
        assert_eq!(r.value_at(12, 2).unwrap(), &[3, 3]);
        assert!(r.value_at(13, 2).is_none());
    }

    #[test]
    fn slice_extracts_subrange() {
        let k = AggregateKey::new(
            7,
            CurveRun {
                start: 100,
                end: 104,
            },
        );
        let values: Vec<u8> = (0..5).flat_map(|i| [i as u8; 4]).collect();
        let r = AggregateRecord::new(k, values, 4).unwrap();
        let s = r.slice(
            CurveRun {
                start: 101,
                end: 102,
            },
            4,
        );
        assert_eq!(
            s.key.run,
            CurveRun {
                start: 101,
                end: 102
            }
        );
        assert_eq!(s.values, vec![1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(s.key.variable, 7);
    }

    #[test]
    #[should_panic(expected = "outside record")]
    fn slice_outside_panics() {
        let k = AggregateKey::new(0, CurveRun { start: 10, end: 12 });
        let r = AggregateRecord::new(k, vec![0; 3], 1).unwrap();
        let _ = r.slice(CurveRun { start: 9, end: 10 }, 1);
    }

    #[test]
    fn aggregate_key_is_constant_size_regardless_of_span() {
        // §I: "keys are represented in aggregate as a (corner, size)
        // pair, the overhead is reduced to a constant."
        let small = AggregateKey::new(0, CurveRun { start: 0, end: 0 });
        let huge = AggregateKey::new(
            0,
            CurveRun {
                start: 0,
                end: u64::MAX as u128,
            },
        );
        assert_eq!(small.to_bytes().len(), huge.to_bytes().len());
    }
}

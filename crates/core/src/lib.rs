//! The paper's primary contribution: lossless compression of intermediate
//! keys between mappers and reducers.
//!
//! Two independent, complementary approaches, exactly as in the paper:
//!
//! * [`transform`] — §III *semantically-informed byte-level compression*:
//!   a streaming transform that detects linear byte sequences
//!   (`x[φ+ks] = x[φ+(k−1)s] + δ`) in the serialized key stream and
//!   replaces predictable bytes with deltas from the prediction, making
//!   the stream dramatically more compressible by a generic codec
//!   (predictive coding, Elias 1955). Plugs into the engine as a codec.
//! * [`aggregate`] — §IV *key aggregation*: map n-D grid keys onto a
//!   space-filling curve, collapse contiguous curve indices into
//!   `(start, length)` aggregate keys whose values are stored in curve
//!   order, and split aggregate keys during routing and sorting so the
//!   semantics of simple keys are preserved.

pub mod aggregate;
pub mod transform;

pub use aggregate::{AggregateKey, AggregateRecord, Aggregator};
pub use transform::{StridePredictor, TransformCodec, TransformConfig};

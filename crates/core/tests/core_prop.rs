//! Property tests for the paper's contribution layer.

use proptest::prelude::*;
use scihadoop_compress::{Codec, DeflateCodec, IdentityCodec};
use scihadoop_core::aggregate::{
    align_run, coalesce_adjacent, expand_record, overlap_split, AggregateKey, AggregateRecord,
    Aggregator,
};
use scihadoop_core::transform::{
    forward, inverse, ReferencePredictor, StridePredictor, TransformCodec, TransformConfig,
};
use scihadoop_grid::Coord;
use scihadoop_sfc::{CurveRun, HilbertCurve, ZOrderCurve};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transform is a bijection for every detector configuration.
    #[test]
    fn transform_bijective_across_configs(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        max_stride in 1usize..48,
        cycle in prop_oneof![Just(32usize), Just(256), Just(1024)],
        run_threshold in 0u32..5,
    ) {
        for adaptive in [true, false] {
            let config = TransformConfig {
                max_stride,
                adaptive,
                selection_cycle: cycle,
                run_threshold,
                ..TransformConfig::default()
            };
            let t = forward(&config, &data);
            prop_assert_eq!(t.len(), data.len());
            prop_assert_eq!(inverse(&config, &t), data.clone());
        }
    }

    /// The transform codec composed with any inner codec is lossless.
    #[test]
    fn transform_codec_lossless(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        max_stride in 2usize..32,
    ) {
        let config = TransformConfig::adaptive(max_stride);
        for inner in [
            Arc::new(IdentityCodec) as Arc<dyn Codec>,
            Arc::new(DeflateCodec::new()),
        ] {
            let codec = TransformCodec::new(config.clone(), inner);
            let z = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&z).unwrap(), data.clone());
        }
    }

    /// Aggregation + slicing is exact: any cell's value read through any
    /// record slice equals the pushed value, on both curves.
    #[test]
    fn aggregation_is_exact_on_both_curves(
        cells in proptest::collection::btree_map(
            (0u32..16, 0u32..16),
            any::<[u8; 2]>(),
            1..48,
        ),
    ) {
        for hilbert in [false, true] {
            let mut agg = if hilbert {
                Aggregator::new(HilbertCurve::with_bits(2, 4), 1 << 20)
            } else {
                Aggregator::new(ZOrderCurve::with_bits(2, 4), 1 << 20)
            };
            for (&(x, y), v) in &cells {
                agg.push(&Coord::new(vec![x as i32, y as i32]), v).unwrap();
            }
            let records = agg.flush();
            let total: u128 = records.iter().map(|r| r.key.cell_count()).sum();
            prop_assert_eq!(total as usize, cells.len());
            // Every record's payload length is consistent.
            for r in &records {
                prop_assert_eq!(r.values.len() as u128, r.key.cell_count() * 2);
            }
        }
    }

    /// Coalescing after overlap-splitting never loses or duplicates cells.
    #[test]
    fn split_then_coalesce_preserves_cells(
        ranges in proptest::collection::vec((0u64..100, 1u64..20), 1..8),
    ) {
        let records: Vec<AggregateRecord> = ranges
            .iter()
            .map(|&(start, len)| {
                AggregateRecord::new(
                    AggregateKey::new(0, CurveRun {
                        start: start as u128,
                        end: (start + len - 1) as u128,
                    }),
                    vec![7u8; len as usize],
                    1,
                )
                .unwrap()
            })
            .collect();
        let total: u128 = records.iter().map(|r| r.key.cell_count()).sum();
        let pieces = overlap_split(records, 1);
        let coalesced = coalesce_adjacent(pieces);
        let after: u128 = coalesced.iter().map(|r| r.key.cell_count()).sum();
        prop_assert_eq!(after, total);
        // Coalesced records never overlap-adjacent with same boundaries
        // except where inputs overlapped (duplicates may remain equal);
        // at minimum, payload lengths stay consistent.
        for r in &coalesced {
            prop_assert_eq!(r.values.len() as u128, r.key.cell_count());
        }
    }

    /// Alignment expansion always contains the original run and starts /
    /// ends on boundaries.
    #[test]
    fn alignment_contains_and_aligns(
        start in 0u128..10_000,
        len in 1u128..500,
        align_pow in 0u32..10,
    ) {
        let alignment = 1u128 << align_pow;
        let run = CurveRun { start, end: start + len - 1 };
        let a = align_run(run, alignment);
        prop_assert!(a.start <= run.start && a.end >= run.end);
        prop_assert_eq!(a.start % alignment, 0);
        prop_assert_eq!((a.end + 1) % alignment, 0);
        // Expansion is idempotent.
        prop_assert_eq!(align_run(a, alignment), a);
    }

    /// Expanded records read back the original values at original cells.
    #[test]
    fn expansion_preserves_values(
        start in 0u128..1000,
        len in 1u128..40,
        align_pow in 1u32..8,
    ) {
        let run = CurveRun { start, end: start + len - 1 };
        let values: Vec<u8> = (0..len as usize).map(|i| i as u8).collect();
        let rec = AggregateRecord::new(AggregateKey::new(0, run), values, 1).unwrap();
        let expanded = expand_record(&rec, 1 << align_pow, 1, &[0xEE]);
        for i in run.start..=run.end {
            prop_assert_eq!(
                expanded.value_at(i, 1).unwrap(),
                rec.value_at(i, 1).unwrap()
            );
        }
    }

    /// The optimized predictor hot path is byte-identical to the
    /// original full-set scan ([`ReferencePredictor`]) on arbitrary data
    /// and detector configurations, including the surviving active set.
    #[test]
    fn fast_predictor_equals_reference(
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        max_stride in 1usize..40,
        cycle in prop_oneof![Just(32usize), Just(64), Just(256)],
        run_threshold in 0u32..4,
        adaptive in any::<bool>(),
    ) {
        let config = TransformConfig {
            max_stride,
            adaptive,
            selection_cycle: cycle,
            run_threshold,
            ..TransformConfig::default()
        };
        let mut fast = StridePredictor::new(config.clone());
        let mut slow = ReferencePredictor::new(config.clone());
        // Feed in uneven chunks so mid-stream state is also compared.
        let mut fast_out = Vec::new();
        let mut slow_out = Vec::new();
        for chunk in data.chunks(277) {
            fast_out.extend_from_slice(&fast.forward(chunk));
            slow_out.extend_from_slice(&slow.forward(chunk));
            prop_assert_eq!(fast.active_strides(), slow.active_strides());
        }
        prop_assert_eq!(&fast_out, &slow_out);
        let mut fast_inv = StridePredictor::new(config.clone());
        let mut slow_inv = ReferencePredictor::new(config);
        prop_assert_eq!(fast_inv.inverse(&fast_out), slow_inv.inverse(&slow_out));
    }
}

//! Property tests for the query layer: MapReduce answers must equal the
//! sequential oracles on arbitrary grids and pipeline configurations.

use proptest::prelude::*;
use scihadoop_grid::{Shape, Variable};
use scihadoop_mapreduce::JobConfig;
use scihadoop_queries::histogram::Histogram;
use scihadoop_queries::median::{SlidingMedian, SlidingMedianVariant};
use scihadoop_queries::{oracle, KeyLayout};

fn arb_grid() -> impl Strategy<Value = Variable> {
    (3u32..14, 3u32..14, any::<u64>()).prop_map(|(w, h, seed)| {
        Variable::random_i32("g", Shape::new(vec![w, h]), 10_000, seed).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plain_median_equals_oracle(var in arb_grid(), splits in 1usize..6) {
        let mut q = SlidingMedian::new(
            KeyLayout::Indexed { index: 0, ndims: 2 },
            SlidingMedianVariant::Plain,
        );
        q.num_splits = splits;
        let run = q.run(&var).unwrap();
        prop_assert_eq!(run.medians, oracle::sliding_median(&var, 3).unwrap());
    }

    #[test]
    fn aggregated_median_equals_oracle(
        var in arb_grid(),
        splits in 1usize..6,
        reducers in 1usize..5,
        buffer in prop_oneof![Just(128usize), Just(4096), Just(1 << 20)],
    ) {
        let mut q = SlidingMedian::new(
            KeyLayout::Indexed { index: 0, ndims: 2 },
            SlidingMedianVariant::Aggregated { buffer_bytes: buffer },
        );
        q.num_splits = splits;
        q.base_config = JobConfig::default().with_reducers(reducers);
        let run = q.run(&var).unwrap();
        prop_assert_eq!(run.medians, oracle::sliding_median(&var, 3).unwrap());
    }

    #[test]
    fn histogram_equals_oracle(var in arb_grid(), bins in 1usize..12) {
        let run = Histogram::new(bins, 0, 10_000).run(&var).unwrap();
        prop_assert_eq!(
            run.counts,
            oracle::histogram(&var, bins, 0, 10_000).unwrap()
        );
    }
}

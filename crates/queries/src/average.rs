//! Sliding window average — the second windowed query.
//!
//! Structurally identical to the sliding median but with a *combinable*
//! partial aggregate (count, sum), which lets it demonstrate the engine's
//! combiner interacting with key layouts (the paper's step 3 of Fig. 1).

use crate::layout::KeyLayout;
use scihadoop_grid::{Coord, Variable};
use scihadoop_mapreduce::{Emit, Job, JobConfig, JobResult, Mapper, MrError, Reducer};
use std::collections::HashMap;
use std::sync::Arc;

/// Sliding-mean query with simple keys and an optional combiner.
#[derive(Debug, Clone)]
pub struct SlidingAverage {
    /// Window side length (odd).
    pub window: u32,
    /// Key serialization.
    pub layout: KeyLayout,
    /// Whether to run the partial-sum combiner map-side.
    pub use_combiner: bool,
    /// Number of input splits.
    pub num_splits: usize,
    /// Engine configuration.
    pub base_config: JobConfig,
}

/// Result of a sliding-average run.
pub struct AverageRun {
    /// Truncated mean per window centre.
    pub means: HashMap<Coord, i32>,
    /// Engine result.
    pub result: JobResult,
}

/// Partial aggregate: `[count: u32][sum: i64]`, both big-endian.
fn pack_partial(count: u32, sum: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&sum.to_be_bytes());
    out
}

fn unpack_partial(bytes: &[u8]) -> (u32, i64) {
    if bytes.len() == 4 {
        // A raw mapper emission: one i32 sample.
        let v = i32::from_be_bytes(bytes.try_into().expect("4 bytes"));
        return (1, v as i64);
    }
    let count = u32::from_be_bytes(bytes[0..4].try_into().expect("count"));
    let sum = i64::from_be_bytes(bytes[4..12].try_into().expect("sum"));
    (count, sum)
}

struct AvgMapper {
    layout: KeyLayout,
    offsets: Vec<Coord>,
}

impl Mapper for AvgMapper {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn Emit) {
        let coord = self.layout.decode(key).expect("input key");
        for off in &self.offsets {
            out.emit(&self.layout.encode(&(&coord + off)), value);
        }
    }
}

/// Sums partials; usable both as combiner and (with division) reducer.
struct AvgCombiner;

impl Reducer for AvgCombiner {
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
        let (mut count, mut sum) = (0u32, 0i64);
        for v in values {
            let (c, s) = unpack_partial(v);
            count += c;
            sum += s;
        }
        out.emit(key, &pack_partial(count, sum));
    }
}

struct AvgReducer;

impl Reducer for AvgReducer {
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
        let (mut count, mut sum) = (0u32, 0i64);
        for v in values {
            let (c, s) = unpack_partial(v);
            count += c;
            sum += s;
        }
        let mean = (sum / count as i64) as i32;
        out.emit(key, &mean.to_be_bytes());
    }
}

impl SlidingAverage {
    /// A 3×3 sliding mean with defaults.
    pub fn new(layout: KeyLayout, use_combiner: bool) -> Self {
        SlidingAverage {
            window: 3,
            layout,
            use_combiner,
            num_splits: 4,
            base_config: JobConfig::default().with_reducers(2),
        }
    }

    fn offsets(&self) -> Vec<Coord> {
        let h = (self.window as i32 - 1) / 2;
        let ndims = self.layout.ndims();
        let mut out = Vec::new();
        let mut off = vec![-h; ndims];
        loop {
            out.push(Coord::new(off.clone()));
            let mut d = ndims;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if off[d] < h {
                    off[d] += 1;
                    for o in off.iter_mut().skip(d + 1) {
                        *o = -h;
                    }
                    break;
                }
            }
        }
    }

    /// Run the query.
    pub fn run(&self, var: &Variable) -> Result<AverageRun, MrError> {
        assert!(self.window % 2 == 1, "window must be odd");
        let splits = crate::input::dataset_splits(var, &self.layout, self.num_splits)
            .map_err(|e| MrError::Config(e.to_string()))?;
        let mut config = self.base_config.clone();
        if self.use_combiner {
            config = config.with_combiner(Arc::new(AvgCombiner));
        }
        let mapper = AvgMapper {
            layout: self.layout.clone(),
            offsets: self.offsets(),
        };
        let result = Job::new(config).run(splits, Arc::new(mapper), Arc::new(AvgReducer))?;
        let mut means = HashMap::new();
        for pair in result.outputs.iter().flatten() {
            let coord = self
                .layout
                .decode(&pair.key)
                .map_err(|e| MrError::Intermediate(e.to_string()))?;
            let v = i32::from_be_bytes(
                pair.value
                    .as_slice()
                    .try_into()
                    .map_err(|_| MrError::Intermediate("bad mean".into()))?,
            );
            means.insert(coord, v);
        }
        Ok(AverageRun { means, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use scihadoop_grid::Shape;
    use scihadoop_mapreduce::Counter;

    fn variable() -> Variable {
        Variable::random_i32("t", Shape::new(vec![10, 9]), 500, 11).unwrap()
    }

    fn layout() -> KeyLayout {
        KeyLayout::Indexed { index: 0, ndims: 2 }
    }

    #[test]
    fn matches_oracle_without_combiner() {
        let var = variable();
        let run = SlidingAverage::new(layout(), false).run(&var).unwrap();
        assert_eq!(run.means, oracle::sliding_mean(&var, 3).unwrap());
    }

    #[test]
    fn matches_oracle_with_combiner() {
        let var = variable();
        let run = SlidingAverage::new(layout(), true).run(&var).unwrap();
        assert_eq!(run.means, oracle::sliding_mean(&var, 3).unwrap());
    }

    #[test]
    fn combiner_reduces_materialized_records() {
        let var = variable();
        let plain = SlidingAverage::new(layout(), false).run(&var).unwrap();
        let combined = SlidingAverage::new(layout(), true).run(&var).unwrap();
        let plain_bytes = plain.result.stats.map_output_bytes;
        let combined_bytes = combined.result.stats.map_output_bytes;
        assert!(
            combined_bytes < plain_bytes,
            "combiner should shrink output: {combined_bytes} vs {plain_bytes}"
        );
        assert!(combined.result.counters.get(Counter::CombineInputRecords) > 0);
    }

    #[test]
    fn partial_packing_roundtrip() {
        let (c, s) = unpack_partial(&pack_partial(7, -1234));
        assert_eq!((c, s), (7, -1234));
        let (c, s) = unpack_partial(&(-5i32).to_be_bytes());
        assert_eq!((c, s), (1, -5));
    }
}

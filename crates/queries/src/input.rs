//! Building MapReduce input splits from grid datasets.

use crate::layout::KeyLayout;
use scihadoop_grid::{GridError, Variable};
use scihadoop_mapreduce::{InputSplit, KvPair};

/// Carve a variable into `num_splits` input splits along its longest
/// dimension — the engine's analogue of SciHadoop handing each mapper a
/// contiguous block of the array. Each record is `(encoded coordinate,
/// big-endian value bytes)`.
pub fn dataset_splits(
    var: &Variable,
    layout: &KeyLayout,
    num_splits: usize,
) -> Result<Vec<InputSplit>, GridError> {
    if layout.ndims() != var.shape().ndims() {
        return Err(GridError::DimensionMismatch {
            expected: var.shape().ndims(),
            actual: layout.ndims(),
        });
    }
    let boxes = var.bounds().split_longest(num_splits);
    let mut splits = Vec::with_capacity(boxes.len());
    for b in boxes {
        let mut records = Vec::with_capacity(b.num_cells() as usize);
        for cell in b.cells() {
            let value = var.get(&cell)?;
            let mut vbytes = Vec::with_capacity(4);
            value.write_be(&mut vbytes);
            records.push(KvPair::new(layout.encode(&cell), vbytes));
        }
        splits.push(InputSplit::new(records));
    }
    Ok(splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_grid::Shape;

    #[test]
    fn splits_cover_every_cell_once() {
        let var = Variable::random_i32("t", Shape::new(vec![6, 5]), 100, 1).unwrap();
        let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
        let splits = dataset_splits(&var, &layout, 4).unwrap();
        assert_eq!(splits.len(), 4);
        let total: usize = splits.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, 30);
        // All keys distinct.
        let mut keys: Vec<Vec<u8>> = splits
            .iter()
            .flat_map(|s| s.records.iter().map(|r| r.key.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 30);
    }

    #[test]
    fn record_values_match_the_grid() {
        let var = Variable::random_i32("t", Shape::new(vec![4, 4]), 50, 7).unwrap();
        let layout = KeyLayout::Indexed { index: 0, ndims: 2 };
        let splits = dataset_splits(&var, &layout, 2).unwrap();
        for split in &splits {
            for rec in &split.records {
                let coord = layout.decode(&rec.key).unwrap();
                let expected = var.get(&coord).unwrap();
                let mut buf = Vec::new();
                expected.write_be(&mut buf);
                assert_eq!(rec.value, buf);
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let var = Variable::random_i32("t", Shape::new(vec![4, 4]), 50, 7).unwrap();
        let layout = KeyLayout::Indexed { index: 0, ndims: 3 };
        assert!(dataset_splits(&var, &layout, 2).is_err());
    }

    #[test]
    fn dataset_byte_arithmetic_matches_intro() {
        // The §I numbers: 100³ f32 grid, 4-int keys → 26 B/record in
        // SequenceFile framing. Verify key/value sizes here (the full
        // file-size reproduction lives in the bench harness).
        let layout = KeyLayout::Indexed { index: 0, ndims: 3 };
        assert_eq!(layout.key_len() + 4, 20); // + 6 framing = 26
    }
}

//! SciHadoop-style scientific queries over the MapReduce engine.
//!
//! The paper's evaluation workload is a *sliding median* (§IV-C): every
//! grid cell's output is the median of the w×w window centred on it.
//! [`median`] implements it in the three configurations the paper
//! compares:
//!
//! * **plain** — simple per-cell keys, no compression (the baseline);
//! * **transform** — same job with the §III transform codec on the
//!   intermediate data;
//! * **aggregated** — the §IV aggregation library in the mapper plus
//!   aggregate-key splitting in the engine.
//!
//! [`average`] (windowed mean) and [`histogram`] exercise the same
//! machinery on other access patterns. [`oracle`] holds direct
//! sequential implementations the MapReduce answers are tested against.

pub mod average;
pub mod histogram;
pub mod input;
pub mod layout;
pub mod median;
pub mod oracle;

pub use input::dataset_splits;
pub use layout::{BiasedCurve, KeyLayout};
pub use median::{CurveKind, SlidingMedian, SlidingMedianVariant};

//! Direct sequential implementations the MapReduce answers are checked
//! against.

use scihadoop_grid::{Coord, GridError, Variable};
use std::collections::HashMap;

/// Sliding median, computed directly: for every window centre in the
/// dilated grid (centres receive contributions from grid cells within
/// the window), the lower median of the contributing values.
pub fn sliding_median(var: &Variable, window: u32) -> Result<HashMap<Coord, i32>, GridError> {
    windowed(var, window, |vals| {
        vals.sort_unstable();
        vals[(vals.len() - 1) / 2]
    })
}

/// Sliding mean (truncated toward zero), same windowing as
/// [`sliding_median`].
pub fn sliding_mean(var: &Variable, window: u32) -> Result<HashMap<Coord, i32>, GridError> {
    windowed(var, window, |vals| {
        (vals.iter().map(|&v| v as i64).sum::<i64>() / vals.len() as i64) as i32
    })
}

fn windowed(
    var: &Variable,
    window: u32,
    mut f: impl FnMut(&mut Vec<i32>) -> i32,
) -> Result<HashMap<Coord, i32>, GridError> {
    assert!(window % 2 == 1, "window must be odd");
    let h = (window as i32 - 1) / 2;
    let mut acc: HashMap<Coord, Vec<i32>> = HashMap::new();
    for cell in var.bounds().cells() {
        let v = match var.get(&cell)? {
            scihadoop_grid::Value::I32(v) => v,
            other => {
                return Err(GridError::Deserialize(format!(
                    "oracle expects i32 cells, got {}",
                    other.data_type().name()
                )))
            }
        };
        // The cell contributes to every centre within the window.
        let ndims = cell.ndims();
        let mut off = vec![-h; ndims];
        'window: loop {
            let centre = Coord::new(
                cell.components()
                    .iter()
                    .zip(&off)
                    .map(|(c, o)| c + o)
                    .collect(),
            );
            acc.entry(centre).or_default().push(v);
            // Odometer increment; falls off the end when exhausted.
            let mut d = ndims;
            loop {
                if d == 0 {
                    break 'window;
                }
                d -= 1;
                if off[d] < h {
                    off[d] += 1;
                    for o in off.iter_mut().skip(d + 1) {
                        *o = -h;
                    }
                    break;
                }
            }
        }
    }
    Ok(acc
        .into_iter()
        .map(|(c, mut vals)| (c, f(&mut vals)))
        .collect())
}

/// Value histogram with `bins` equal-width buckets over `[min, max)`.
pub fn histogram(var: &Variable, bins: usize, min: i32, max: i32) -> Result<Vec<u64>, GridError> {
    assert!(bins > 0 && max > min);
    let width = ((max - min) as f64 / bins as f64).max(f64::MIN_POSITIVE);
    let mut out = vec![0u64; bins];
    for cell in var.bounds().cells() {
        if let scihadoop_grid::Value::I32(v) = var.get(&cell)? {
            let bin = (((v - min) as f64 / width) as usize).min(bins - 1);
            out[bin] += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_grid::{DataType, Shape, Value};

    fn tiny() -> Variable {
        // 3x3 grid:
        // 1 2 3
        // 4 5 6
        // 7 8 9
        Variable::generate("t", DataType::I32, Shape::new(vec![3, 3]), |c| {
            Value::I32(c[0] * 3 + c[1] + 1)
        })
        .unwrap()
    }

    #[test]
    fn center_cell_median_of_full_window() {
        let m = sliding_median(&tiny(), 3).unwrap();
        // Centre (1,1) sees 1..9 → median 5.
        assert_eq!(m[&Coord::new(vec![1, 1])], 5);
    }

    #[test]
    fn halo_centres_exist_with_partial_windows() {
        let m = sliding_median(&tiny(), 3).unwrap();
        // Centre (-1,-1) sees only cell (0,0) = 1.
        assert_eq!(m[&Coord::new(vec![-1, -1])], 1);
        // Dilated 3x3 → 5x5 centres.
        assert_eq!(m.len(), 25);
    }

    #[test]
    fn mean_truncates_toward_zero() {
        let m = sliding_mean(&tiny(), 3).unwrap();
        assert_eq!(m[&Coord::new(vec![1, 1])], 5); // 45/9
        assert_eq!(m[&Coord::new(vec![-1, -1])], 1);
    }

    #[test]
    fn histogram_counts_cells() {
        let h = histogram(&tiny(), 3, 1, 10).unwrap();
        assert_eq!(h, vec![3, 3, 3]);
        assert_eq!(h.iter().sum::<u64>(), 9);
    }

    #[test]
    fn histogram_clamps_overflow_bin() {
        let h = histogram(&tiny(), 2, 1, 2).unwrap();
        assert_eq!(h.iter().sum::<u64>(), 9);
        assert_eq!(h[0], 1); // value 1
        assert_eq!(h[1], 8); // everything ≥ 2 clamps into the last bin
    }
}

//! Global value histogram — a non-windowed query exercising tiny keys
//! and heavy combining.

use scihadoop_grid::Variable;
use scihadoop_mapreduce::{Emit, FnMapper, FnReducer, Job, JobConfig, JobResult, MrError};
use std::sync::Arc;

/// Histogram query configuration.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Number of equal-width bins.
    pub bins: usize,
    /// Inclusive lower bound of the value range.
    pub min: i32,
    /// Exclusive upper bound.
    pub max: i32,
    /// Number of input splits.
    pub num_splits: usize,
    /// Engine configuration.
    pub base_config: JobConfig,
}

/// Result of a histogram run.
pub struct HistogramRun {
    /// Cell counts per bin.
    pub counts: Vec<u64>,
    /// Engine result.
    pub result: JobResult,
}

impl Histogram {
    /// A histogram with `bins` buckets over `[min, max)`.
    pub fn new(bins: usize, min: i32, max: i32) -> Self {
        assert!(bins > 0 && max > min);
        Histogram {
            bins,
            min,
            max,
            num_splits: 4,
            base_config: JobConfig::default().with_reducers(2),
        }
    }

    /// Run over a variable of i32 cells.
    pub fn run(&self, var: &Variable) -> Result<HistogramRun, MrError> {
        let layout = crate::layout::KeyLayout::Indexed {
            index: 0,
            ndims: var.shape().ndims(),
        };
        let splits = crate::input::dataset_splits(var, &layout, self.num_splits)
            .map_err(|e| MrError::Config(e.to_string()))?;
        let (bins, min, max) = (self.bins, self.min, self.max);
        let width = ((max - min) as f64 / bins as f64).max(f64::MIN_POSITIVE);

        let mapper = FnMapper(move |_k: &[u8], v: &[u8], out: &mut dyn Emit| {
            let value = i32::from_be_bytes(v.try_into().expect("4-byte value"));
            let bin = (((value - min) as f64 / width) as usize).min(bins - 1) as u32;
            out.emit(&bin.to_be_bytes(), &1u64.to_be_bytes());
        });
        let sum = |_k: &[u8], values: &[&[u8]], out: &mut dyn Emit, key: &[u8]| {
            let total: u64 = values
                .iter()
                .map(|v| u64::from_be_bytes((*v).try_into().expect("8-byte count")))
                .sum();
            out.emit(key, &total.to_be_bytes());
        };
        let combiner =
            FnReducer(move |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| sum(k, values, out, k));
        let reducer =
            FnReducer(move |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| sum(k, values, out, k));

        let config = self.base_config.clone().with_combiner(Arc::new(combiner));
        let result = Job::new(config).run(splits, Arc::new(mapper), Arc::new(reducer))?;

        let mut counts = vec![0u64; self.bins];
        for pair in result.outputs.iter().flatten() {
            let bin = u32::from_be_bytes(
                pair.key
                    .as_slice()
                    .try_into()
                    .map_err(|_| MrError::Intermediate("bad bin key".into()))?,
            ) as usize;
            let c = u64::from_be_bytes(
                pair.value
                    .as_slice()
                    .try_into()
                    .map_err(|_| MrError::Intermediate("bad count".into()))?,
            );
            if bin >= self.bins {
                return Err(MrError::Intermediate(format!("bin {bin} out of range")));
            }
            counts[bin] = c;
        }
        Ok(HistogramRun { counts, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use scihadoop_grid::Shape;

    #[test]
    fn matches_oracle() {
        let var = Variable::random_i32("t", Shape::new(vec![20, 20]), 1000, 3).unwrap();
        let q = Histogram::new(8, 0, 1000);
        let run = q.run(&var).unwrap();
        assert_eq!(run.counts, oracle::histogram(&var, 8, 0, 1000).unwrap());
        assert_eq!(run.counts.iter().sum::<u64>(), 400);
    }

    #[test]
    fn single_bin_collects_everything() {
        let var = Variable::random_i32("t", Shape::new(vec![5, 5]), 10, 9).unwrap();
        let run = Histogram::new(1, 0, 10).run(&var).unwrap();
        assert_eq!(run.counts, vec![25]);
    }

    #[test]
    fn combiner_collapses_to_bin_count_records() {
        let var = Variable::random_i32("t", Shape::new(vec![30, 30]), 100, 5).unwrap();
        let run = Histogram::new(4, 0, 100).run(&var).unwrap();
        // 4 splits × ≤4 bins each = at most 16 combined records.
        assert!(
            run.result
                .counters
                .get(scihadoop_mapreduce::Counter::CombineOutputRecords)
                <= 16
        );
    }
}

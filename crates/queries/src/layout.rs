//! Key layouts and curve spaces shared by the queries.

use scihadoop_grid::{Coord, GridError, GridKey, VariableId};
use scihadoop_sfc::{Curve, CurveIndex};
use std::sync::Arc;

/// How simple (per-cell) intermediate keys are serialized.
///
/// The paper's §I measures both spellings: the integer variable index
/// (16-byte keys for 3-D) and the `windspeed1` name (23-byte keys).
#[derive(Debug, Clone)]
pub enum KeyLayout {
    /// 4-byte variable index + 4 bytes per dimension.
    Indexed {
        /// Variable index stored in every key.
        index: i32,
        /// Dimensions per coordinate.
        ndims: usize,
    },
    /// Variable name (Hadoop `Text`) + 4 bytes per dimension.
    Named {
        /// Variable name stored in every key.
        name: String,
        /// Dimensions per coordinate.
        ndims: usize,
    },
}

impl KeyLayout {
    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        match self {
            KeyLayout::Indexed { ndims, .. } | KeyLayout::Named { ndims, .. } => *ndims,
        }
    }

    /// Serialize a coordinate under this layout.
    pub fn encode(&self, coord: &Coord) -> Vec<u8> {
        let variable = match self {
            KeyLayout::Indexed { index, .. } => VariableId::Index(*index),
            KeyLayout::Named { name, .. } => VariableId::Name(name.clone()),
        };
        GridKey::new(variable, coord.clone()).to_bytes()
    }

    /// Parse a coordinate back out of a serialized key.
    pub fn decode(&self, bytes: &[u8]) -> Result<Coord, GridError> {
        let (key, _) = match self {
            KeyLayout::Indexed { ndims, .. } => GridKey::read_indexed(bytes, *ndims)?,
            KeyLayout::Named { ndims, .. } => GridKey::read_named(bytes, *ndims)?,
        };
        Ok(key.coord)
    }

    /// Serialized key size for this layout.
    pub fn key_len(&self) -> usize {
        match self {
            KeyLayout::Indexed { ndims, .. } => 4 + 4 * ndims,
            KeyLayout::Named { name, ndims } => {
                // vint(len) is 1 byte for names up to 127 chars.
                1 + name.len() + 4 * ndims
            }
        }
    }
}

/// A space-filling curve over a coordinate space shifted by a bias, so
/// that window halos with negative coordinates (the paper's `(-1,-1)`)
/// still map to non-negative curve space.
#[derive(Clone)]
pub struct BiasedCurve {
    curve: Arc<dyn Curve>,
    bias: i32,
}

impl BiasedCurve {
    /// Wrap `curve`, adding `bias` to every coordinate component before
    /// encoding.
    pub fn new(curve: Arc<dyn Curve>, bias: i32) -> Self {
        assert!(bias >= 0, "bias must be non-negative");
        BiasedCurve { curve, bias }
    }

    /// The underlying curve.
    pub fn curve(&self) -> &Arc<dyn Curve> {
        &self.curve
    }

    /// The bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Curve index of a (possibly negative) coordinate.
    pub fn index_of(&self, coord: &Coord) -> Result<CurveIndex, GridError> {
        self.curve.index_of_coord(&coord.offset_all(self.bias))
    }

    /// Inverse of [`BiasedCurve::index_of`].
    pub fn coord_of(&self, index: CurveIndex) -> Result<Coord, GridError> {
        Ok(self.curve.coord_of_index(index)?.offset_all(-self.bias))
    }

    /// Total number of curve indices (the partitioner's span).
    pub fn span(&self) -> CurveIndex {
        let bits = self.curve.bits_per_dim() * self.curve.ndims() as u32;
        if bits >= 128 {
            CurveIndex::MAX
        } else {
            1u128 << bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_sfc::ZOrderCurve;

    #[test]
    fn layouts_roundtrip() {
        let coord = Coord::new(vec![3, -1, 7]);
        for layout in [
            KeyLayout::Indexed { index: 2, ndims: 3 },
            KeyLayout::Named {
                name: "windspeed1".into(),
                ndims: 3,
            },
        ] {
            let bytes = layout.encode(&coord);
            assert_eq!(bytes.len(), layout.key_len());
            assert_eq!(layout.decode(&bytes).unwrap(), coord);
        }
    }

    #[test]
    fn layout_sizes_match_paper() {
        assert_eq!(KeyLayout::Indexed { index: 0, ndims: 3 }.key_len(), 16);
        assert_eq!(
            KeyLayout::Named {
                name: "windspeed1".into(),
                ndims: 3
            }
            .key_len(),
            23
        );
    }

    #[test]
    fn biased_curve_handles_negative_halo() {
        let bc = BiasedCurve::new(Arc::new(ZOrderCurve::with_bits(2, 6)), 1);
        let coord = Coord::new(vec![-1, -1]);
        let idx = bc.index_of(&coord).unwrap();
        assert_eq!(bc.coord_of(idx).unwrap(), coord);
        // Without bias the same coordinate errors.
        let raw = BiasedCurve::new(Arc::new(ZOrderCurve::with_bits(2, 6)), 0);
        assert!(raw.index_of(&coord).is_err());
    }

    #[test]
    fn span_covers_the_virtual_grid() {
        let bc = BiasedCurve::new(Arc::new(ZOrderCurve::with_bits(2, 6)), 1);
        assert_eq!(bc.span(), 1 << 12);
    }
}

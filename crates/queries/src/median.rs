//! The paper's evaluation query: sliding median (§IV-C).
//!
//! "Assume mappers take a value with key (x, y) and output the value for
//! keys (x, y), (x + 1, y), (x + 1, y + 1), etc. Reducers then group the
//! values by key and take the median for each key." A mapper responsible
//! for (0,0)-(9,9) therefore produces output in (-1,-1)-(10,10) — the
//! halo that makes aggregate keys overlap between neighbouring mappers
//! and forces the §IV-B sort-phase splitting.

use crate::layout::{BiasedCurve, KeyLayout};
use parking_lot::Mutex;
use scihadoop_core::aggregate::{AggregateKey, AggregateKeyOps, Aggregator, RangePartitioner};
use scihadoop_grid::{Coord, Variable};
use scihadoop_mapreduce::{Emit, InputSplit, Job, JobConfig, JobResult, Mapper, MrError, Reducer};
use scihadoop_sfc::{Curve, HilbertCurve, RowMajorCurve, ZOrderCurve};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

/// Which pipeline configuration to run (the three columns of the paper's
/// evaluation).
#[derive(Clone)]
pub enum SlidingMedianVariant {
    /// Simple per-cell keys, identity codec — the 183-minute baseline.
    Plain,
    /// Simple keys with a codec on the intermediate data (§III-E plugs in
    /// transform+zlib here).
    PlainWithCodec(Arc<dyn scihadoop_compress::Codec>),
    /// The §IV aggregation library in the mapper plus aggregate-key
    /// splitting in the engine.
    Aggregated {
        /// Aggregation-buffer flush threshold in bytes (§IV-A).
        buffer_bytes: usize,
    },
}

impl std::fmt::Debug for SlidingMedianVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlidingMedianVariant::Plain => write!(f, "Plain"),
            SlidingMedianVariant::PlainWithCodec(c) => {
                write!(f, "PlainWithCodec({})", c.name())
            }
            SlidingMedianVariant::Aggregated { buffer_bytes } => {
                write!(f, "Aggregated({buffer_bytes})")
            }
        }
    }
}

/// Which space-filling curve the aggregated variant maps coordinates
/// onto (§IV-A: Z-order by default; "Other curves, such as the Hilbert
/// curve or Peano curve could be used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveKind {
    /// Z-order (the paper's choice, "due to speed and ease of
    /// implementation").
    #[default]
    ZOrder,
    /// Hilbert — better clustering, more CPU.
    Hilbert,
    /// Row-major — the trivial baseline.
    RowMajor,
}

impl CurveKind {
    fn build(self, ndims: usize, bits: u32) -> Arc<dyn Curve> {
        match self {
            CurveKind::ZOrder => Arc::new(ZOrderCurve::with_bits(ndims, bits)),
            CurveKind::Hilbert => Arc::new(HilbertCurve::with_bits(ndims, bits)),
            CurveKind::RowMajor => Arc::new(RowMajorCurve::with_bits(ndims, bits)),
        }
    }
}

/// A configured sliding-median query.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    /// Window side length (odd; the paper uses 3).
    pub window: u32,
    /// Simple-key serialization.
    pub layout: KeyLayout,
    /// Pipeline configuration.
    pub variant: SlidingMedianVariant,
    /// Number of input splits (map tasks).
    pub num_splits: usize,
    /// Engine configuration (reducers, slots, framing, spill buffer).
    pub base_config: JobConfig,
    /// Space-filling curve used by the aggregated variant.
    pub curve: CurveKind,
}

/// The finished query: parsed medians plus the raw engine result.
pub struct MedianRun {
    /// Median per window centre (centres cover the dilated grid).
    pub medians: HashMap<Coord, i32>,
    /// Engine counters/stats.
    pub result: JobResult,
}

impl SlidingMedian {
    /// A 3×3 sliding median with sensible defaults.
    pub fn new(layout: KeyLayout, variant: SlidingMedianVariant) -> Self {
        SlidingMedian {
            window: 3,
            layout,
            variant,
            num_splits: 4,
            base_config: JobConfig::default().with_reducers(2),
            curve: CurveKind::default(),
        }
    }

    fn half(&self) -> i32 {
        (self.window as i32 - 1) / 2
    }

    /// All window offsets (the w^d neighbour shifts).
    fn offsets(&self) -> Vec<Coord> {
        let h = self.half();
        let ndims = self.layout.ndims();
        let mut out = vec![Coord::new(vec![-h; ndims])];
        // Odometer enumeration of [-h, h]^ndims.
        loop {
            let last = out.last().expect("non-empty").clone();
            let mut next = last.clone();
            let mut d = ndims;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if next[d] < h {
                    next[d] += 1;
                    for dd in d + 1..ndims {
                        next[dd] = -h;
                    }
                    break;
                }
            }
            out.push(next);
        }
    }

    /// Maximum number of contributions one window centre receives.
    fn slots(&self) -> usize {
        (self.window as usize).pow(self.layout.ndims() as u32)
    }

    /// Run the query over a variable.
    pub fn run(&self, var: &Variable) -> Result<MedianRun, MrError> {
        assert!(self.window % 2 == 1, "window must be odd");
        let splits = crate::input::dataset_splits(var, &self.layout, self.num_splits)
            .map_err(|e| MrError::Config(e.to_string()))?;
        match &self.variant {
            SlidingMedianVariant::Plain => self.run_plain(splits, self.base_config.clone()),
            SlidingMedianVariant::PlainWithCodec(codec) => {
                self.run_plain(splits, self.base_config.clone().with_codec(codec.clone()))
            }
            SlidingMedianVariant::Aggregated { buffer_bytes } => {
                self.run_aggregated(var, splits, *buffer_bytes)
            }
        }
    }

    fn parse_outputs(&self, result: &JobResult) -> Result<HashMap<Coord, i32>, MrError> {
        let mut medians = HashMap::new();
        for pair in result.outputs.iter().flatten() {
            let coord = self
                .layout
                .decode(&pair.key)
                .map_err(|e| MrError::Intermediate(e.to_string()))?;
            let v = i32::from_be_bytes(
                pair.value
                    .as_slice()
                    .try_into()
                    .map_err(|_| MrError::Intermediate("bad median value".into()))?,
            );
            medians.insert(coord, v);
        }
        Ok(medians)
    }

    fn run_plain(&self, splits: Vec<InputSplit>, config: JobConfig) -> Result<MedianRun, MrError> {
        let layout = self.layout.clone();
        let offsets = self.offsets();
        let mapper = PlainMedianMapper {
            layout: layout.clone(),
            offsets,
        };
        let reducer = PlainMedianReducer { layout };
        let result = Job::new(config).run(splits, Arc::new(mapper), Arc::new(reducer))?;
        let medians = self.parse_outputs(&result)?;
        Ok(MedianRun { medians, result })
    }

    fn run_aggregated(
        &self,
        var: &Variable,
        splits: Vec<InputSplit>,
        buffer_bytes: usize,
    ) -> Result<MedianRun, MrError> {
        let h = self.half();
        let ndims = self.layout.ndims();
        // Curve resolution: cover the dilated grid.
        let max_extent = var
            .shape()
            .extents()
            .iter()
            .map(|&e| e as i64 + 2 * h as i64)
            .max()
            .unwrap_or(1);
        let bits = (64 - (max_extent as u64).leading_zeros()).max(1);
        let curve = BiasedCurve::new(self.curve.build(ndims, bits), h);
        let width = 1 + 4 * self.slots();
        let partitioner = RangePartitioner::uniform(self.base_config.num_reducers, curve.span());
        let keyops = AggregateKeyOps::new(partitioner, width);
        let config = self
            .base_config
            .clone()
            .with_key_semantics(Arc::new(keyops));

        let mapper = AggMedianMapper {
            layout: self.layout.clone(),
            offsets: self.offsets(),
            curve: curve.clone(),
            slots: self.slots(),
            buffer_bytes,
            state: Mutex::new(HashMap::new()),
        };
        let reducer = AggMedianReducer {
            layout: self.layout.clone(),
            curve,
            slots: self.slots(),
        };
        let result = Job::new(config).run(splits, Arc::new(mapper), Arc::new(reducer))?;
        let medians = self.parse_outputs(&result)?;
        Ok(MedianRun { medians, result })
    }
}

/// Lower median of a (small) value list.
pub fn median_of(values: &mut [i32]) -> i32 {
    assert!(!values.is_empty(), "median of empty set");
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

// ---------------------------------------------------------------------------
// Plain variant
// ---------------------------------------------------------------------------

struct PlainMedianMapper {
    layout: KeyLayout,
    offsets: Vec<Coord>,
}

impl Mapper for PlainMedianMapper {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn Emit) {
        let coord = self.layout.decode(key).expect("input key");
        for off in &self.offsets {
            let centre = &coord + off;
            out.emit(&self.layout.encode(&centre), value);
        }
    }
}

struct PlainMedianReducer {
    layout: KeyLayout,
}

impl Reducer for PlainMedianReducer {
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
        debug_assert!(self.layout.decode(key).is_ok());
        let mut vals: Vec<i32> = values
            .iter()
            .map(|v| i32::from_be_bytes((*v).try_into().expect("4-byte value")))
            .collect();
        let m = median_of(&mut vals);
        out.emit(key, &m.to_be_bytes());
    }
}

// ---------------------------------------------------------------------------
// Aggregated variant (§IV)
// ---------------------------------------------------------------------------

/// Per-cell packed multiset: `[count: u8][values: i32 BE × slots]`,
/// unused slots zero. Fixed width keeps aggregate records sliceable.
fn pack_cell(values: &[i32], slots: usize) -> Vec<u8> {
    debug_assert!(values.len() <= slots && slots <= u8::MAX as usize);
    let mut out = Vec::with_capacity(1 + 4 * slots);
    out.push(values.len() as u8);
    for v in values {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out.resize(1 + 4 * slots, 0);
    out
}

fn unpack_cell(bytes: &[u8]) -> Vec<i32> {
    let count = bytes[0] as usize;
    (0..count)
        .map(|i| {
            let o = 1 + 4 * i;
            i32::from_be_bytes(bytes[o..o + 4].try_into().expect("slot"))
        })
        .collect()
}

/// FNV-1a hasher for the per-task window map. The map-side hot path
/// hashes a small `Coord` once per (record × window offset); SipHash's
/// per-hash setup cost dominates at that grain.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

/// Per-map-task state. The engine runs each map task to completion on one
/// thread, so thread-id keying gives task-local state without engine
/// changes (Hadoop gets the same effect by constructing one Mapper object
/// per task).
struct AggTaskState {
    windows: HashMap<Coord, Vec<i32>, FnvBuildHasher>,
}

struct AggMedianMapper {
    layout: KeyLayout,
    offsets: Vec<Coord>,
    curve: BiasedCurve,
    slots: usize,
    buffer_bytes: usize,
    state: Mutex<HashMap<ThreadId, AggTaskState>>,
}

impl AggMedianMapper {
    fn flush_state(&self, state: AggTaskState, out: &mut dyn Emit) {
        // Push the accumulated windows through the §IV aggregation
        // library and emit the aggregate records it produces.
        let mut agg = Aggregator::with_curve(self.curve.curve().clone(), self.buffer_bytes);
        let emit_records = |records: Vec<scihadoop_core::aggregate::AggregateRecord>,
                            out: &mut dyn Emit| {
            for rec in records {
                out.emit(&rec.key.to_bytes(), &rec.values);
            }
        };
        for (mut coord, values) in state.windows {
            let packed = pack_cell(&values, self.slots);
            for c in &mut coord.0 {
                *c = c.wrapping_add(self.curve.bias());
            }
            if let Some(records) = agg.push(&coord, &packed).expect("aggregation push") {
                emit_records(records, out);
            }
        }
        emit_records(agg.flush(), out);
    }
}

impl Mapper for AggMedianMapper {
    fn map(&self, key: &[u8], value: &[u8], _out: &mut dyn Emit) {
        let coord = self.layout.decode(key).expect("input key");
        let v = i32::from_be_bytes(value.try_into().expect("4-byte value"));
        let mut state = self.state.lock();
        let task = state
            .entry(std::thread::current().id())
            .or_insert_with(|| AggTaskState {
                windows: HashMap::default(),
            });
        // One scratch centre reused across offsets: a window centre is hit
        // by up to `slots` records, so the occupied-entry path (no key
        // allocation) is the common one.
        let mut centre = coord.clone();
        for off in &self.offsets {
            for ((c, &base), &d) in centre.0.iter_mut().zip(&coord.0).zip(&off.0) {
                *c = base + d;
            }
            match task.windows.get_mut(&centre) {
                Some(vals) => vals.push(v),
                None => {
                    let mut vals = Vec::with_capacity(self.slots);
                    vals.push(v);
                    task.windows.insert(centre.clone(), vals);
                }
            }
        }
    }

    fn finish(&self, out: &mut dyn Emit) {
        let task = self.state.lock().remove(&std::thread::current().id());
        if let Some(task) = task {
            self.flush_state(task, out);
        }
    }
}

struct AggMedianReducer {
    layout: KeyLayout,
    curve: BiasedCurve,
    slots: usize,
}

impl Reducer for AggMedianReducer {
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
        let agg_key = AggregateKey::from_bytes(key).expect("aggregate key");
        let width = 1 + 4 * self.slots;
        for (cell_no, index) in (agg_key.run.start..=agg_key.run.end).enumerate() {
            let mut vals = Vec::new();
            for chunk in values {
                let off = cell_no * width;
                vals.extend(unpack_cell(&chunk[off..off + width]));
            }
            let m = median_of(&mut vals);
            let coord = self.curve.coord_of(index).expect("curve index");
            out.emit(&self.layout.encode(&coord), &m.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use scihadoop_grid::Shape;

    fn variable() -> Variable {
        Variable::random_i32("t", Shape::new(vec![12, 10]), 1000, 42).unwrap()
    }

    fn layout() -> KeyLayout {
        KeyLayout::Indexed { index: 0, ndims: 2 }
    }

    #[test]
    fn offsets_enumerate_the_window() {
        let q = SlidingMedian::new(layout(), SlidingMedianVariant::Plain);
        let offs = q.offsets();
        assert_eq!(offs.len(), 9);
        assert!(offs.contains(&Coord::new(vec![-1, -1])));
        assert!(offs.contains(&Coord::new(vec![0, 0])));
        assert!(offs.contains(&Coord::new(vec![1, 1])));
    }

    #[test]
    fn median_of_is_lower_median() {
        assert_eq!(median_of(&mut [3, 1, 2]), 2);
        assert_eq!(median_of(&mut [4, 1, 3, 2]), 2);
        assert_eq!(median_of(&mut [9]), 9);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for vals in [vec![], vec![5], vec![1, -2, 3, 4, 5, 6, 7, 8, 9]] {
            let packed = pack_cell(&vals, 9);
            assert_eq!(packed.len(), 37);
            assert_eq!(unpack_cell(&packed), vals);
        }
    }

    #[test]
    fn plain_matches_oracle() {
        let var = variable();
        let q = SlidingMedian::new(layout(), SlidingMedianVariant::Plain);
        let run = q.run(&var).unwrap();
        let expected = oracle::sliding_median(&var, 3).unwrap();
        assert_eq!(run.medians, expected);
    }

    #[test]
    fn aggregated_matches_oracle() {
        let var = variable();
        let q = SlidingMedian::new(
            layout(),
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 1 << 20,
            },
        );
        let run = q.run(&var).unwrap();
        let expected = oracle::sliding_median(&var, 3).unwrap();
        assert_eq!(run.medians.len(), expected.len());
        assert_eq!(run.medians, expected);
    }

    #[test]
    fn aggregated_with_tiny_buffer_still_correct() {
        // §IV-A: flushing early "slightly reduces the effectiveness of
        // aggregation" but must not change answers.
        let var = variable();
        let q = SlidingMedian::new(
            layout(),
            SlidingMedianVariant::Aggregated { buffer_bytes: 256 },
        );
        let run = q.run(&var).unwrap();
        let expected = oracle::sliding_median(&var, 3).unwrap();
        assert_eq!(run.medians, expected);
    }

    #[test]
    fn codec_variant_matches_plain() {
        let var = variable();
        let plain = SlidingMedian::new(layout(), SlidingMedianVariant::Plain)
            .run(&var)
            .unwrap();
        let codec = SlidingMedian::new(
            layout(),
            SlidingMedianVariant::PlainWithCodec(Arc::new(scihadoop_compress::DeflateCodec::new())),
        )
        .run(&var)
        .unwrap();
        assert_eq!(plain.medians, codec.medians);
        // Codec must not change raw bytes but must shrink materialized.
        assert_eq!(
            plain.result.stats.map_output_bytes,
            codec.result.stats.map_output_bytes
        );
        assert!(
            codec.result.stats.map_output_materialized_bytes
                < plain.result.stats.map_output_materialized_bytes
        );
    }

    #[test]
    fn aggregation_shrinks_intermediate_data() {
        let var = variable();
        let plain = SlidingMedian::new(layout(), SlidingMedianVariant::Plain)
            .run(&var)
            .unwrap();
        let agg = SlidingMedian::new(
            layout(),
            SlidingMedianVariant::Aggregated {
                buffer_bytes: 1 << 20,
            },
        )
        .run(&var)
        .unwrap();
        assert!(
            agg.result.stats.map_output_bytes < plain.result.stats.map_output_bytes,
            "aggregated {} vs plain {}",
            agg.result.stats.map_output_bytes,
            plain.result.stats.map_output_bytes
        );
    }
}

//! Per-job statistics the cluster cost model replays (§III-E / §IV-D).

use crate::counters::{Counter, CounterSnapshot};

/// Byte and time accounting for one finished job, independent of how fast
/// the machine that ran it happened to be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobStats {
    /// Number of map tasks that ran.
    pub num_maps: usize,
    /// Number of reduce tasks.
    pub num_reducers: usize,
    /// Input payload bytes read by mappers.
    pub input_bytes: u64,
    /// Raw (uncompressed, framed) map-output bytes.
    pub map_output_bytes: u64,
    /// Materialized (post-codec) map-output bytes — written to map-side
    /// disk, moved over the network, and written+read again reduce-side.
    pub map_output_materialized_bytes: u64,
    /// Final output bytes.
    pub output_bytes: u64,
    /// Coordinator shuffle-store bytes spilled to its local disk when
    /// the in-memory budget overflowed (written once, read back once
    /// per serve). Zero for local runs and unbounded distributed runs.
    /// Under a wire codec these are *stored* (compressed) bytes — the
    /// spill file holds exactly what the wire ships.
    pub shuffle_spilled_bytes: u64,
    /// Logical shuffle bytes that never crossed the network because the
    /// wire codec shrank their segments (`ShuffleWireBytesSaved`). The
    /// socket moves `map_output_materialized_bytes − this`.
    pub shuffle_wire_saved_bytes: u64,
    /// Nanoseconds compressing segments at shuffle publish
    /// (`LzCompressNanos`; coordinator side, once per segment).
    pub wire_compress_nanos: u64,
    /// Nanoseconds inflating wire-compressed segments at reduce fetch
    /// (`LzDecompressNanos`; worker side, once per fetched copy).
    pub wire_decompress_nanos: u64,
    /// Total nanoseconds inside `Codec::compress` across all tasks.
    pub compress_nanos: u64,
    /// Total nanoseconds inside `Codec::decompress`.
    pub decompress_nanos: u64,
    /// Total nanoseconds inside user map functions.
    pub map_fn_nanos: u64,
    /// Total nanoseconds inside user reduce functions.
    pub reduce_fn_nanos: u64,
    /// Nanoseconds sorting/combining/serializing spills (map side).
    pub spill_nanos: u64,
    /// Nanoseconds merging/splitting/grouping (reduce side).
    pub merge_nanos: u64,
    /// Wall-clock nanoseconds of the map phase (this process).
    pub map_wall_nanos: u64,
    /// Wall-clock nanoseconds of the reduce phase (this process).
    pub reduce_wall_nanos: u64,
}

impl JobStats {
    /// Assemble stats from counters plus phase wall-clocks.
    pub fn from_counters(
        counters: &CounterSnapshot,
        num_maps: usize,
        num_reducers: usize,
        input_bytes: u64,
        map_wall_nanos: u64,
        reduce_wall_nanos: u64,
    ) -> Self {
        JobStats {
            num_maps,
            num_reducers,
            input_bytes,
            map_output_bytes: counters.get(Counter::MapOutputBytes),
            map_output_materialized_bytes: counters.get(Counter::MapOutputMaterializedBytes),
            output_bytes: counters.get(Counter::ReduceOutputBytes),
            shuffle_spilled_bytes: counters.get(Counter::ShuffleSpilledBytes),
            shuffle_wire_saved_bytes: counters.get(Counter::ShuffleWireBytesSaved),
            wire_compress_nanos: counters.get(Counter::LzCompressNanos),
            wire_decompress_nanos: counters.get(Counter::LzDecompressNanos),
            compress_nanos: counters.get(Counter::CompressNanos),
            decompress_nanos: counters.get(Counter::DecompressNanos),
            map_fn_nanos: counters.get(Counter::MapFnNanos),
            reduce_fn_nanos: counters.get(Counter::ReduceFnNanos),
            spill_nanos: counters.get(Counter::SpillNanos),
            merge_nanos: counters.get(Counter::MergeNanos),
            map_wall_nanos,
            reduce_wall_nanos,
        }
    }

    /// Codec CPU seconds per materialized megabyte — the "runtime cost of
    /// the transform, roughly 2.9× the cost of gzip alone" comparison of
    /// §III-E is made on exactly this quantity.
    pub fn compress_secs_per_raw_mb(&self) -> f64 {
        if self.map_output_bytes == 0 {
            return 0.0;
        }
        (self.compress_nanos as f64 / 1e9) / (self.map_output_bytes as f64 / 1e6)
    }

    /// Fractional reduction of intermediate data (the paper's headline
    /// percentages: 77.8 % for the transform, 60.7 % for aggregation).
    pub fn intermediate_reduction(&self, baseline: &JobStats) -> f64 {
        if baseline.map_output_materialized_bytes == 0 {
            return 0.0;
        }
        1.0 - self.map_output_materialized_bytes as f64
            / baseline.map_output_materialized_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    fn stats(materialized: u64) -> JobStats {
        let counters = Counters::new();
        counters.add(Counter::MapOutputBytes, 1000);
        counters.add(Counter::MapOutputMaterializedBytes, materialized);
        counters.add(Counter::CompressNanos, 2_000_000_000);
        JobStats::from_counters(&counters.snapshot(), 4, 2, 5000, 0, 0)
    }

    #[test]
    fn reduction_matches_paper_arithmetic() {
        // 55.5 GB → 12.3 GB is 77.8 %.
        let baseline = stats(55_500);
        let transformed = stats(12_300);
        let r = transformed.intermediate_reduction(&baseline);
        assert!((r - 0.778).abs() < 0.001, "got {r}");
    }

    #[test]
    fn compress_cost_normalization() {
        let s = stats(100);
        // 2 s over 1000 B = 2 s / 0.001 MB = 2000 s/MB.
        assert!((s.compress_secs_per_raw_mb() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_baselines_do_not_divide_by_zero() {
        let z = stats(0);
        assert_eq!(z.intermediate_reduction(&z), 0.0);
        let mut empty = z;
        empty.map_output_bytes = 0;
        assert_eq!(empty.compress_secs_per_raw_mb(), 0.0);
    }
}

//! Job execution: map slots, spills, shuffle, and reduce slots.

use crate::arena::SpillArena;
use crate::clock;
use crate::counters::{Counter, Counters};
use crate::error::MrError;
use crate::ifile::{IFileVersion, IFileWriter, RawSegment, ScratchRecord, Segment};
use crate::job::{JobConfig, JobResult};
use crate::obs::{self, Metric, Phase};
use crate::record::{InputSplit, KvPair, Mapper, Reducer};
use crate::sort::{for_each_group, sort_pairs, BlockMergeStream, MergeItem, MergeStream};
use crate::stats::JobStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A retry-capable work queue shared by one phase's slots.
///
/// Tasks carry an attempt number; a failed attempt can be re-queued
/// (bounded by the job's retry budget) instead of aborting the job.
/// `in_flight` tracks claimed-but-unfinished tasks so idle slots block
/// on the condvar — a task they are waiting on may yet fail and come
/// back. The abort flag uses `Release`/`Acquire` so a raised abort (and
/// the error write that preceded it) is visible to every slot before it
/// claims another task.
///
/// Built on `std::sync` (not the project's `parking_lot` shim) because
/// the retry path needs a condvar.
pub(crate) struct WorkQueue<T> {
    state: std::sync::Mutex<QueueState<T>>,
    ready: std::sync::Condvar,
    abort: AtomicBool,
}

struct QueueState<T> {
    /// `(task, attempt)` pairs awaiting a slot, FIFO.
    pending: VecDeque<(T, u32)>,
    /// Tasks claimed but neither finished nor re-queued.
    in_flight: usize,
}

impl<T> WorkQueue<T> {
    pub(crate) fn new(items: Vec<T>) -> Self {
        WorkQueue {
            state: std::sync::Mutex::new(QueueState {
                pending: items.into_iter().map(|t| (t, 0)).collect(),
                in_flight: 0,
            }),
            ready: std::sync::Condvar::new(),
            abort: AtomicBool::new(false),
        }
    }

    /// Lock the queue state, recovering a poisoned guard. The queue's
    /// invariants hold across every `await`-free critical section (each
    /// lock holder only pushes/pops/counts), so a panic elsewhere in a
    /// worker thread never leaves the state half-updated — propagating
    /// the poison would turn one task's panic into a cascade through
    /// every sibling slot instead of the retry/abort path.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claim the next `(task, attempt)`, blocking while other slots hold
    /// tasks that might still be re-queued. `None` once the queue is
    /// drained (empty with nothing in flight) or aborted.
    pub(crate) fn claim(&self) -> Option<(T, u32)> {
        let mut state = self.lock_state();
        loop {
            if self.abort.load(Ordering::Acquire) {
                return None;
            }
            if let Some(claimed) = state.pending.pop_front() {
                state.in_flight += 1;
                return Some(claimed);
            }
            if state.in_flight == 0 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Claim without blocking: `Some` if a task is pending right now.
    pub(crate) fn try_claim(&self) -> Option<(T, u32)> {
        if self.abort.load(Ordering::Acquire) {
            return None;
        }
        let mut state = self.lock_state();
        let claimed = state.pending.pop_front();
        if claimed.is_some() {
            state.in_flight += 1;
        }
        claimed
    }

    /// Whether every task has been retired: nothing pending, nothing in
    /// flight. Distinct from "temporarily empty" — an in-flight task may
    /// still fail and come back.
    pub(crate) fn is_drained(&self) -> bool {
        let state = self.lock_state();
        state.pending.is_empty() && state.in_flight == 0
    }

    /// Whether the abort flag has been raised.
    pub(crate) fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Retire a claimed task (success, or failure that will not retry).
    pub(crate) fn finish(&self) {
        let mut state = self.lock_state();
        state.in_flight -= 1;
        if state.in_flight == 0 {
            drop(state);
            self.ready.notify_all();
        }
    }

    /// Put a failed task back with its next attempt number.
    pub(crate) fn requeue(&self, task: T, attempt: u32) {
        let mut state = self.lock_state();
        state.in_flight -= 1;
        state.pending.push_back((task, attempt));
        drop(state);
        self.ready.notify_all();
    }

    /// Raise the abort flag and wake every waiting slot. The lock is
    /// taken before notifying so a slot between its abort check and its
    /// condvar wait cannot miss the wakeup.
    pub(crate) fn abort(&self) {
        self.abort.store(true, Ordering::Release);
        let _state = self.lock_state();
        self.ready.notify_all();
    }
}

/// Keeps the queue's `in_flight` count correct even when a task body
/// panics: an armed guard dropped during unwind aborts the queue and
/// retires the claim, so sibling slots blocked on the condvar wake up
/// and exit instead of deadlocking the scope join.
struct InFlightGuard<'a, T> {
    queue: &'a WorkQueue<T>,
    armed: bool,
}

impl<'a, T> InFlightGuard<'a, T> {
    fn new(queue: &'a WorkQueue<T>) -> Self {
        InFlightGuard { queue, armed: true }
    }

    fn complete(mut self) {
        self.armed = false;
        self.queue.finish();
    }

    fn requeue(mut self, task: T, attempt: u32) {
        self.armed = false;
        self.queue.requeue(task, attempt);
    }

    fn fail(mut self) {
        self.armed = false;
        self.queue.abort();
        self.queue.finish();
    }
}

impl<T> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.queue.abort();
            self.queue.finish();
        }
    }
}

/// Drive one phase's tasks through `slots` worker threads with per-task
/// retry. `run` executes one attempt of task `id` and must leave shared
/// state untouched on `Err` (the map path commits only on success; the
/// reduce path restores its segments before returning an error). Failed
/// attempts back off deterministically (`retry_backoff * 2^attempt`,
/// metered as a [`Phase::Retry`] span) and re-queue until the budget is
/// exhausted, at which point the error is collected and the queue
/// aborted.
fn drive_slots<I, F>(
    config: &JobConfig,
    label: &str,
    items: Vec<(usize, I)>,
    slots: usize,
    counters: &Counters,
    errors: &Mutex<Vec<MrError>>,
    run: F,
) where
    I: Send,
    F: Fn(usize, &I, u32) -> Result<(), MrError> + Sync,
{
    let queue = WorkQueue::new(items);
    std::thread::scope(|scope| {
        for slot in 0..slots {
            let queue = &queue;
            let run = &run;
            scope.spawn(move || {
                let _att = config
                    .recorder
                    .as_ref()
                    .map(|r| r.attach(&format!("{label}-slot-{slot}")));
                while let Some(((id, item), attempt)) = queue.claim() {
                    let guard = InFlightGuard::new(queue);
                    match run_attempt(&run, id, &item, attempt) {
                        Ok(()) => guard.complete(),
                        Err(e) => {
                            if e.is_checksum() {
                                counters.add(Counter::ChecksumFailures, 1);
                            }
                            if attempt < config.task_retries {
                                counters.add(Counter::TaskRetries, 1);
                                let backoff =
                                    config.retry_backoff.saturating_mul(1u32 << attempt.min(20));
                                {
                                    let _retry_span = crate::span!(Phase::Retry, id);
                                    obs::hist(Metric::RetryBackoffNanos, backoff.as_nanos() as u64);
                                    if !backoff.is_zero() {
                                        std::thread::sleep(backoff);
                                    }
                                }
                                guard.requeue((id, item), attempt + 1);
                            } else {
                                errors.lock().push(e);
                                guard.fail();
                            }
                        }
                    }
                }
            });
        }
    });
}

/// Run one task attempt, converting a panic in the task body into a
/// retryable [`MrError::TaskFailed`]. A panicking user function (or a
/// bug in a task path) then flows through the same retry/abort machinery
/// as a returned error instead of unwinding through `thread::scope` and
/// cascading into every sibling slot.
fn run_attempt<I, F>(run: &F, id: usize, item: &I, attempt: u32) -> Result<(), MrError>
where
    F: Fn(usize, &I, u32) -> Result<(), MrError> + Sync,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(id, item, attempt))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(MrError::TaskFailed(format!(
                "task {id} attempt {attempt} panicked: {msg}"
            )))
        }
    }
}

/// Consult the job's fault plan (if any) at the start of a task attempt:
/// apply an artificial slow-down, then possibly fail the attempt with an
/// injected error. Injection counters are charged to the job-wide bank —
/// they describe the harness, not the (discarded) attempt.
pub(crate) fn fault_gate(
    config: &JobConfig,
    counters: &Counters,
    task: u64,
    attempt: u32,
    reduce: bool,
) -> Result<(), MrError> {
    let Some(plan) = &config.faults else {
        return Ok(());
    };
    if let Some(delay) = plan.slow(task, attempt) {
        counters.add(Counter::FaultsInjected, 1);
        std::thread::sleep(delay);
    }
    let hit = if reduce {
        plan.reduce_error(task, attempt)
    } else {
        plan.map_error(task, attempt)
    };
    if hit {
        counters.add(Counter::FaultsInjected, 1);
        return Err(MrError::TaskFailed(format!(
            "injected {} fault: task {task} attempt {attempt}",
            if reduce { "reduce" } else { "map" }
        )));
    }
    Ok(())
}

/// Execute a job. Called by [`crate::job::Job::run`].
pub fn run_job(
    config: &JobConfig,
    splits: Vec<InputSplit>,
    mapper: Arc<dyn Mapper>,
    reducer: Arc<dyn Reducer>,
) -> Result<JobResult, MrError> {
    let counters = Arc::new(Counters::new());
    let num_maps = splits.len();
    let input_bytes: u64 = splits.iter().map(|s| s.bytes()).sum();

    // ---- Map phase -----------------------------------------------------
    let map_t0 = Instant::now();
    // map_outputs[r] = (map task, compressed segment) destined for
    // reducer r, pushed in completion order and canonicalized below.
    type PartitionSegments = Mutex<Vec<(usize, Vec<u8>)>>;
    let map_outputs: Vec<PartitionSegments> = (0..config.num_reducers)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let errors: Mutex<Vec<MrError>> = Mutex::new(Vec::new());

    drive_slots(
        config,
        "map",
        splits.into_iter().enumerate().collect(),
        config.map_slots,
        &counters,
        &errors,
        |task, split, attempt| {
            fault_gate(config, &counters, task as u64, attempt, false)?;
            // Attempt-local counters, absorbed only on success: a failed
            // attempt charges nothing, so a retried job reports the same
            // semantic counters as a clean one.
            let local = Counters::new();
            let segments = run_map_task(config, task, split, mapper.as_ref(), &local)?;
            counters.absorb(&local.snapshot());
            for (partition, seg) in segments {
                map_outputs[partition].lock().push((task, seg.data));
            }
            Ok(())
        },
    );
    {
        let collected = std::mem::take(&mut *errors.lock());
        if !collected.is_empty() {
            return Err(MrError::from_task_errors(collected));
        }
    }
    let map_wall_nanos = map_t0.elapsed().as_nanos() as u64;

    // ---- Shuffle (in-process: account the transfer) ---------------------
    // Canonicalize each reducer's segment list to map-task order. Slots
    // finish maps in a nondeterministic order; the fetch order (and with
    // it every per-index decision, like injected corruption coordinates)
    // must not depend on that race — the distributed runtime streams
    // segments in this same order, which is what makes its runs
    // byte-identical to local ones.
    let map_outputs: Vec<Mutex<Vec<Vec<u8>>>> = map_outputs
        .into_iter()
        .map(|m| {
            let mut tagged = m.into_inner();
            tagged.sort_by_key(|(task, _)| *task);
            Mutex::new(tagged.into_iter().map(|(_, data)| data).collect())
        })
        .collect();
    for per_reducer in &map_outputs {
        let bytes: u64 = per_reducer.lock().iter().map(|s| s.len() as u64).sum();
        counters.add(Counter::ShuffleBytes, bytes);
    }
    // The local runner keeps every segment resident, so its shuffle
    // high-water mark is the full shuffle volume — the same value an
    // unbounded distributed store reports, which keeps local and
    // distributed ledgers comparable.
    counters.add(
        Counter::ShuffleMemHighWater,
        counters.get(Counter::ShuffleBytes),
    );

    // ---- Reduce phase ----------------------------------------------------
    let reduce_t0 = Instant::now();
    let outputs: Vec<Mutex<Vec<KvPair>>> = (0..config.num_reducers)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    drive_slots(
        config,
        "reduce",
        (0..config.num_reducers).map(|r| (r, ())).collect(),
        config.reduce_slots,
        &counters,
        &errors,
        |task, _item, attempt| {
            fault_gate(config, &counters, task as u64, attempt, true)?;
            // Taken segments are restored on every non-success exit —
            // an `Err`, or a panic unwinding out of the reducer (caught
            // in `run_attempt`) — so the retry can re-fetch them.
            struct Restore<'a> {
                slot: &'a Mutex<Vec<Vec<u8>>>,
                segments: Option<Vec<Vec<u8>>>,
            }
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    if let Some(segments) = self.segments.take() {
                        *self.slot.lock() = segments;
                    }
                }
            }
            let mut fetched = Restore {
                slot: &map_outputs[task],
                segments: Some(std::mem::take(&mut *map_outputs[task].lock())),
            };
            let segments = fetched.segments.as_deref().expect("segments just taken");
            // Injected corruption counts against the job-wide bank here
            // (the attempt-local bank below is discarded on failure, and
            // a corrupted segment is designed to fail the attempt).
            if let Some(plan) = &config.faults {
                let injected = (0..segments.len())
                    .filter(|&i| plan.corruption(task as u64, attempt, i as u64).is_some())
                    .count() as u64;
                counters.add(Counter::FaultsInjected, injected);
            }
            let local = Counters::new();
            let out = run_reduce_task(
                config,
                task,
                segments,
                reducer.as_ref(),
                &local,
                attempt,
                true,
            )?;
            fetched.segments = None; // success: the take sticks
            counters.absorb(&local.snapshot());
            *outputs[task].lock() = out;
            Ok(())
        },
    );
    {
        let collected = std::mem::take(&mut *errors.lock());
        if !collected.is_empty() {
            return Err(MrError::from_task_errors(collected));
        }
    }
    let reduce_wall_nanos = reduce_t0.elapsed().as_nanos() as u64;

    let outputs: Vec<Vec<KvPair>> = outputs.into_iter().map(|m| m.into_inner()).collect();
    let snapshot = counters.snapshot();
    // Cross-counter accounting must balance on every completed job; a
    // violation means an instrumentation site drifted (satellite check,
    // debug builds only — see CounterSnapshot::check_invariants).
    #[cfg(debug_assertions)]
    if let Err(violations) = snapshot.check_invariants(config.framing.file_overhead() as u64) {
        panic!("counter invariants violated on job completion: {violations:#?}");
    }
    let stats = JobStats::from_counters(
        &snapshot,
        num_maps,
        config.num_reducers,
        input_bytes,
        map_wall_nanos,
        reduce_wall_nanos,
    );
    let result = JobResult {
        outputs,
        counters: snapshot,
        stats,
    };
    // Run-ledger hook: one record per completed job. The runner has no
    // drained trace (the recorder, if any, is still live and owned by
    // the caller), so phase rollups and histograms stay empty here;
    // callers that own the recorder build richer records themselves via
    // `LedgerRecord::from_run(.., Some(&trace))`.
    if let Some(sink) = &config.ledger {
        let record = obs::LedgerRecord::from_run(&config.ledger_label, config, &result, None);
        sink.append(record)
            .map_err(|e| MrError::Config(format!("ledger append failed: {e}")))?;
    }
    Ok(result)
}

/// Build an intermediate-segment writer for the job's configured IFile
/// version. Every map-side writer site goes through this so a version
/// switch changes spill, merge, and final outputs together.
fn make_writer(config: &JobConfig) -> IFileWriter {
    match config.ifile_version {
        IFileVersion::V1 => IFileWriter::without_trailer(config.framing, config.codec.clone()),
        IFileVersion::V2 => IFileWriter::new(config.framing, config.codec.clone()),
        IFileVersion::V3 => IFileWriter::v3(
            config.framing,
            config.codec.clone(),
            config.key_semantics.clone(),
        ),
    }
}

/// One map task: run the user function over a split, routing into the
/// spill arena, then sorting, combining and materializing spills through
/// borrowed slices — no owned pair is allocated between the mapper's
/// `emit` and the `IFileWriter`.
pub(crate) fn run_map_task(
    config: &JobConfig,
    task: usize,
    split: &InputSplit,
    mapper: &dyn Mapper,
    counters: &Counters,
) -> Result<Vec<(usize, Segment)>, MrError> {
    let ks = &config.key_semantics;
    let parts = config.num_reducers;
    // Contiguous staging; spilled (sorted, combined, compressed) when the
    // total staged payload crosses the spill threshold.
    let mut arena = SpillArena::new(parts);
    let mut segments = Vec::new();

    let spill = |arena: &mut SpillArena,
                 segments: &mut Vec<(usize, Segment)>|
     -> Result<(), MrError> {
        if arena.payload_bytes() == 0 {
            return Ok(());
        }
        counters.add(Counter::Spills, 1);
        let _spill_span = crate::span!(Phase::SortSpill, task);
        obs::hist(Metric::SpillPayloadBytes, arena.payload_bytes() as u64);
        let spill_t0 = clock::thread_cpu_nanos();
        let first_new = segments.len();
        for partition in 0..parts {
            if arena.partition_len(partition) == 0 {
                continue;
            }
            arena.sort_partition(partition, ks.as_ref());
            let mut writer = make_writer(config);
            let combined: Option<Vec<KvPair>> = if let Some(combiner) = &config.combiner {
                let _combine_span = crate::span!(Phase::Combine, task);
                let input = arena.partition_len(partition) as u64;
                counters.add(Counter::CombineInputRecords, input);
                let mut combined: Vec<KvPair> = Vec::with_capacity(arena.partition_len(partition));
                arena.for_each_group(partition, ks.as_ref(), |key, values| {
                    combiner.reduce(key, values, &mut |k: &[u8], v: &[u8]| {
                        combined.push(KvPair::new(k.to_vec(), v.to_vec()));
                    });
                });
                sort_pairs(&mut combined, ks.as_ref());
                counters.add(Counter::CombineOutputRecords, combined.len() as u64);
                obs::hist_many(&[
                    (Metric::CombineInput, input),
                    (Metric::CombineOutput, combined.len() as u64),
                    (
                        Metric::CombineReductionPermille,
                        (combined.len() as u64).saturating_mul(1000) / input.max(1),
                    ),
                ]);
                Some(combined)
            } else {
                None
            };
            let seg = {
                let _write_span = crate::span!(Phase::IFileWrite, task);
                match &combined {
                    Some(pairs) => {
                        for pair in pairs {
                            writer.append_pair(pair);
                        }
                    }
                    None => {
                        for (key, value) in arena.pairs(partition) {
                            writer.append(key, value);
                        }
                    }
                }
                writer.close()
            };
            counters.add(Counter::CompressNanos, seg.compress_nanos);
            segments.push((partition, seg));
        }
        // Codec time is counted separately; charge the rest of the spill
        // (sort + combine + serialization) as per-record pipeline cost.
        let spill_nanos = clock::since(spill_t0);
        let codec_nanos: u64 = segments[first_new..]
            .iter()
            .map(|(_, s)| s.compress_nanos)
            .sum();
        counters.add(Counter::SpillNanos, spill_nanos.saturating_sub(codec_nanos));
        arena.clear();
        Ok(())
    };

    let fn_t0 = clock::thread_cpu_nanos();
    {
        let _emit_span = crate::span!(Phase::MapEmit, task);
        for record in &split.records {
            counters.add(Counter::MapInputRecords, 1);
            {
                let arena = &mut arena;
                let mut emit =
                    |k: &[u8], v: &[u8]| stage(ks.as_ref(), parts, counters, arena, k, v);
                mapper.map(&record.key, &record.value, &mut emit);
            }
            if arena.payload_bytes() >= config.spill_buffer_bytes {
                spill(&mut arena, &mut segments)?;
            }
        }
        {
            let arena = &mut arena;
            let mut emit = |k: &[u8], v: &[u8]| stage(ks.as_ref(), parts, counters, arena, k, v);
            mapper.finish(&mut emit);
        }
    }
    counters.add(Counter::MapFnNanos, clock::since(fn_t0));
    spill(&mut arena, &mut segments)?;

    // Final merge: if a partition spilled several times, merge its runs
    // into one segment (Hadoop's map-output merge, Fig. 1 step 3).
    let segments = merge_spills(config, task, segments, counters)?;

    // Byte accounting happens on the *final* materialized output only.
    // The segment histograms sample at this exact site so their sums
    // reconcile with the counters (see obs::IntermediateBreakdown).
    for (_, seg) in &segments {
        counters.add(Counter::MapOutputBytes, seg.raw_bytes);
        counters.add(Counter::MapOutputKeyBytes, seg.key_bytes);
        counters.add(Counter::MapOutputValueBytes, seg.value_bytes);
        counters.add(Counter::MapOutputFramingBytes, seg.framing_bytes());
        counters.add(Counter::MapOutputKeySavedBytes, seg.key_saved_bytes());
        counters.add(Counter::BlocksWritten, seg.blocks);
        counters.add(
            Counter::MapOutputMaterializedBytes,
            seg.materialized_bytes(),
        );
        counters.add(Counter::MapOutputSegments, 1);
        obs::observe_segment(
            seg.key_bytes,
            seg.value_bytes,
            seg.framing_bytes(),
            seg.key_saved_bytes(),
            seg.raw_bytes,
            seg.materialized_bytes(),
        );
        if seg.blocks > 0 {
            obs::hist(Metric::SegBlocks, seg.blocks);
        }
    }
    Ok(segments)
}

/// Route one emitted pair into the arena through the slice-based routing
/// hook, accounting output records and route splits.
fn stage(
    ks: &dyn crate::keysem::KeySemantics,
    parts: usize,
    counters: &Counters,
    arena: &mut SpillArena,
    key: &[u8],
    value: &[u8],
) {
    obs::hist_many(&[
        (Metric::MapEmitRecordBytes, (key.len() + value.len()) as u64),
        (Metric::MapEmitKeyBytes, key.len() as u64),
        (Metric::MapEmitValueBytes, value.len() as u64),
    ]);
    let mut pieces = 0u64;
    ks.route_slices(key, value, parts, &mut |partition, k, v| {
        debug_assert!(partition < parts, "partition out of range");
        pieces += 1;
        counters.add(Counter::MapOutputRecords, 1);
        arena.append(partition, k, v);
    });
    if pieces > 1 {
        counters.add(Counter::RouteSplitRecords, pieces - 1);
    }
}

/// Merge multi-spill partitions into one sorted segment each. Single-spill
/// partitions pass through untouched (no decompress/recompress cost).
fn merge_spills(
    config: &JobConfig,
    task: usize,
    segments: Vec<(usize, Segment)>,
    counters: &Counters,
) -> Result<Vec<(usize, Segment)>, MrError> {
    let multi = {
        let mut counts = vec![0usize; config.num_reducers];
        for (p, _) in &segments {
            counts[*p] += 1;
        }
        counts.iter().any(|&c| c > 1)
    };
    if !multi {
        return Ok(segments);
    }
    let merge_t0 = clock::thread_cpu_nanos();
    let mut per_partition: Vec<Vec<Segment>> =
        (0..config.num_reducers).map(|_| Vec::new()).collect();
    for (p, seg) in segments {
        per_partition[p].push(seg);
    }
    let mut out = Vec::new();
    let mut codec_nanos = 0u64;
    for (partition, segs) in per_partition.into_iter().enumerate() {
        match segs.len() {
            0 => {}
            // Structured error instead of a panic: an inconsistent
            // partition map here (or a gap observed by a distributed
            // fetch) must fail the task attempt — which is retryable —
            // not the process.
            1 => match segs.into_iter().next() {
                Some(seg) => out.push((partition, seg)),
                None => {
                    return Err(MrError::Intermediate(format!(
                        "partition {partition} of map task {task}: segment list \
                         empty despite count 1 — partition map inconsistent"
                    )))
                }
            },
            _ => {
                let _merge_span = crate::span!(Phase::Merge, task);
                let mut raws = Vec::with_capacity(segs.len());
                for seg in &segs {
                    let r = RawSegment::open(&seg.data, config.codec.as_ref())?;
                    codec_nanos += r.decompress_nanos;
                    raws.push(r);
                }
                let mut writer = make_writer(config);
                if raws.iter().any(|r| r.is_block_format()) {
                    // v3 runs: still-compressed blocks whose key range is
                    // uncontended splice straight into the output segment.
                    let mut stream = BlockMergeStream::new(&raws, config.key_semantics.as_ref())?;
                    loop {
                        match stream.next_item()? {
                            None => break,
                            Some(MergeItem::Record(key, value)) => writer.append(key, value),
                            Some(MergeItem::Block(blk)) => {
                                counters.add(Counter::BlocksSkipped, 1);
                                writer.append_encoded_block(&blk)?;
                            }
                        }
                    }
                } else {
                    let mut stream = MergeStream::new(&raws, config.key_semantics.as_ref())?;
                    while let Some((key, value)) = stream.next()? {
                        writer.append(key, value);
                    }
                }
                let seg = writer.close();
                codec_nanos += seg.compress_nanos;
                counters.add(Counter::CompressNanos, seg.compress_nanos);
                out.push((partition, seg));
            }
        }
    }
    let merge_nanos = clock::since(merge_t0);
    counters.add(Counter::SpillNanos, merge_nanos.saturating_sub(codec_nanos));
    Ok(out)
}

/// Unifies the reduce-side record source across segment formats. Flat
/// (v1/v2) segments yield keys borrowed from the decompressed buffer;
/// block (v3) segments yield keys borrowed from the merge's reused
/// reconstruction scratch, valid only until the next call — so the
/// common signature ties the key to the `&mut self` borrow and the
/// consumer copies the key when it must outlive one step.
enum ReduceStream<'a> {
    Flat(MergeStream<'a>),
    Blocks(BlockMergeStream<'a>),
}

impl<'a> ReduceStream<'a> {
    fn open(
        raws: &'a [RawSegment],
        ks: &'a dyn crate::keysem::KeySemantics,
    ) -> Result<Self, MrError> {
        if raws.iter().any(|r| r.is_block_format()) {
            Ok(ReduceStream::Blocks(BlockMergeStream::new(raws, ks)?))
        } else {
            Ok(ReduceStream::Flat(MergeStream::new(raws, ks)?))
        }
    }

    fn next(&mut self) -> Result<Option<ScratchRecord<'_, 'a>>, MrError> {
        match self {
            ReduceStream::Flat(s) => s.next(),
            ReduceStream::Blocks(s) => s.next(),
        }
    }
}

/// One reduce task: stream this reducer's segments through a k-way
/// merge, apply the §IV-B sort-split hook lazily per overlap window,
/// group, and run the user reduce function. Grouping and reduce consume
/// records as the merge heap yields them; nothing is materialized as a
/// whole run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_reduce_task(
    config: &JobConfig,
    task: usize,
    segments: &[Vec<u8>],
    reducer: &dyn Reducer,
    counters: &Counters,
    attempt: u32,
    apply_corruption: bool,
) -> Result<Vec<KvPair>, MrError> {
    let ks = &config.key_semantics;
    let mut raws = Vec::with_capacity(segments.len());
    {
        let _fetch_span = crate::span!(Phase::ShuffleFetch, task);
        for (index, seg) in segments.iter().enumerate() {
            obs::hist(Metric::ShuffleSegmentBytes, seg.len() as u64);
            // A configured fault plan may corrupt the fetched copy of a
            // segment (the canonical map output stays intact, as it
            // would on the mapper's disk); the hot path borrows. The
            // distributed worker passes `apply_corruption = false`: its
            // segments were already corrupted on the wire by the shuffle
            // service at the same (task, attempt, index) coordinates.
            let corruption = if apply_corruption {
                config
                    .faults
                    .as_ref()
                    .and_then(|p| p.corruption(task as u64, attempt, index as u64))
            } else {
                None
            };
            let r = match corruption {
                Some(c) => {
                    let mut fetched = seg.clone();
                    c.apply(&mut fetched);
                    RawSegment::open(&fetched, config.codec.as_ref())?
                }
                None => RawSegment::open(seg, config.codec.as_ref())?,
            };
            counters.add(Counter::DecompressNanos, r.decompress_nanos);
            raws.push(r);
        }
    }
    let merge_t0 = clock::thread_cpu_nanos();
    let merge_span = crate::span!(Phase::Merge, task);
    let mut stream = ReduceStream::open(&raws, ks.as_ref())?;

    let mut out = Vec::new();
    let mut reduce_nanos = 0u64;
    // Per-group reduce invocation, shared by both consumption paths.
    let mut run_group = |key: &[u8], values: &[&[u8]]| {
        let _group_span = crate::span!(Phase::ReduceGroup, task);
        obs::hist(Metric::ReduceGroupValues, values.len() as u64);
        counters.add(Counter::ReduceInputGroups, 1);
        counters.add(Counter::ReduceInputRecords, values.len() as u64);
        let fn_t0 = clock::thread_cpu_nanos();
        reducer.reduce(key, values, &mut |k: &[u8], v: &[u8]| {
            counters.add(Counter::ReduceOutputRecords, 1);
            counters.add(Counter::ReduceOutputBytes, (k.len() + v.len()) as u64);
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        });
        reduce_nanos += clock::since(fn_t0);
    };

    if !ks.sort_splits() {
        // Fast path: keys never rewrite, so groups form directly on the
        // merged stream. The group key is held in one reused owned
        // buffer (a v3 key borrow dies at the next `next()` call).
        let mut group_key: Vec<u8> = Vec::new();
        let mut in_group = false;
        let mut group_values: Vec<&[u8]> = Vec::new();
        while let Some((key, value)) = stream.next()? {
            if in_group && ks.group_eq(&group_key, key) {
                group_values.push(value);
            } else {
                if in_group {
                    run_group(&group_key, &group_values);
                    group_values.clear();
                }
                group_key.clear();
                group_key.extend_from_slice(key);
                in_group = true;
                group_values.push(value);
            }
        }
        if in_group {
            run_group(&group_key, &group_values);
        }
    } else {
        // Windowed path: records accumulate only while they can still
        // interact under `sort_split`; each window is split, re-sorted if
        // the split disturbed the order, and grouped — instead of
        // materializing and re-sorting the entire run.
        let mut window: Vec<KvPair> = Vec::new();
        let mut flush = |window: &mut Vec<KvPair>| {
            let _split_span = crate::span!(Phase::SortSplit, task);
            let before = window.len();
            obs::hist(Metric::SortSplitWindowRecords, before as u64);
            let mut records = ks.sort_split(std::mem::take(window));
            if records.len() > before {
                counters.add(Counter::SortSplitRecords, (records.len() - before) as u64);
            }
            // Skip the re-sort when nothing split and the order survived.
            let sorted = records
                .windows(2)
                .all(|w| ks.compare(&w[0].key, &w[1].key) != std::cmp::Ordering::Greater);
            if records.len() != before || !sorted {
                sort_pairs(&mut records, ks.as_ref());
            }
            for_each_group(&records, ks.as_ref(), &mut run_group);
        };
        // Window members that can still interact with future records; a
        // member failing against one record can never interact again (the
        // closure contract), so it is pruned from all future checks.
        let mut frontier: Vec<usize> = Vec::new();
        while let Some((key, value)) = stream.next()? {
            if !window.is_empty() {
                frontier.retain(|&i| ks.sort_interacts(&window[i].key, key));
                if frontier.is_empty() {
                    flush(&mut window);
                }
            }
            frontier.push(window.len());
            window.push(KvPair::new(key.to_vec(), value.to_vec()));
        }
        if !window.is_empty() {
            flush(&mut window);
        }
    }
    drop(merge_span);
    let total_nanos = clock::since(merge_t0);
    counters.add(
        Counter::MergeNanos,
        total_nanos.saturating_sub(reduce_nanos),
    );
    counters.add(Counter::ReduceFnNanos, reduce_nanos);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::record::{FnMapper, FnReducer};
    use scihadoop_compress::DeflateCodec;

    /// Word-count-shaped job: identity map, counting reduce.
    fn count_job(config: JobConfig, words: &[&str]) -> JobResult {
        let splits: Vec<InputSplit> = words
            .chunks(100)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let mapper = Arc::new(FnMapper(
            |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| {
                out.emit(k, v);
            },
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                let total: u64 = values.iter().map(|v| v.len() as u64).sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        Job::new(config).run(splits, mapper, reducer).unwrap()
    }

    fn collect_counts(result: &JobResult) -> std::collections::HashMap<String, u64> {
        result
            .all_outputs()
            .into_iter()
            .map(|p| {
                (
                    String::from_utf8(p.key).unwrap(),
                    u64::from_be_bytes(p.value.try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let words = ["a", "b", "a", "c", "b", "a", "d"];
        let result = count_job(JobConfig::default().with_reducers(3), &words);
        let counts = collect_counts(&result);
        assert_eq!(counts["a"], 3);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
        assert_eq!(counts["d"], 1);
        assert_eq!(result.counters.get(Counter::MapInputRecords), 7);
        assert_eq!(result.counters.get(Counter::MapOutputRecords), 7);
        assert_eq!(result.counters.get(Counter::ReduceInputGroups), 4);
    }

    #[test]
    fn completed_jobs_append_ledger_records() {
        let sink = crate::obs::LedgerSink::new();
        let words = ["a", "b", "a", "c"];
        let result = count_job(
            JobConfig::default().with_ledger(sink.clone(), "unit-run"),
            &words,
        );
        let records = sink.records();
        assert_eq!(records.len(), 1, "one record per completed job");
        let rec = &records[0];
        assert_eq!(rec.label, "unit-run");
        assert_eq!(rec.config.codec, "identity");
        assert_eq!(rec.job.num_maps as usize, result.stats.num_maps);
        assert_eq!(
            rec.counters.get(Counter::MapInputRecords),
            result.counters.get(Counter::MapInputRecords)
        );
        // The runner owns no drained trace, so rollups stay empty.
        assert!(rec.phases.iter().all(|p| p.count == 0));
        assert!(rec.hists.is_empty());
    }

    #[test]
    fn outputs_are_sorted_within_each_reducer() {
        let words = ["q", "m", "z", "a", "f", "b", "x", "c"];
        let result = count_job(JobConfig::default().with_reducers(2), &words);
        for out in &result.outputs {
            assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
        }
    }

    #[test]
    fn compressing_codec_reduces_materialized_bytes() {
        let words: Vec<String> = (0..500).map(|i| format!("key{:04}", i % 20)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let plain = count_job(JobConfig::default(), &refs);
        let zipped = count_job(
            JobConfig::default().with_codec(Arc::new(DeflateCodec::new())),
            &refs,
        );
        assert_eq!(collect_counts(&plain), collect_counts(&zipped));
        assert!(
            zipped.counters.get(Counter::MapOutputMaterializedBytes)
                < plain.counters.get(Counter::MapOutputMaterializedBytes)
        );
        assert_eq!(
            plain.counters.get(Counter::MapOutputBytes),
            zipped.counters.get(Counter::MapOutputBytes),
            "raw bytes must not depend on codec"
        );
    }

    #[test]
    fn combiner_shrinks_intermediate_records() {
        let words: Vec<String> = (0..300).map(|i| format!("w{}", i % 5)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let combiner = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                // Sum the 1-byte tallies into an 8-byte partial count.
                let total: u64 = values
                    .iter()
                    .map(|v| {
                        if v.len() == 1 {
                            v[0] as u64
                        } else {
                            u64::from_be_bytes((*v).try_into().unwrap())
                        }
                    })
                    .sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        let splits: Vec<InputSplit> = refs
            .chunks(100)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let mapper = Arc::new(FnMapper(
            |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| out.emit(k, v),
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                let total: u64 = values
                    .iter()
                    .map(|v| {
                        if v.len() == 1 {
                            v[0] as u64
                        } else {
                            u64::from_be_bytes((*v).try_into().unwrap())
                        }
                    })
                    .sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        let result = Job::new(JobConfig::default().with_combiner(combiner))
            .run(splits, mapper, reducer)
            .unwrap();
        let counts = collect_counts(&result);
        assert_eq!(counts.values().sum::<u64>(), 300);
        // 3 splits × 5 distinct words = at most 15 records materialized.
        assert!(result.counters.get(Counter::CombineOutputRecords) <= 15);
        assert_eq!(result.counters.get(Counter::CombineInputRecords), 300);
    }

    #[test]
    fn many_slots_agree_with_one_slot() {
        let words: Vec<String> = (0..200).map(|i| format!("k{}", i % 17)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let serial = count_job(JobConfig::default().with_slots(1, 1), &refs);
        let parallel = count_job(
            JobConfig::default().with_slots(8, 4).with_reducers(4),
            &refs,
        );
        assert_eq!(collect_counts(&serial), collect_counts(&parallel));
    }

    #[test]
    fn small_spill_buffer_forces_multiple_spills() {
        let words: Vec<String> = (0..100).map(|i| format!("key-{i:03}")).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let result = count_job(JobConfig::default().with_spill_buffer(64), &refs);
        assert!(result.counters.get(Counter::Spills) > 1);
        assert_eq!(collect_counts(&result).len(), 100);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let result = count_job(JobConfig::default(), &[]);
        assert!(result.all_outputs().is_empty());
        assert_eq!(result.counters.get(Counter::MapInputRecords), 0);
    }

    #[test]
    fn v3_jobs_agree_with_v2_and_save_key_bytes() {
        let words: Vec<String> = (0..400).map(|i| format!("station-{:04}", i % 37)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let v2 = count_job(JobConfig::default().with_reducers(3), &refs);
        let v3 = count_job(
            JobConfig::default()
                .with_reducers(3)
                .with_ifile_version(IFileVersion::V3),
            &refs,
        );
        assert_eq!(collect_counts(&v2), collect_counts(&v3));
        for (a, b) in v2.outputs.iter().zip(&v3.outputs) {
            assert_eq!(a, b, "per-reducer order must match v2 exactly");
        }
        assert!(v3.counters.get(Counter::BlocksWritten) > 0);
        assert!(
            v3.counters.get(Counter::MapOutputKeySavedBytes) > 0,
            "shared key prefixes must front-code away"
        );
        assert_eq!(v2.counters.get(Counter::MapOutputKeySavedBytes), 0);
        // Logical key/value accounting is format-independent.
        assert_eq!(
            v2.counters.get(Counter::MapOutputKeyBytes),
            v3.counters.get(Counter::MapOutputKeyBytes)
        );
        assert_eq!(
            v2.counters.get(Counter::MapOutputValueBytes),
            v3.counters.get(Counter::MapOutputValueBytes)
        );
    }

    #[test]
    fn v3_multi_spill_merge_splices_blocks() {
        // A tiny spill buffer forces several spills per partition, so the
        // map-side merge runs over v3 segments; presorted shards give the
        // merge disjoint stretches where whole blocks splice through.
        let words: Vec<String> = (0..600).map(|i| format!("key-{i:05}")).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let v3 = count_job(
            JobConfig::default()
                .with_spill_buffer(2048)
                .with_ifile_version(IFileVersion::V3),
            &refs,
        );
        assert!(v3.counters.get(Counter::Spills) > 1);
        let counts = collect_counts(&v3);
        assert_eq!(counts.len(), 600);
        assert!(counts.values().all(|&c| c == 1));
        assert!(v3.counters.get(Counter::BlocksSkipped) <= v3.counters.get(Counter::BlocksWritten));
    }

    #[test]
    fn v1_jobs_still_agree() {
        let words = ["a", "b", "a", "c", "b", "a", "d"];
        let v1 = count_job(
            JobConfig::default()
                .with_reducers(2)
                .with_ifile_version(IFileVersion::V1),
            &words,
        );
        let counts = collect_counts(&v1);
        assert_eq!(counts["a"], 3);
        assert_eq!(counts["d"], 1);
    }

    #[test]
    fn v3_with_codec_and_retries_round_trips() {
        let words: Vec<String> = (0..300).map(|i| format!("sensor-{:03}", i % 29)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let result = count_job(
            JobConfig::default()
                .with_reducers(2)
                .with_codec(Arc::new(DeflateCodec::new()))
                .with_retries(1)
                .with_ifile_version(IFileVersion::V3),
            &refs,
        );
        let counts = collect_counts(&result);
        assert_eq!(counts.values().sum::<u64>(), 300);
    }

    #[test]
    fn work_queue_survives_poisoned_mutex() {
        // A thread panicking while holding the state lock poisons the
        // std mutex; queue operations must recover the guard instead of
        // cascading the panic into every other slot.
        let q = WorkQueue::new(vec![1usize]);
        let qref = &q;
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = qref.state.lock().unwrap();
                panic!("poison the queue mutex");
            });
            assert!(handle.join().is_err(), "the poisoning thread panicked");
        });
        assert!(q.state.is_poisoned(), "mutex must actually be poisoned");
        let claimed = q.claim();
        assert_eq!(claimed, Some((1usize, 0)));
        q.finish();
        assert!(q.is_drained());
        assert!(q.claim().is_none());
    }

    #[test]
    fn panicking_map_task_retries_instead_of_cascading() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let words: Vec<String> = (0..150).map(|i| format!("w{}", i % 11)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let splits: Vec<InputSplit> = refs
            .chunks(50)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let panics = Arc::new(AtomicU32::new(0));
        let panics_in_map = panics.clone();
        let mapper = Arc::new(FnMapper(
            move |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| {
                if panics_in_map.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected mapper panic (first record only)");
                }
                out.emit(k, v);
            },
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                let total: u64 = values.iter().map(|v| v.len() as u64).sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        let result = Job::new(JobConfig::default().with_reducers(2).with_retries(2))
            .run(splits, mapper, reducer)
            .expect("panicking attempt must retry, not cascade");
        let counts = collect_counts(&result);
        assert_eq!(counts.values().sum::<u64>(), 150);
        assert!(result.counters.get(Counter::TaskRetries) >= 1);
    }

    #[test]
    fn panicking_reduce_task_restores_segments_for_the_retry() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let words: Vec<String> = (0..120).map(|i| format!("r{}", i % 7)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let splits: Vec<InputSplit> = refs
            .chunks(40)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let mapper = Arc::new(FnMapper(
            |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| out.emit(k, v),
        ));
        let panics = Arc::new(AtomicU32::new(0));
        let panics_in_reduce = panics.clone();
        let reducer = Arc::new(FnReducer(
            move |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                if panics_in_reduce.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected reducer panic (first group only)");
                }
                let total: u64 = values.iter().map(|v| v.len() as u64).sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        // The retry must see the same segments the panicking attempt
        // took (the restore guard ran during the unwind), so the job
        // completes with full counts.
        let result = Job::new(JobConfig::default().with_reducers(2).with_retries(2))
            .run(splits, mapper, reducer)
            .expect("reduce panic must restore segments and retry");
        let counts = collect_counts(&result);
        assert_eq!(counts.values().sum::<u64>(), 120);
        assert_eq!(counts.len(), 7);
        assert!(result.counters.get(Counter::TaskRetries) >= 1);
    }

    #[test]
    fn always_panicking_task_fails_the_job_without_cascading() {
        let mapper = Arc::new(FnMapper(
            |_: &[u8], _: &[u8], _: &mut dyn crate::record::Emit| {
                panic!("unconditional mapper panic");
            },
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], _: &[&[u8]], out: &mut dyn crate::record::Emit| out.emit(k, b"x"),
        ));
        let splits = vec![InputSplit::new(vec![KvPair::new(
            b"k".to_vec(),
            b"v".to_vec(),
        )])];
        let err = match Job::new(JobConfig::default()).run(splits, mapper, reducer) {
            Ok(_) => panic!("the job must fail with a structured error"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
    }

    #[test]
    fn stats_reflect_counters() {
        let words = ["x", "y", "x"];
        let result = count_job(JobConfig::default(), &words);
        assert_eq!(
            result.stats.map_output_materialized_bytes,
            result.counters.get(Counter::MapOutputMaterializedBytes)
        );
        assert!(result.stats.map_wall_nanos > 0);
        assert_eq!(result.stats.num_maps, 1);
    }
}

//! Job execution: map slots, spills, shuffle, and reduce slots.

use crate::arena::SpillArena;
use crate::clock;
use crate::counters::{Counter, Counters};
use crate::error::MrError;
use crate::ifile::{IFileWriter, RawSegment, Segment};
use crate::job::{JobConfig, JobResult};
use crate::obs::{self, Metric, Phase};
use crate::record::{InputSplit, KvPair, Mapper, Reducer};
use crate::sort::{for_each_group, MergeStream};
use crate::stats::JobStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A drain-once work queue shared by one phase's slots. A failed task
/// raises the abort flag, so idle slots stop claiming work instead of
/// running the rest of the job to completion.
struct WorkQueue<T> {
    items: Mutex<std::vec::IntoIter<T>>,
    abort: AtomicBool,
}

impl<T> WorkQueue<T> {
    fn new(items: Vec<T>) -> Self {
        WorkQueue {
            items: Mutex::new(items.into_iter()),
            abort: AtomicBool::new(false),
        }
    }

    /// Claim the next task, or `None` once drained or aborted.
    fn claim(&self) -> Option<T> {
        if self.abort.load(Ordering::Relaxed) {
            return None;
        }
        self.items.lock().next()
    }

    fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }
}

/// Execute a job. Called by [`crate::job::Job::run`].
pub fn run_job(
    config: &JobConfig,
    splits: Vec<InputSplit>,
    mapper: Arc<dyn Mapper>,
    reducer: Arc<dyn Reducer>,
) -> Result<JobResult, MrError> {
    let counters = Arc::new(Counters::new());
    let num_maps = splits.len();
    let input_bytes: u64 = splits.iter().map(|s| s.bytes()).sum();

    // ---- Map phase -----------------------------------------------------
    let map_t0 = Instant::now();
    // map_outputs[r] = compressed segments destined for reducer r.
    let map_outputs: Vec<Mutex<Vec<Vec<u8>>>> = (0..config.num_reducers)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let errors: Mutex<Vec<MrError>> = Mutex::new(Vec::new());

    {
        let queue = WorkQueue::new(splits.into_iter().enumerate().collect());
        std::thread::scope(|scope| {
            for slot in 0..config.map_slots {
                let queue = &queue;
                let mapper = mapper.clone();
                let counters = counters.clone();
                let map_outputs = &map_outputs;
                let errors = &errors;
                let config = config.clone();
                scope.spawn(move || {
                    let _att = config
                        .recorder
                        .as_ref()
                        .map(|r| r.attach(&format!("map-slot-{slot}")));
                    while let Some((task, split)) = queue.claim() {
                        match run_map_task(&config, task, &split, mapper.as_ref(), &counters) {
                            Ok(segments) => {
                                for (partition, seg) in segments {
                                    map_outputs[partition].lock().push(seg.data);
                                }
                            }
                            Err(e) => {
                                errors.lock().push(e);
                                queue.abort();
                            }
                        }
                    }
                });
            }
        });
    }
    {
        let collected = std::mem::take(&mut *errors.lock());
        if !collected.is_empty() {
            return Err(MrError::from_task_errors(collected));
        }
    }
    let map_wall_nanos = map_t0.elapsed().as_nanos() as u64;

    // ---- Shuffle (in-process: account the transfer) ---------------------
    for per_reducer in &map_outputs {
        let bytes: u64 = per_reducer.lock().iter().map(|s| s.len() as u64).sum();
        counters.add(Counter::ShuffleBytes, bytes);
    }

    // ---- Reduce phase ----------------------------------------------------
    let reduce_t0 = Instant::now();
    let outputs: Vec<Mutex<Vec<KvPair>>> = (0..config.num_reducers)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    {
        let queue = WorkQueue::new((0..config.num_reducers).collect());
        std::thread::scope(|scope| {
            for slot in 0..config.reduce_slots {
                let queue = &queue;
                let reducer = reducer.clone();
                let counters = counters.clone();
                let map_outputs = &map_outputs;
                let outputs = &outputs;
                let errors = &errors;
                let config = config.clone();
                scope.spawn(move || {
                    let _att = config
                        .recorder
                        .as_ref()
                        .map(|r| r.attach(&format!("reduce-slot-{slot}")));
                    while let Some(r) = queue.claim() {
                        let segments = std::mem::take(&mut *map_outputs[r].lock());
                        match run_reduce_task(&config, r, segments, reducer.as_ref(), &counters) {
                            Ok(out) => *outputs[r].lock() = out,
                            Err(e) => {
                                errors.lock().push(e);
                                queue.abort();
                            }
                        }
                    }
                });
            }
        });
    }
    {
        let collected = std::mem::take(&mut *errors.lock());
        if !collected.is_empty() {
            return Err(MrError::from_task_errors(collected));
        }
    }
    let reduce_wall_nanos = reduce_t0.elapsed().as_nanos() as u64;

    let outputs: Vec<Vec<KvPair>> = outputs.into_iter().map(|m| m.into_inner()).collect();
    let snapshot = counters.snapshot();
    // Cross-counter accounting must balance on every completed job; a
    // violation means an instrumentation site drifted (satellite check,
    // debug builds only — see CounterSnapshot::check_invariants).
    #[cfg(debug_assertions)]
    if let Err(violations) = snapshot.check_invariants(config.framing.file_overhead() as u64) {
        panic!("counter invariants violated on job completion: {violations:#?}");
    }
    let stats = JobStats::from_counters(
        &snapshot,
        num_maps,
        config.num_reducers,
        input_bytes,
        map_wall_nanos,
        reduce_wall_nanos,
    );
    Ok(JobResult {
        outputs,
        counters: snapshot,
        stats,
    })
}

/// One map task: run the user function over a split, routing into the
/// spill arena, then sorting, combining and materializing spills through
/// borrowed slices — no owned pair is allocated between the mapper's
/// `emit` and the `IFileWriter`.
fn run_map_task(
    config: &JobConfig,
    task: usize,
    split: &InputSplit,
    mapper: &dyn Mapper,
    counters: &Counters,
) -> Result<Vec<(usize, Segment)>, MrError> {
    let ks = &config.key_semantics;
    let parts = config.num_reducers;
    // Contiguous staging; spilled (sorted, combined, compressed) when the
    // total staged payload crosses the spill threshold.
    let mut arena = SpillArena::new(parts);
    let mut segments = Vec::new();

    let spill = |arena: &mut SpillArena,
                 segments: &mut Vec<(usize, Segment)>|
     -> Result<(), MrError> {
        if arena.payload_bytes() == 0 {
            return Ok(());
        }
        counters.add(Counter::Spills, 1);
        let _spill_span = crate::span!(Phase::SortSpill, task);
        obs::hist(Metric::SpillPayloadBytes, arena.payload_bytes() as u64);
        let spill_t0 = clock::thread_cpu_nanos();
        let first_new = segments.len();
        for partition in 0..parts {
            if arena.partition_len(partition) == 0 {
                continue;
            }
            arena.sort_partition(partition, ks.as_ref());
            let mut writer = IFileWriter::new(config.framing, config.codec.clone());
            let combined: Option<Vec<KvPair>> = if let Some(combiner) = &config.combiner {
                let _combine_span = crate::span!(Phase::Combine, task);
                let input = arena.partition_len(partition) as u64;
                counters.add(Counter::CombineInputRecords, input);
                let mut combined: Vec<KvPair> = Vec::with_capacity(arena.partition_len(partition));
                arena.for_each_group(partition, ks.as_ref(), |key, values| {
                    combiner.reduce(key, values, &mut |k: &[u8], v: &[u8]| {
                        combined.push(KvPair::new(k.to_vec(), v.to_vec()));
                    });
                });
                combined.sort_by(|a, b| ks.compare(&a.key, &b.key));
                counters.add(Counter::CombineOutputRecords, combined.len() as u64);
                obs::hist_many(&[
                    (Metric::CombineInput, input),
                    (Metric::CombineOutput, combined.len() as u64),
                    (
                        Metric::CombineReductionPermille,
                        (combined.len() as u64).saturating_mul(1000) / input.max(1),
                    ),
                ]);
                Some(combined)
            } else {
                None
            };
            let seg = {
                let _write_span = crate::span!(Phase::IFileWrite, task);
                match &combined {
                    Some(pairs) => {
                        for pair in pairs {
                            writer.append_pair(pair);
                        }
                    }
                    None => {
                        for (key, value) in arena.pairs(partition) {
                            writer.append(key, value);
                        }
                    }
                }
                writer.close()
            };
            counters.add(Counter::CompressNanos, seg.compress_nanos);
            segments.push((partition, seg));
        }
        // Codec time is counted separately; charge the rest of the spill
        // (sort + combine + serialization) as per-record pipeline cost.
        let spill_nanos = clock::since(spill_t0);
        let codec_nanos: u64 = segments[first_new..]
            .iter()
            .map(|(_, s)| s.compress_nanos)
            .sum();
        counters.add(Counter::SpillNanos, spill_nanos.saturating_sub(codec_nanos));
        arena.clear();
        Ok(())
    };

    let fn_t0 = clock::thread_cpu_nanos();
    {
        let _emit_span = crate::span!(Phase::MapEmit, task);
        for record in &split.records {
            counters.add(Counter::MapInputRecords, 1);
            {
                let arena = &mut arena;
                let mut emit =
                    |k: &[u8], v: &[u8]| stage(ks.as_ref(), parts, counters, arena, k, v);
                mapper.map(&record.key, &record.value, &mut emit);
            }
            if arena.payload_bytes() >= config.spill_buffer_bytes {
                spill(&mut arena, &mut segments)?;
            }
        }
        {
            let arena = &mut arena;
            let mut emit = |k: &[u8], v: &[u8]| stage(ks.as_ref(), parts, counters, arena, k, v);
            mapper.finish(&mut emit);
        }
    }
    counters.add(Counter::MapFnNanos, clock::since(fn_t0));
    spill(&mut arena, &mut segments)?;

    // Final merge: if a partition spilled several times, merge its runs
    // into one segment (Hadoop's map-output merge, Fig. 1 step 3).
    let segments = merge_spills(config, task, segments, counters)?;

    // Byte accounting happens on the *final* materialized output only.
    // The segment histograms sample at this exact site so their sums
    // reconcile with the counters (see obs::IntermediateBreakdown).
    for (_, seg) in &segments {
        counters.add(Counter::MapOutputBytes, seg.raw_bytes);
        counters.add(Counter::MapOutputKeyBytes, seg.key_bytes);
        counters.add(Counter::MapOutputValueBytes, seg.value_bytes);
        counters.add(Counter::MapOutputFramingBytes, seg.framing_bytes());
        counters.add(
            Counter::MapOutputMaterializedBytes,
            seg.materialized_bytes(),
        );
        counters.add(Counter::MapOutputSegments, 1);
        obs::observe_segment(
            seg.key_bytes,
            seg.value_bytes,
            seg.framing_bytes(),
            seg.raw_bytes,
            seg.materialized_bytes(),
        );
    }
    Ok(segments)
}

/// Route one emitted pair into the arena through the slice-based routing
/// hook, accounting output records and route splits.
fn stage(
    ks: &dyn crate::keysem::KeySemantics,
    parts: usize,
    counters: &Counters,
    arena: &mut SpillArena,
    key: &[u8],
    value: &[u8],
) {
    obs::hist_many(&[
        (Metric::MapEmitRecordBytes, (key.len() + value.len()) as u64),
        (Metric::MapEmitKeyBytes, key.len() as u64),
        (Metric::MapEmitValueBytes, value.len() as u64),
    ]);
    let mut pieces = 0u64;
    ks.route_slices(key, value, parts, &mut |partition, k, v| {
        debug_assert!(partition < parts, "partition out of range");
        pieces += 1;
        counters.add(Counter::MapOutputRecords, 1);
        arena.append(partition, k, v);
    });
    if pieces > 1 {
        counters.add(Counter::RouteSplitRecords, pieces - 1);
    }
}

/// Merge multi-spill partitions into one sorted segment each. Single-spill
/// partitions pass through untouched (no decompress/recompress cost).
fn merge_spills(
    config: &JobConfig,
    task: usize,
    segments: Vec<(usize, Segment)>,
    counters: &Counters,
) -> Result<Vec<(usize, Segment)>, MrError> {
    let multi = {
        let mut counts = vec![0usize; config.num_reducers];
        for (p, _) in &segments {
            counts[*p] += 1;
        }
        counts.iter().any(|&c| c > 1)
    };
    if !multi {
        return Ok(segments);
    }
    let merge_t0 = clock::thread_cpu_nanos();
    let mut per_partition: Vec<Vec<Segment>> =
        (0..config.num_reducers).map(|_| Vec::new()).collect();
    for (p, seg) in segments {
        per_partition[p].push(seg);
    }
    let mut out = Vec::new();
    let mut codec_nanos = 0u64;
    for (partition, segs) in per_partition.into_iter().enumerate() {
        match segs.len() {
            0 => {}
            1 => out.push((partition, segs.into_iter().next().expect("one"))),
            _ => {
                let _merge_span = crate::span!(Phase::Merge, task);
                let mut raws = Vec::with_capacity(segs.len());
                for seg in &segs {
                    let r = RawSegment::open(&seg.data, config.codec.as_ref())?;
                    codec_nanos += r.decompress_nanos;
                    raws.push(r);
                }
                let mut stream = MergeStream::new(&raws, config.key_semantics.as_ref())?;
                let mut writer = IFileWriter::new(config.framing, config.codec.clone());
                while let Some((key, value)) = stream.next()? {
                    writer.append(key, value);
                }
                let seg = writer.close();
                codec_nanos += seg.compress_nanos;
                counters.add(Counter::CompressNanos, seg.compress_nanos);
                out.push((partition, seg));
            }
        }
    }
    let merge_nanos = clock::since(merge_t0);
    counters.add(Counter::SpillNanos, merge_nanos.saturating_sub(codec_nanos));
    Ok(out)
}

/// One reduce task: stream this reducer's segments through a k-way
/// merge, apply the §IV-B sort-split hook lazily per overlap window,
/// group, and run the user reduce function. Grouping and reduce consume
/// records as the merge heap yields them; nothing is materialized as a
/// whole run.
fn run_reduce_task(
    config: &JobConfig,
    task: usize,
    segments: Vec<Vec<u8>>,
    reducer: &dyn Reducer,
    counters: &Counters,
) -> Result<Vec<KvPair>, MrError> {
    let ks = &config.key_semantics;
    let mut raws = Vec::with_capacity(segments.len());
    {
        let _fetch_span = crate::span!(Phase::ShuffleFetch, task);
        for seg in &segments {
            obs::hist(Metric::ShuffleSegmentBytes, seg.len() as u64);
            let r = RawSegment::open(seg, config.codec.as_ref())?;
            counters.add(Counter::DecompressNanos, r.decompress_nanos);
            raws.push(r);
        }
    }
    let merge_t0 = clock::thread_cpu_nanos();
    let merge_span = crate::span!(Phase::Merge, task);
    let mut stream = MergeStream::new(&raws, ks.as_ref())?;

    let mut out = Vec::new();
    let mut reduce_nanos = 0u64;
    // Per-group reduce invocation, shared by both consumption paths.
    let mut run_group = |key: &[u8], values: &[&[u8]]| {
        let _group_span = crate::span!(Phase::ReduceGroup, task);
        obs::hist(Metric::ReduceGroupValues, values.len() as u64);
        counters.add(Counter::ReduceInputGroups, 1);
        counters.add(Counter::ReduceInputRecords, values.len() as u64);
        let fn_t0 = clock::thread_cpu_nanos();
        reducer.reduce(key, values, &mut |k: &[u8], v: &[u8]| {
            counters.add(Counter::ReduceOutputRecords, 1);
            counters.add(Counter::ReduceOutputBytes, (k.len() + v.len()) as u64);
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        });
        reduce_nanos += clock::since(fn_t0);
    };

    if !ks.sort_splits() {
        // Fast path: keys never rewrite, so groups form directly on the
        // merged stream of borrowed slices.
        let mut group_key: Option<&[u8]> = None;
        let mut group_values: Vec<&[u8]> = Vec::new();
        while let Some((key, value)) = stream.next()? {
            match group_key {
                Some(gk) if ks.group_eq(gk, key) => group_values.push(value),
                _ => {
                    if let Some(gk) = group_key {
                        run_group(gk, &group_values);
                        group_values.clear();
                    }
                    group_key = Some(key);
                    group_values.push(value);
                }
            }
        }
        if let Some(gk) = group_key {
            run_group(gk, &group_values);
        }
    } else {
        // Windowed path: records accumulate only while they can still
        // interact under `sort_split`; each window is split, re-sorted if
        // the split disturbed the order, and grouped — instead of
        // materializing and re-sorting the entire run.
        let mut window: Vec<KvPair> = Vec::new();
        let mut flush = |window: &mut Vec<KvPair>| {
            let _split_span = crate::span!(Phase::SortSplit, task);
            let before = window.len();
            obs::hist(Metric::SortSplitWindowRecords, before as u64);
            let mut records = ks.sort_split(std::mem::take(window));
            if records.len() > before {
                counters.add(Counter::SortSplitRecords, (records.len() - before) as u64);
            }
            // Skip the re-sort when nothing split and the order survived.
            let sorted = records
                .windows(2)
                .all(|w| ks.compare(&w[0].key, &w[1].key) != std::cmp::Ordering::Greater);
            if records.len() != before || !sorted {
                records.sort_by(|a, b| ks.compare(&a.key, &b.key));
            }
            for_each_group(&records, ks.as_ref(), &mut run_group);
        };
        // Window members that can still interact with future records; a
        // member failing against one record can never interact again (the
        // closure contract), so it is pruned from all future checks.
        let mut frontier: Vec<usize> = Vec::new();
        while let Some((key, value)) = stream.next()? {
            if !window.is_empty() {
                frontier.retain(|&i| ks.sort_interacts(&window[i].key, key));
                if frontier.is_empty() {
                    flush(&mut window);
                }
            }
            frontier.push(window.len());
            window.push(KvPair::new(key.to_vec(), value.to_vec()));
        }
        if !window.is_empty() {
            flush(&mut window);
        }
    }
    drop(merge_span);
    let total_nanos = clock::since(merge_t0);
    counters.add(
        Counter::MergeNanos,
        total_nanos.saturating_sub(reduce_nanos),
    );
    counters.add(Counter::ReduceFnNanos, reduce_nanos);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::record::{FnMapper, FnReducer};
    use scihadoop_compress::DeflateCodec;

    /// Word-count-shaped job: identity map, counting reduce.
    fn count_job(config: JobConfig, words: &[&str]) -> JobResult {
        let splits: Vec<InputSplit> = words
            .chunks(100)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let mapper = Arc::new(FnMapper(
            |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| {
                out.emit(k, v);
            },
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                let total: u64 = values.iter().map(|v| v.len() as u64).sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        Job::new(config).run(splits, mapper, reducer).unwrap()
    }

    fn collect_counts(result: &JobResult) -> std::collections::HashMap<String, u64> {
        result
            .all_outputs()
            .into_iter()
            .map(|p| {
                (
                    String::from_utf8(p.key).unwrap(),
                    u64::from_be_bytes(p.value.try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let words = ["a", "b", "a", "c", "b", "a", "d"];
        let result = count_job(JobConfig::default().with_reducers(3), &words);
        let counts = collect_counts(&result);
        assert_eq!(counts["a"], 3);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
        assert_eq!(counts["d"], 1);
        assert_eq!(result.counters.get(Counter::MapInputRecords), 7);
        assert_eq!(result.counters.get(Counter::MapOutputRecords), 7);
        assert_eq!(result.counters.get(Counter::ReduceInputGroups), 4);
    }

    #[test]
    fn outputs_are_sorted_within_each_reducer() {
        let words = ["q", "m", "z", "a", "f", "b", "x", "c"];
        let result = count_job(JobConfig::default().with_reducers(2), &words);
        for out in &result.outputs {
            assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
        }
    }

    #[test]
    fn compressing_codec_reduces_materialized_bytes() {
        let words: Vec<String> = (0..500).map(|i| format!("key{:04}", i % 20)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let plain = count_job(JobConfig::default(), &refs);
        let zipped = count_job(
            JobConfig::default().with_codec(Arc::new(DeflateCodec::new())),
            &refs,
        );
        assert_eq!(collect_counts(&plain), collect_counts(&zipped));
        assert!(
            zipped.counters.get(Counter::MapOutputMaterializedBytes)
                < plain.counters.get(Counter::MapOutputMaterializedBytes)
        );
        assert_eq!(
            plain.counters.get(Counter::MapOutputBytes),
            zipped.counters.get(Counter::MapOutputBytes),
            "raw bytes must not depend on codec"
        );
    }

    #[test]
    fn combiner_shrinks_intermediate_records() {
        let words: Vec<String> = (0..300).map(|i| format!("w{}", i % 5)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let combiner = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                // Sum the 1-byte tallies into an 8-byte partial count.
                let total: u64 = values
                    .iter()
                    .map(|v| {
                        if v.len() == 1 {
                            v[0] as u64
                        } else {
                            u64::from_be_bytes((*v).try_into().unwrap())
                        }
                    })
                    .sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        let splits: Vec<InputSplit> = refs
            .chunks(100)
            .map(|chunk| {
                InputSplit::new(
                    chunk
                        .iter()
                        .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                        .collect(),
                )
            })
            .collect();
        let mapper = Arc::new(FnMapper(
            |k: &[u8], v: &[u8], out: &mut dyn crate::record::Emit| out.emit(k, v),
        ));
        let reducer = Arc::new(FnReducer(
            |k: &[u8], values: &[&[u8]], out: &mut dyn crate::record::Emit| {
                let total: u64 = values
                    .iter()
                    .map(|v| {
                        if v.len() == 1 {
                            v[0] as u64
                        } else {
                            u64::from_be_bytes((*v).try_into().unwrap())
                        }
                    })
                    .sum();
                out.emit(k, &total.to_be_bytes());
            },
        ));
        let result = Job::new(JobConfig::default().with_combiner(combiner))
            .run(splits, mapper, reducer)
            .unwrap();
        let counts = collect_counts(&result);
        assert_eq!(counts.values().sum::<u64>(), 300);
        // 3 splits × 5 distinct words = at most 15 records materialized.
        assert!(result.counters.get(Counter::CombineOutputRecords) <= 15);
        assert_eq!(result.counters.get(Counter::CombineInputRecords), 300);
    }

    #[test]
    fn many_slots_agree_with_one_slot() {
        let words: Vec<String> = (0..200).map(|i| format!("k{}", i % 17)).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let serial = count_job(JobConfig::default().with_slots(1, 1), &refs);
        let parallel = count_job(
            JobConfig::default().with_slots(8, 4).with_reducers(4),
            &refs,
        );
        assert_eq!(collect_counts(&serial), collect_counts(&parallel));
    }

    #[test]
    fn small_spill_buffer_forces_multiple_spills() {
        let words: Vec<String> = (0..100).map(|i| format!("key-{i:03}")).collect();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let result = count_job(JobConfig::default().with_spill_buffer(64), &refs);
        assert!(result.counters.get(Counter::Spills) > 1);
        assert_eq!(collect_counts(&result).len(), 100);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let result = count_job(JobConfig::default(), &[]);
        assert!(result.all_outputs().is_empty());
        assert_eq!(result.counters.get(Counter::MapInputRecords), 0);
    }

    #[test]
    fn stats_reflect_counters() {
        let words = ["x", "y", "x"];
        let result = count_job(JobConfig::default(), &words);
        assert_eq!(
            result.stats.map_output_materialized_bytes,
            result.counters.get(Counter::MapOutputMaterializedBytes)
        );
        assert!(result.stats.map_wall_nanos > 0);
        assert_eq!(result.stats.num_maps, 1);
    }
}

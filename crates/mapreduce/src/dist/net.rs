//! Socket transports for the distributed runtime: loopback TCP and
//! Unix-domain sockets behind one listener/stream pair, so the rest of
//! the module is transport-agnostic.

use crate::error::MrError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which socket family the shuffle service speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Loopback TCP (`127.0.0.1`, ephemeral port).
    Tcp,
    /// Unix-domain socket in the system temp directory.
    #[default]
    Uds,
}

impl Transport {
    /// Parse a CLI-style name (`tcp` / `uds`).
    pub fn parse(s: &str) -> Result<Transport, MrError> {
        match s {
            "tcp" => Ok(Transport::Tcp),
            "uds" | "unix" => Ok(Transport::Uds),
            other => Err(MrError::Config(format!(
                "unknown transport {other:?} (expected tcp or uds)"
            ))),
        }
    }

    /// Stable CLI/env name.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Uds => "uds",
        }
    }
}

/// Distinguishes concurrently bound listeners within one process (the
/// pid alone is not enough: one test binary runs many coordinators).
static LISTENER_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bound shuffle-service endpoint. Dropping a UDS listener removes
/// its socket file.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn bind(transport: Transport) -> Result<Listener, MrError> {
        match transport {
            Transport::Tcp => {
                let l = TcpListener::bind(("127.0.0.1", 0))
                    .map_err(|e| MrError::Net(format!("bind tcp listener: {e}")))?;
                Ok(Listener::Tcp(l))
            }
            #[cfg(unix)]
            Transport::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "scihadoop-shuffle-{}-{}.sock",
                    std::process::id(),
                    LISTENER_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)
                    .map_err(|e| MrError::Net(format!("bind uds listener {path:?}: {e}")))?;
                Ok(Listener::Uds(l, path))
            }
            #[cfg(not(unix))]
            Transport::Uds => Err(MrError::Config(
                "unix-domain sockets are not available on this platform".into(),
            )),
        }
    }

    /// The address workers must connect to (host:port, or a socket
    /// path).
    pub(crate) fn addr(&self) -> Result<String, MrError> {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .map_err(|e| MrError::Net(format!("listener local_addr: {e}"))),
            #[cfg(unix)]
            Listener::Uds(_, path) => Ok(path.to_string_lossy().into_owned()),
        }
    }

    /// Accept one worker connection without burning CPU on an idle
    /// listener: a scoped helper thread sits in a *blocking* `accept`
    /// while this thread parks on a channel, waking every 50 ms to
    /// check worker liveness (`alive`) and the deadline. On failure the
    /// helper — possibly still blocked in `accept` — is released by a
    /// self-connection to the listener's own address, which it discards
    /// once it sees the stop flag.
    pub(crate) fn accept_deadline(
        &self,
        deadline: Duration,
        alive: &mut dyn FnMut() -> bool,
    ) -> Result<Stream, MrError> {
        self.set_nonblocking(false)?;
        let stop_flag = AtomicBool::new(false);
        let stop = &stop_flag;
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let result = self.accept_blocking();
                if !stop.load(Ordering::SeqCst) {
                    let _ = tx.send(result);
                }
            });
            let t0 = Instant::now();
            loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(result) => return result,
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(MrError::Net("shuffle accept thread exited".into()))
                    }
                }
                let failure = if !alive() {
                    Some(MrError::Net(
                        "a worker process exited before connecting to the shuffle service".into(),
                    ))
                } else if t0.elapsed() > deadline {
                    Some(MrError::Net(format!(
                        "no worker connected within {deadline:?}"
                    )))
                } else {
                    None
                };
                if let Some(err) = failure {
                    // A worker may have slipped in while we decided.
                    if let Ok(result) = rx.try_recv() {
                        return result;
                    }
                    stop.store(true, Ordering::SeqCst);
                    if let Ok(addr) = self.addr() {
                        let _ = Stream::connect_retry(
                            self.transport(),
                            &addr,
                            Duration::from_millis(200),
                        );
                    }
                    return Err(err);
                }
            }
        })
    }

    /// Block until one connection arrives. `WouldBlock` from a spurious
    /// wakeup (possible on Linux even for blocking listeners) retries.
    fn accept_blocking(&self) -> Result<Stream, MrError> {
        loop {
            match self.try_accept() {
                Ok(Some(stream)) => return Ok(stream),
                Ok(None) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn transport(&self) -> Transport {
        match self {
            Listener::Tcp(_) => Transport::Tcp,
            #[cfg(unix)]
            Listener::Uds(..) => Transport::Uds,
        }
    }

    fn try_accept(&self) -> Result<Option<Stream>, MrError> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    s.set_nonblocking(false)
                        .map_err(|e| MrError::Net(format!("accepted stream blocking: {e}")))?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(MrError::Net(format!("accept: {e}"))),
            },
            #[cfg(unix)]
            Listener::Uds(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)
                        .map_err(|e| MrError::Net(format!("accepted stream blocking: {e}")))?;
                    Ok(Some(Stream::Uds(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(MrError::Net(format!("accept: {e}"))),
            },
        }
    }

    fn set_nonblocking(&self, nb: bool) -> Result<(), MrError> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Uds(l, _) => l.set_nonblocking(nb),
        }
        .map_err(|e| MrError::Net(format!("listener nonblocking({nb}): {e}")))
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One connected socket, either family.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    /// Connect to the coordinator, retrying briefly — the worker
    /// process may win the race against the coordinator's accept loop
    /// setup, but the listener itself is bound before any worker is
    /// spawned, so retries only paper over transient `ECONNREFUSED`
    /// under load.
    pub(crate) fn connect_retry(
        transport: Transport,
        addr: &str,
        deadline: Duration,
    ) -> Result<Stream, MrError> {
        let t0 = Instant::now();
        loop {
            let attempt = match transport {
                Transport::Tcp => TcpStream::connect(addr).map(|s| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
                #[cfg(unix)]
                Transport::Uds => UnixStream::connect(addr).map(Stream::Uds),
                #[cfg(not(unix))]
                Transport::Uds => {
                    return Err(MrError::Config(
                        "unix-domain sockets are not available on this platform".into(),
                    ))
                }
            };
            match attempt {
                Ok(stream) => return Ok(stream),
                Err(e) if t0.elapsed() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    return Err(MrError::Net(format!(
                        "connect {} {addr}: {e}",
                        transport.name()
                    )))
                }
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_names_roundtrip() {
        assert_eq!(Transport::parse("tcp").unwrap(), Transport::Tcp);
        assert_eq!(Transport::parse("uds").unwrap(), Transport::Uds);
        assert_eq!(Transport::parse("unix").unwrap(), Transport::Uds);
        assert!(Transport::parse("carrier-pigeon").is_err());
        assert_eq!(
            Transport::parse(Transport::Tcp.name()).unwrap(),
            Transport::Tcp
        );
    }

    #[test]
    fn tcp_listener_accepts_a_connection() {
        let listener = Listener::bind(Transport::Tcp).unwrap();
        let addr = listener.addr().unwrap();
        let join = std::thread::spawn(move || {
            Stream::connect_retry(Transport::Tcp, &addr, Duration::from_secs(5)).unwrap()
        });
        let mut accepted = listener
            .accept_deadline(Duration::from_secs(5), &mut || true)
            .unwrap();
        let mut client = join.join().unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[cfg(unix)]
    #[test]
    fn uds_listener_accepts_and_cleans_up() {
        let listener = Listener::bind(Transport::Uds).unwrap();
        let addr = listener.addr().unwrap();
        assert!(std::path::Path::new(&addr).exists());
        let addr2 = addr.clone();
        let join = std::thread::spawn(move || {
            Stream::connect_retry(Transport::Uds, &addr2, Duration::from_secs(5)).unwrap()
        });
        let mut accepted = listener
            .accept_deadline(Duration::from_secs(5), &mut || true)
            .unwrap();
        let mut client = join.join().unwrap();
        client.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        drop(listener);
        assert!(
            !std::path::Path::new(&addr).exists(),
            "socket file removed on drop"
        );
    }

    #[test]
    fn accept_deadline_times_out_idle() {
        let listener = Listener::bind(Transport::Tcp).unwrap();
        let t0 = Instant::now();
        let err = listener
            .accept_deadline(Duration::from_millis(120), &mut || true)
            .unwrap_err();
        assert!(
            err.to_string().contains("no worker connected within"),
            "{err}"
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn accept_deadline_accepts_a_late_connection() {
        // The connection lands well after the wait starts, so the
        // helper thread is parked in a blocking accept when it arrives.
        let listener = Listener::bind(Transport::Tcp).unwrap();
        let addr = listener.addr().unwrap();
        let join = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            Stream::connect_retry(Transport::Tcp, &addr, Duration::from_secs(5)).unwrap()
        });
        let mut accepted = listener
            .accept_deadline(Duration::from_secs(5), &mut || true)
            .unwrap();
        let mut client = join.join().unwrap();
        client.write_all(b"late").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"late");
    }

    #[test]
    fn accept_deadline_notices_dead_workers() {
        let listener = Listener::bind(Transport::Tcp).unwrap();
        let err = listener
            .accept_deadline(Duration::from_secs(5), &mut || false)
            .unwrap_err();
        assert!(
            err.to_string().contains("exited before connecting"),
            "{err}"
        );
    }
}

//! The coordinator: schedules map/reduce tasks onto connected workers,
//! runs the shuffle service, merges per-attempt counter banks, and
//! assembles the final [`JobResult`]. One thread per worker connection;
//! shared state is the same [`WorkQueue`] retry machinery the local
//! thread pool uses, so task re-execution across processes follows the
//! job's retry budget and deterministic backoff.

use super::net::{Listener, Stream};
use super::shuffle::{SegmentRepr, ShuffleStore, SpilledHandle};
use super::wire::{
    encode_seg_chunk, expect_credit, read_msg_capped, write_msg_capped, Msg, CAP_LZ,
};
use super::DistConfig;
use crate::counters::{Counter, Counters};
use crate::error::MrError;
use crate::job::{JobConfig, JobResult};
use crate::obs::{self, Metric, Phase};
use crate::record::{InputSplit, KvPair, Mapper, Reducer};
use crate::runner::WorkQueue;
use crate::stats::JobStats;
use parking_lot::Mutex;
use scihadoop_compress::checksum::Crc32c;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run a distributed job on freshly spawned worker *processes*: the
/// current executable is re-executed with `dist.worker_args` and the
/// `SCIHADOOP_DIST_*` environment, and must route itself into a
/// bootstrap that parses `dist.job_payload` and calls
/// [`run_worker`](super::run_worker).
pub fn run_distributed(
    config: &JobConfig,
    dist: &DistConfig,
    splits: Vec<InputSplit>,
) -> Result<JobResult, MrError> {
    if dist.job_payload.is_empty() {
        return Err(MrError::Config(
            "dist.job_payload must describe the job for spawned worker processes".into(),
        ));
    }
    run_coordinator(config, dist, splits, Launch::Processes)
}

/// Run the same coordinator against in-process worker *threads*
/// connected over real sockets: the full wire protocol — framing,
/// credits, streaming, retries — without process spawning. This is the
/// hermetic test path; it shares every line of coordinator and worker
/// code with the process path except the launcher.
pub fn run_distributed_with_threads(
    config: &JobConfig,
    dist: &DistConfig,
    splits: Vec<InputSplit>,
    mapper: Arc<dyn Mapper>,
    reducer: Arc<dyn Reducer>,
) -> Result<JobResult, MrError> {
    run_coordinator(config, dist, splits, Launch::Threads { mapper, reducer })
}

enum Launch {
    Processes,
    Threads {
        mapper: Arc<dyn Mapper>,
        reducer: Arc<dyn Reducer>,
    },
}

enum Handles {
    Processes(Vec<std::process::Child>),
    Threads(Vec<std::thread::JoinHandle<Result<(), MrError>>>),
}

impl Handles {
    /// Whether any worker has already exited — a worker that dies before
    /// connecting would otherwise stall the accept loop to its deadline.
    fn any_dead(&mut self) -> bool {
        match self {
            Handles::Processes(children) => children
                .iter_mut()
                .any(|c| matches!(c.try_wait(), Ok(Some(_)))),
            Handles::Threads(joins) => joins.iter().any(|j| j.is_finished()),
        }
    }

    /// Collect every worker. On a failed job, processes are killed
    /// outright; on success they received `Shutdown` and get a grace
    /// period to exit before being killed as stragglers.
    fn reap(self, failed: bool) {
        match self {
            Handles::Processes(mut children) => {
                if failed {
                    for c in &mut children {
                        let _ = c.kill();
                    }
                }
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    let pending = children
                        .iter_mut()
                        .any(|c| matches!(c.try_wait(), Ok(None)));
                    if !pending {
                        break;
                    }
                    if Instant::now() >= deadline {
                        for c in &mut children {
                            let _ = c.kill();
                        }
                        for c in &mut children {
                            let _ = c.wait();
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Handles::Threads(joins) => {
                // Worker errors after an abort are expected (their
                // sockets died with the job); the job error, if any, is
                // already collected.
                for j in joins {
                    let _ = j.join();
                }
            }
        }
    }
}

fn spawn_worker_processes(
    dist: &DistConfig,
    addr: &str,
) -> Result<Vec<std::process::Child>, MrError> {
    let exe = std::env::current_exe()
        .map_err(|e| MrError::Config(format!("cannot locate current executable: {e}")))?;
    let mut children: Vec<std::process::Child> = Vec::with_capacity(dist.workers);
    for worker in 0..dist.workers {
        let spawned = std::process::Command::new(&exe)
            .args(&dist.worker_args)
            .env(super::ENV_ADDR, addr)
            .env(super::ENV_TRANSPORT, dist.transport.name())
            .env(super::ENV_WORKER, worker.to_string())
            .env(super::ENV_JOB, &dist.job_payload)
            .stdin(std::process::Stdio::null())
            // Worker stdout is libtest/CLI chatter; stderr stays visible
            // so a worker panic is diagnosable from the coordinator run.
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn();
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(MrError::Net(format!("spawn worker {worker}: {e}")));
            }
        }
    }
    Ok(children)
}

/// Everything the connection-serving threads share.
struct Shared<'a> {
    config: &'a JobConfig,
    dist: &'a DistConfig,
    splits: &'a [InputSplit],
    num_maps: usize,
    map_queue: WorkQueue<usize>,
    reduce_queue: WorkQueue<usize>,
    store: ShuffleStore,
    counters: Counters,
    errors: Mutex<Vec<MrError>>,
    outputs: Vec<Mutex<Vec<KvPair>>>,
    /// Connections still being served; a death here changes scheduling.
    live: AtomicUsize,
    /// Workers currently running a reduce handed out before the map
    /// phase drained (pipelined fetch-while-map). Bounded to `live - 1`
    /// so at least one worker always remains available for maps.
    early_reduces: Mutex<usize>,
    map_t0: Instant,
    maps_drained_at: Mutex<Option<Instant>>,
    reduce_t0: Mutex<Option<Instant>>,
}

impl Shared<'_> {
    fn abort_all(&self) {
        self.map_queue.abort();
        self.reduce_queue.abort();
        self.store.abort();
    }

    fn note_maps_drained(&self) {
        if self.map_queue.is_drained() {
            let mut at = self.maps_drained_at.lock();
            if at.is_none() {
                *at = Some(Instant::now());
            }
        }
    }
}

fn run_coordinator(
    config: &JobConfig,
    dist: &DistConfig,
    splits: Vec<InputSplit>,
    launch: Launch,
) -> Result<JobResult, MrError> {
    config.validate()?;
    dist.validate()?;
    let num_maps = splits.len();
    let input_bytes: u64 = splits.iter().map(|s| s.bytes()).sum();

    let listener = Listener::bind(dist.transport)?;
    let addr = listener.addr()?;

    let mut handles = match launch {
        Launch::Processes => Handles::Processes(spawn_worker_processes(dist, &addr)?),
        Launch::Threads { mapper, reducer } => {
            let mut joins = Vec::with_capacity(dist.workers);
            for worker in 0..dist.workers {
                let config = config.clone();
                let addr = addr.clone();
                let transport = dist.transport;
                let mapper = Arc::clone(&mapper);
                let reducer = Arc::clone(&reducer);
                joins.push(std::thread::spawn(move || {
                    super::run_worker(
                        transport,
                        &addr,
                        worker as u32,
                        &config,
                        mapper.as_ref(),
                        reducer.as_ref(),
                    )
                }));
            }
            Handles::Threads(joins)
        }
    };

    // All workers connect before the job clock starts.
    let mut conns = Vec::with_capacity(dist.workers);
    for _ in 0..dist.workers {
        match listener.accept_deadline(dist.spawn_timeout, &mut || !handles.any_dead()) {
            Ok(stream) => conns.push(stream),
            Err(e) => {
                handles.reap(true);
                return Err(e);
            }
        }
    }

    let shared = Shared {
        config,
        dist,
        splits: &splits,
        num_maps,
        map_queue: WorkQueue::new((0..num_maps).collect()),
        reduce_queue: WorkQueue::new((0..config.num_reducers).collect()),
        store: ShuffleStore::new_with_codec(
            config.num_reducers,
            num_maps,
            dist.shuffle_mem_budget(),
            dist.wire_codec,
        ),
        counters: Counters::new(),
        errors: Mutex::new(Vec::new()),
        outputs: (0..config.num_reducers)
            .map(|_| Mutex::new(Vec::new()))
            .collect(),
        live: AtomicUsize::new(dist.workers),
        early_reduces: Mutex::new(0),
        map_t0: Instant::now(),
        maps_drained_at: Mutex::new(None),
        reduce_t0: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        for stream in conns {
            let shared = &shared;
            scope.spawn(move || {
                let result = serve_connection(shared, stream);
                let live = shared.live.fetch_sub(1, Ordering::AcqRel) - 1;
                if result.is_err() {
                    // This worker died. Its in-flight task (if any) was
                    // already requeued; check the remaining workers can
                    // still make progress — every live one may be
                    // parked in an early reduce waiting on map outputs
                    // that now have no one to produce them.
                    let early = *shared.early_reduces.lock();
                    let work_left =
                        !shared.map_queue.is_drained() || !shared.reduce_queue.is_drained();
                    let maps_stuck = !shared.map_queue.is_drained() && early >= live;
                    if work_left && (live == 0 || maps_stuck) {
                        let mut errors = shared.errors.lock();
                        if errors.is_empty() {
                            errors.push(MrError::Net(format!(
                                "{live} live workers remain, which cannot finish the job"
                            )));
                        }
                        drop(errors);
                        shared.abort_all();
                    }
                }
            });
        }
    });

    let mut collected = std::mem::take(&mut *shared.errors.lock());
    if collected.is_empty() && (!shared.map_queue.is_drained() || !shared.reduce_queue.is_drained())
    {
        collected.push(MrError::Net(
            "all workers exited before the job completed".into(),
        ));
    }
    handles.reap(!collected.is_empty());
    if !collected.is_empty() {
        return Err(MrError::from_task_errors(collected));
    }

    let map_wall_nanos = shared
        .maps_drained_at
        .lock()
        .unwrap_or(shared.map_t0)
        .duration_since(shared.map_t0)
        .as_nanos() as u64;
    let reduce_wall_nanos = shared
        .reduce_t0
        .lock()
        .map(|t0| t0.elapsed().as_nanos() as u64)
        .unwrap_or(0);

    shared
        .counters
        .add(Counter::ShuffleBytes, shared.store.total_bytes());
    shared
        .counters
        .add(Counter::ShuffleSpilledBytes, shared.store.spilled_bytes());
    shared
        .counters
        .add(Counter::ShuffleSpillReads, shared.store.spill_reads());
    // Max-semantics charged once at job end, so the additive bank holds
    // the true high-water mark.
    shared
        .counters
        .add(Counter::ShuffleMemHighWater, shared.store.mem_high_water());
    shared.counters.add(
        Counter::ShuffleSpillDeadBytes,
        shared.store.spill_dead_bytes(),
    );
    shared
        .counters
        .add(Counter::LzCompressNanos, shared.store.compress_nanos());
    let outputs: Vec<Vec<KvPair>> = shared.outputs.iter().map(|m| m.lock().clone()).collect();
    let snapshot = shared.counters.snapshot();
    #[cfg(debug_assertions)]
    if let Err(violations) = snapshot.check_invariants(config.framing.file_overhead() as u64) {
        panic!("counter invariants violated on distributed job completion: {violations:#?}");
    }
    let stats = JobStats::from_counters(
        &snapshot,
        num_maps,
        config.num_reducers,
        input_bytes,
        map_wall_nanos,
        reduce_wall_nanos,
    );
    let result = JobResult {
        outputs,
        counters: snapshot,
        stats,
    };
    if let Some(sink) = &config.ledger {
        let record = obs::LedgerRecord::from_run(&config.ledger_label, config, &result, None);
        sink.append(record)
            .map_err(|e| MrError::Config(format!("ledger append failed: {e}")))?;
    }
    Ok(result)
}

enum Assignment {
    Map(usize, u32),
    Reduce {
        task: usize,
        attempt: u32,
        early: bool,
    },
    Shutdown,
}

/// Pick the next task for an idle worker. Maps strictly first; a reduce
/// is handed out before the map phase drains only while at least one
/// *other* live worker stays free for maps (the early-reduce reserve),
/// which is what overlaps reduce-side fetch with the tail of the map
/// phase without starving it.
fn next_assignment(shared: &Shared) -> Assignment {
    loop {
        if shared.map_queue.is_aborted() || shared.reduce_queue.is_aborted() {
            return Assignment::Shutdown;
        }
        if let Some((task, attempt)) = shared.map_queue.try_claim() {
            return Assignment::Map(task, attempt);
        }
        if shared.map_queue.is_drained() {
            shared.note_maps_drained();
            if let Some((task, attempt)) = shared.reduce_queue.try_claim() {
                return Assignment::Reduce {
                    task,
                    attempt,
                    early: false,
                };
            }
            if shared.reduce_queue.is_drained() {
                return Assignment::Shutdown;
            }
        } else {
            let live = shared.live.load(Ordering::Acquire);
            let mut early = shared.early_reduces.lock();
            if live > *early + 1 {
                if let Some((task, attempt)) = shared.reduce_queue.try_claim() {
                    *early += 1;
                    return Assignment::Reduce {
                        task,
                        attempt,
                        early: true,
                    };
                }
            }
            drop(early);
        }
        // Tasks are in flight on other workers and may yet be requeued;
        // poll until one comes back or the phase drains.
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Serve one worker connection until shutdown. An `Err` means the
/// connection (or the worker behind it) failed; any task it was running
/// has already been routed through the retry budget.
fn serve_connection(shared: &Shared, mut stream: Stream) -> Result<(), MrError> {
    let cap = shared.dist.max_frame_bytes;
    let (worker, wire_caps) = match read_msg_capped(&mut stream, cap)? {
        Msg::Hello { worker, wire_caps } => (worker, wire_caps),
        other => {
            return Err(MrError::Net(format!(
                "expected Hello, got {}",
                other.name()
            )))
        }
    };
    // A worker that never advertised lz capability is served raw
    // (logical) bytes even when the store holds compressed frames, so
    // capability skew degrades throughput, not correctness.
    let lz_ok = wire_caps & CAP_LZ != 0;
    let _att = shared
        .config
        .recorder
        .as_ref()
        .map(|r| r.attach(&format!("dist-conn-{worker}")));
    loop {
        match read_msg_capped(&mut stream, cap)? {
            Msg::TaskRequest => {}
            other => {
                return Err(MrError::Net(format!(
                    "worker {worker}: expected TaskRequest, got {}",
                    other.name()
                )))
            }
        }
        match next_assignment(shared) {
            Assignment::Shutdown => {
                write_msg_capped(&mut stream, &Msg::Shutdown, cap)?;
                return Ok(());
            }
            Assignment::Map(task, attempt) => {
                if let Err(e) = serve_map(shared, &mut stream, task, attempt) {
                    fail_task(
                        shared,
                        false,
                        task,
                        attempt,
                        MrError::Net(format!(
                            "worker {worker} lost during map {task} attempt {attempt}: {e}"
                        )),
                    );
                    return Err(e);
                }
            }
            Assignment::Reduce {
                task,
                attempt,
                early,
            } => {
                let served = serve_reduce(shared, &mut stream, task, attempt, lz_ok);
                if early {
                    *shared.early_reduces.lock() -= 1;
                }
                match served {
                    Ok(false) => {}
                    Ok(true) => return Ok(()), // job aborted; worker released
                    Err(e) => {
                        fail_task(
                            shared,
                            true,
                            task,
                            attempt,
                            MrError::Net(format!(
                                "worker {worker} lost during reduce {task} attempt {attempt}: {e}"
                            )),
                        );
                        return Err(e);
                    }
                }
            }
        }
    }
}

/// Rebuild a worker-reported failure as a structured error. Only the
/// checksum distinction survives the wire (it drives the corruption
/// counters and nothing else branches on the variant); the display
/// string carries the rest.
fn rebuild_error(checksum: bool, error: String) -> MrError {
    if checksum {
        MrError::Checksum(error)
    } else {
        MrError::TaskFailed(error)
    }
}

/// Mirror of the local runner's failure handling: count detected
/// corruption, then either backoff-and-requeue within the retry budget
/// or collect the error and abort the job.
fn fail_task(shared: &Shared, reduce: bool, task: usize, attempt: u32, err: MrError) {
    let queue = if reduce {
        &shared.reduce_queue
    } else {
        &shared.map_queue
    };
    if err.is_checksum() {
        shared.counters.add(Counter::ChecksumFailures, 1);
    }
    if attempt < shared.config.task_retries {
        shared.counters.add(Counter::TaskRetries, 1);
        let backoff = shared
            .config
            .retry_backoff
            .saturating_mul(1u32 << attempt.min(20));
        {
            let _retry_span = crate::span!(Phase::Retry, task);
            obs::hist(Metric::RetryBackoffNanos, backoff.as_nanos() as u64);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        queue.requeue(task, attempt + 1);
    } else {
        shared.errors.lock().push(err);
        shared.abort_all();
        queue.finish();
    }
}

/// Run one map assignment to completion: send the task, credit each
/// received segment, and commit the attempt's outputs to the shuffle
/// store on `MapDone` (staged segments from a failed attempt are
/// dropped, never published).
fn serve_map(
    shared: &Shared,
    stream: &mut Stream,
    task: usize,
    attempt: u32,
) -> Result<(), MrError> {
    let cap = shared.dist.max_frame_bytes;
    write_msg_capped(
        stream,
        &Msg::MapTask {
            task: task as u32,
            attempt,
            credits: shared.dist.push_credits,
            split: shared.splits[task].clone(),
        },
        cap,
    )?;
    let mut staged: Vec<(usize, Vec<u8>)> = Vec::new();
    loop {
        match read_msg_capped(stream, cap)? {
            Msg::MapSegment { partition, data } => {
                let partition = partition as usize;
                if partition >= shared.config.num_reducers {
                    return Err(MrError::Net(format!(
                        "map {task}: segment for partition {partition} out of range"
                    )));
                }
                staged.push((partition, data));
                write_msg_capped(stream, &Msg::Credit, cap)?;
            }
            Msg::MapDone {
                task: t,
                attempt: a,
                local,
                harness,
            } => {
                if (t as usize, a) != (task, attempt) {
                    return Err(MrError::Net(format!(
                        "MapDone for task {t} attempt {a}, expected {task}/{attempt}"
                    )));
                }
                shared.counters.absorb(&harness);
                shared.counters.absorb(&local);
                shared.store.publish(task, staged)?;
                shared.map_queue.finish();
                shared.note_maps_drained();
                return Ok(());
            }
            Msg::TaskFailed {
                task: t,
                attempt: a,
                reduce,
                checksum,
                error,
                harness,
            } => {
                if (t as usize, a, reduce) != (task, attempt, false) {
                    return Err(MrError::Net(format!(
                        "TaskFailed for {}-task {t} attempt {a}, expected map {task}/{attempt}",
                        if reduce { "reduce" } else { "map" }
                    )));
                }
                shared.counters.absorb(&harness);
                fail_task(shared, false, task, attempt, rebuild_error(checksum, error));
                return Ok(());
            }
            other => {
                return Err(MrError::Net(format!(
                    "map {task}: unexpected {}",
                    other.name()
                )))
            }
        }
    }
}

/// Where one segment's chunk payloads come from: a resident byte slice
/// (in-memory segment, or a corrupted copy) or a spilled segment read
/// straight from its spill file into the outgoing frame.
enum ChunkSource<'a> {
    Slice(&'a [u8]),
    Spilled(&'a SpilledHandle),
}

impl ChunkSource<'_> {
    fn len(&self) -> usize {
        match self {
            ChunkSource::Slice(data) => data.len(),
            ChunkSource::Spilled(h) => h.len(),
        }
    }
}

/// Run one reduce assignment: stream the partition's segments (in
/// canonical map-task order, blocking per segment until its producer
/// finishes — the fetch-while-map overlap) under the worker's credit
/// window, then collect the result. Wire corruption from the fault plan
/// is applied here, to the transmitted copy, at the same
/// `(task, attempt, index)` coordinates the local path uses.
///
/// Compressed segments stream their stored lz frames (`comp` set,
/// spilled ones still `pread` zero-copy into the wire frame) to workers
/// that advertised [`CAP_LZ`]; the difference between logical and
/// transmitted length is charged to `ShuffleWireBytesSaved` at serve
/// time, so re-fetches by retried attempts count again — true wire
/// semantics. Corrupted segments are always materialized to *logical*
/// bytes first and sent raw: the fault plan's coordinates address
/// logical segment bytes, which is what keeps a compressed run
/// byte-identical to identity under a fault storm.
///
/// Returns `Ok(true)` if the job aborted mid-stream and the worker was
/// released with `Shutdown`.
fn serve_reduce(
    shared: &Shared,
    stream: &mut Stream,
    task: usize,
    attempt: u32,
    lz_ok: bool,
) -> Result<bool, MrError> {
    {
        let mut t0 = shared.reduce_t0.lock();
        if t0.is_none() {
            *t0 = Some(Instant::now());
        }
    }
    let cap = shared.dist.max_frame_bytes;
    write_msg_capped(
        stream,
        &Msg::ReduceTask {
            task: task as u32,
            attempt,
        },
        cap,
    )?;
    let window = match read_msg_capped(stream, cap)? {
        Msg::FetchStart { credits } => {
            if credits == 0 {
                return Err(MrError::Net(format!(
                    "reduce {task}: zero-credit fetch window"
                )));
            }
            credits
        }
        Msg::TaskFailed {
            task: t,
            attempt: a,
            reduce,
            checksum,
            error,
            harness,
        } => {
            // The worker's fault gate fired before any fetch — exactly
            // like the local path, where `fault_gate` precedes the
            // segment take, so no shuffle traffic and no corruption
            // charges for this attempt.
            if (t as usize, a, reduce) != (task, attempt, true) {
                return Err(MrError::Net(format!(
                    "TaskFailed for task {t} attempt {a}, expected reduce {task}/{attempt}"
                )));
            }
            shared.counters.absorb(&harness);
            fail_task(shared, true, task, attempt, rebuild_error(checksum, error));
            return Ok(false);
        }
        other => {
            return Err(MrError::Net(format!(
                "reduce {task}: expected FetchStart, got {}",
                other.name()
            )))
        }
    };

    let mut credits = window;
    let mut index: u64 = 0;
    let mut wait_nanos = 0u64;
    let mut transfer_nanos = 0u64;
    let mut wire_saved = 0u64;
    let chunk_bytes = shared.dist.chunk_bytes;
    {
        // Mark this partition actively fetched for the duration of the
        // segment stream: the store's eviction policy keeps its
        // resident segments in memory while we are about to need them.
        let _fetch = shared.store.fetch_guard(task);
        // Double-buffered frames: the next chunk is assembled — for
        // spilled segments, `pread` straight into the frame's payload
        // region — right after the previous one is written, so the disk
        // read overlaps the in-flight chunk's socket round trip instead
        // of serializing behind the credit wait.
        let mut frames: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
        let mut cur = 0usize;
        for map_task in 0..shared.num_maps {
            let wait_t0 = Instant::now();
            let handle = match shared.store.segment_when_ready(task, map_task) {
                Ok(handle) => handle,
                Err(_) => {
                    // Job aborted while waiting on a map output: release
                    // the worker cleanly; the abort's cause is already
                    // collected elsewhere.
                    write_msg_capped(stream, &Msg::Shutdown, cap)?;
                    shared.reduce_queue.finish();
                    return Ok(true);
                }
            };
            wait_nanos += wait_t0.elapsed().as_nanos() as u64;
            let Some(handle) = handle else { continue };
            // Two cases rebuffer through a materialized Vec; the clean
            // capable path never does:
            //  - Wire corruption needs the whole *logical* segment (the
            //    fault plan's coordinates address uncompressed bytes —
            //    the same bytes the local engine corrupts — and a flip
            //    inside an lz frame would desync decompression instead
            //    of reaching the segment CRC check). Corrupted copies
            //    ship raw.
            //  - A worker without lz capability gets logical bytes even
            //    when the store holds a compressed frame.
            let materialized: Option<Vec<u8>> = match shared
                .config
                .faults
                .as_ref()
                .and_then(|p| p.corruption(task as u64, attempt, index))
            {
                Some(c) => {
                    shared.counters.add(Counter::FaultsInjected, 1);
                    let mut data = handle.logical_vec()?;
                    c.apply(&mut data);
                    Some(data)
                }
                None if handle.is_comp() && !lz_ok => Some(handle.logical_vec()?),
                None => None,
            };
            let comp = materialized.is_none() && handle.is_comp();
            let orig_len = if comp { handle.logical_len() as u32 } else { 0 };
            let src: ChunkSource = match (&materialized, &handle.repr) {
                (Some(data), _) => ChunkSource::Slice(data),
                (None, SegmentRepr::Mem(data)) => ChunkSource::Slice(data),
                (None, SegmentRepr::Spilled(h)) => ChunkSource::Spilled(h),
            };
            let total = src.len();
            if comp {
                wire_saved += (handle.logical_len() - total) as u64;
            }
            let mut crc = Crc32c::new();
            let mut off = 0usize;
            let mut sent_any = false;
            while off < total || !sent_any {
                let end = (off + chunk_bytes).min(total);
                let last = end == total;
                let frame = &mut frames[cur];
                match &src {
                    ChunkSource::Slice(data) => encode_seg_chunk(
                        frame,
                        index as u32,
                        last,
                        comp,
                        orig_len,
                        end - off,
                        cap,
                        |buf| {
                            buf.copy_from_slice(&data[off..end]);
                            Ok(())
                        },
                    )?,
                    ChunkSource::Spilled(h) => {
                        encode_seg_chunk(
                            frame,
                            index as u32,
                            last,
                            comp,
                            orig_len,
                            end - off,
                            cap,
                            |buf| h.read_range(off, buf),
                        )?;
                        // Re-verify the spill-time CRC incrementally;
                        // the final chunk is checked *before* it is
                        // sent, so disk corruption never reaches a
                        // worker.
                        crc.update(&frame[frame.len() - (end - off)..]);
                        if last {
                            let got = crc.finish();
                            if got != h.crc() {
                                return Err(h.crc_error(got));
                            }
                        }
                    }
                }
                if credits == 0 {
                    expect_credit(stream)?;
                    credits += 1;
                }
                let send_t0 = Instant::now();
                stream
                    .write_all(&frames[cur])
                    .map_err(|e| MrError::Net(format!("write SegChunk: {e}")))?;
                transfer_nanos += send_t0.elapsed().as_nanos() as u64;
                credits -= 1;
                sent_any = true;
                off = end;
                cur ^= 1;
            }
            index += 1;
        }
    }
    // Drain the credit window before closing the stream so no Credit
    // frame is left in flight to be misread as the next conversation.
    while credits < window {
        expect_credit(stream)?;
        credits += 1;
    }
    write_msg_capped(
        stream,
        &Msg::SegmentsDone {
            count: index as u32,
        },
        cap,
    )?;
    shared
        .counters
        .add(Counter::ShuffleFetchWaitNanos, wait_nanos);
    shared
        .counters
        .add(Counter::ShuffleTransferNanos, transfer_nanos);
    shared
        .counters
        .add(Counter::ShuffleWireBytesSaved, wire_saved);

    match read_msg_capped(stream, cap)? {
        Msg::ReduceDone {
            task: t,
            attempt: a,
            local,
            harness,
            outputs,
        } => {
            if (t as usize, a) != (task, attempt) {
                return Err(MrError::Net(format!(
                    "ReduceDone for task {t} attempt {a}, expected {task}/{attempt}"
                )));
            }
            shared.counters.absorb(&harness);
            shared.counters.absorb(&local);
            *shared.outputs[task].lock() = outputs;
            shared.reduce_queue.finish();
            Ok(false)
        }
        Msg::TaskFailed {
            task: t,
            attempt: a,
            reduce,
            checksum,
            error,
            harness,
        } => {
            if (t as usize, a, reduce) != (task, attempt, true) {
                return Err(MrError::Net(format!(
                    "TaskFailed for task {t} attempt {a}, expected reduce {task}/{attempt}"
                )));
            }
            shared.counters.absorb(&harness);
            fail_task(shared, true, task, attempt, rebuild_error(checksum, error));
            Ok(false)
        }
        other => Err(MrError::Net(format!(
            "reduce {task}: expected ReduceDone or TaskFailed, got {}",
            other.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Transport;
    use crate::fault::{FaultConfig, FaultPlan};
    use crate::record::{Emit, FnMapper, FnReducer};
    use crate::Job;

    fn word_splits(num_splits: usize, records_per_split: usize) -> Vec<InputSplit> {
        (0..num_splits)
            .map(|s| {
                InputSplit::new(
                    (0..records_per_split)
                        .map(|i| {
                            let n = s * records_per_split + i;
                            KvPair::new(format!("word-{:03}", n % 97).into_bytes(), b"1".to_vec())
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn count_mapper() -> Arc<dyn Mapper> {
        Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(k, v);
        }))
    }

    fn sum_reducer() -> Arc<dyn Reducer> {
        Arc::new(FnReducer(
            |key: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
                let total: u64 = values
                    .iter()
                    .map(|v| std::str::from_utf8(v).unwrap().parse::<u64>().unwrap())
                    .sum();
                out.emit(key, total.to_string().as_bytes());
            },
        ))
    }

    fn assert_same_outputs(local: &JobResult, dist: &JobResult) {
        assert_eq!(local.outputs.len(), dist.outputs.len());
        for (r, (l, d)) in local.outputs.iter().zip(dist.outputs.iter()).enumerate() {
            assert_eq!(l, d, "reducer {r} outputs diverge");
        }
    }

    #[test]
    fn thread_mode_tcp_matches_the_local_engine() {
        let config = JobConfig::default().with_reducers(3).with_slots(4, 2);
        let splits = word_splits(6, 40);
        let local = Job::new(config.clone())
            .run(splits.clone(), count_mapper(), sum_reducer())
            .unwrap();
        let dist_cfg = DistConfig::default()
            .with_workers(3)
            .with_transport(Transport::Tcp);
        let dist =
            run_distributed_with_threads(&config, &dist_cfg, splits, count_mapper(), sum_reducer())
                .unwrap();
        assert_same_outputs(&local, &dist);
        assert_eq!(
            local.counters.get(Counter::MapOutputRecords),
            dist.counters.get(Counter::MapOutputRecords)
        );
        assert_eq!(
            local.counters.get(Counter::ReduceOutputRecords),
            dist.counters.get(Counter::ReduceOutputRecords)
        );
        assert_eq!(
            local.counters.get(Counter::ShuffleBytes),
            dist.counters.get(Counter::ShuffleBytes)
        );
    }

    #[cfg(unix)]
    #[test]
    fn thread_mode_uds_survives_a_fault_storm_byte_identically() {
        let faults =
            FaultConfig::parse("seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2")
                .unwrap();
        let config = JobConfig::default()
            .with_reducers(3)
            .with_slots(4, 2)
            .with_retries(4)
            .with_retry_backoff(Duration::from_micros(10))
            .with_faults(FaultPlan::new(faults));
        let splits = word_splits(5, 32);
        let local = Job::new(config.clone())
            .run(splits.clone(), count_mapper(), sum_reducer())
            .unwrap();
        let dist = run_distributed_with_threads(
            &config,
            &DistConfig::default().with_workers(3),
            splits,
            count_mapper(),
            sum_reducer(),
        )
        .unwrap();
        assert_same_outputs(&local, &dist);
        assert_eq!(
            local.counters.get(Counter::FaultsInjected),
            dist.counters.get(Counter::FaultsInjected),
            "fault plans must fire at identical coordinates"
        );
        assert_eq!(
            local.counters.get(Counter::ChecksumFailures),
            dist.counters.get(Counter::ChecksumFailures)
        );
        assert!(dist.counters.get(Counter::TaskRetries) > 0);
    }

    #[test]
    fn zero_budget_fault_storm_spills_everything_and_stays_byte_identical() {
        // Every segment is forced through the spill file, and the storm
        // (task faults + wire corruption + retries) exercises re-fetch
        // of already-spilled segments after mid-job attempt deaths.
        let faults =
            FaultConfig::parse("seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2")
                .unwrap();
        let config = JobConfig::default()
            .with_reducers(3)
            .with_slots(4, 2)
            .with_retries(4)
            .with_retry_backoff(Duration::from_micros(10))
            .with_faults(FaultPlan::new(faults));
        let splits = word_splits(5, 32);
        let local = Job::new(config.clone())
            .run(splits.clone(), count_mapper(), sum_reducer())
            .unwrap();
        let dist = run_distributed_with_threads(
            &config,
            &DistConfig::default()
                .with_workers(3)
                .with_transport(Transport::Tcp)
                .with_shuffle_mem_bytes(Some(0)),
            splits,
            count_mapper(),
            sum_reducer(),
        )
        .unwrap();
        assert_same_outputs(&local, &dist);
        for c in [
            Counter::ShuffleBytes,
            Counter::FaultsInjected,
            Counter::ChecksumFailures,
        ] {
            assert_eq!(
                local.counters.get(c),
                dist.counters.get(c),
                "counter {} must match under full spill",
                c.name()
            );
        }
        // Placement counters: nothing was ever resident, and retried
        // attempts republish, so spill volume can exceed shuffle bytes.
        assert_eq!(dist.counters.get(Counter::ShuffleMemHighWater), 0);
        assert!(
            dist.counters.get(Counter::ShuffleSpilledBytes)
                >= dist.counters.get(Counter::ShuffleBytes)
        );
        assert!(dist.counters.get(Counter::ShuffleSpillReads) > 0);
    }

    #[test]
    fn wire_lz_fault_storm_is_byte_identical_and_saves_wire_bytes() {
        use crate::dist::WireCodec;
        // Same storm as the uds test, but with wire compression on and
        // a tight memory budget so compressed frames also cross the
        // spill path. Outputs and every job-semantics counter must be
        // byte-identical to the identity-codec run; only the new
        // wire/codec telemetry may differ.
        let faults =
            FaultConfig::parse("seed=42,map=0.4,reduce=0.3,corrupt=0.3,slow=0.1,slow_ms=1,cap=2")
                .unwrap();
        let config = JobConfig::default()
            .with_reducers(3)
            .with_slots(4, 2)
            .with_retries(4)
            .with_retry_backoff(Duration::from_micros(10))
            .with_faults(FaultPlan::new(faults));
        let splits = word_splits(5, 32);
        let identity = run_distributed_with_threads(
            &config,
            &DistConfig::default()
                .with_workers(3)
                .with_transport(Transport::Tcp),
            splits.clone(),
            count_mapper(),
            sum_reducer(),
        )
        .unwrap();
        for budget in [None, Some(0), Some(512)] {
            let lz = run_distributed_with_threads(
                &config,
                &DistConfig::default()
                    .with_workers(3)
                    .with_transport(Transport::Tcp)
                    .with_shuffle_mem_bytes(budget)
                    .with_wire_codec(WireCodec::Lz),
                splits.clone(),
                count_mapper(),
                sum_reducer(),
            )
            .unwrap();
            assert_same_outputs(&identity, &lz);
            for c in [
                Counter::MapOutputRecords,
                Counter::ReduceOutputRecords,
                Counter::ShuffleBytes,
                Counter::MapOutputMaterializedBytes,
                Counter::FaultsInjected,
                Counter::ChecksumFailures,
            ] {
                assert_eq!(
                    identity.counters.get(c),
                    lz.counters.get(c),
                    "counter {} must not depend on the wire codec (budget {budget:?})",
                    c.name()
                );
            }
            assert!(
                lz.counters.get(Counter::ShuffleWireBytesSaved) > 0,
                "word-count segments compress, so the wire must shrink (budget {budget:?})"
            );
            assert!(lz.counters.get(Counter::LzCompressNanos) > 0);
            assert!(lz.counters.get(Counter::LzDecompressNanos) > 0);
            assert!(
                lz.counters.get(Counter::ShuffleWireBytesSaved)
                    < lz.counters.get(Counter::ShuffleBytes)
                        + lz.counters.get(Counter::TaskRetries)
                            * lz.counters.get(Counter::ShuffleBytes),
                "saved bytes are bounded by logical volume times fetch attempts"
            );
        }
        assert_eq!(identity.counters.get(Counter::ShuffleWireBytesSaved), 0);
        assert_eq!(identity.counters.get(Counter::LzCompressNanos), 0);
    }

    #[test]
    fn exhausted_retries_fail_the_distributed_job() {
        // reduce=1.0 fails attempt 0 of every reduce; with no retry
        // budget the first injected failure must fail the whole job.
        let faults = FaultConfig::parse("seed=7,reduce=1.0").unwrap();
        let config = JobConfig::default()
            .with_reducers(2)
            .with_retry_backoff(Duration::from_micros(1))
            .with_faults(FaultPlan::new(faults));
        let err = match run_distributed_with_threads(
            &config,
            &DistConfig::default()
                .with_workers(2)
                .with_transport(Transport::Tcp),
            word_splits(3, 16),
            count_mapper(),
            sum_reducer(),
        ) {
            Ok(_) => panic!("job must fail once the retry budget is exhausted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("injected reduce fault"), "{err}");
    }
}

//! Worker-process main loop: connect to the coordinator, pull task
//! assignments, run map/reduce attempts with the same fault gate and
//! attempt-local counter discipline as the in-process runner, and
//! stream results back under credit-based flow control.

use super::net::{Stream, Transport};
use super::wire::{expect_credit, read_msg, write_msg, Msg, CAP_LZ};
use crate::counters::{Counter, Counters};
use crate::error::MrError;
use crate::record::{InputSplit, Mapper, Reducer};
use crate::runner;
use crate::JobConfig;
use scihadoop_compress::lz;
use std::time::{Duration, Instant};

/// How long a worker keeps retrying its initial connect. The listener
/// is bound before any worker is spawned, so this only absorbs
/// transient refusals under load.
const CONNECT_DEADLINE: Duration = Duration::from_secs(10);

/// Convert a panicking task body into a retryable error, exactly like
/// the local runner's `run_attempt`: the worker process must survive a
/// panicking user function so its other queued tasks (and the socket)
/// are not lost with it.
fn catch<T>(
    task: usize,
    attempt: u32,
    f: impl FnOnce() -> Result<T, MrError>,
) -> Result<T, MrError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(MrError::TaskFailed(format!(
                "task {task} attempt {attempt} panicked: {msg}"
            )))
        }
    }
}

fn task_failed_msg(
    task: usize,
    attempt: u32,
    reduce: bool,
    err: &MrError,
    harness: &Counters,
) -> Msg {
    Msg::TaskFailed {
        task: task as u32,
        attempt,
        reduce,
        checksum: err.is_checksum(),
        error: err.to_string(),
        harness: harness.snapshot(),
    }
}

/// Run one worker against the coordinator at `addr` until it sends
/// `Shutdown` (or the connection fails). Blocks the calling thread for
/// the whole job; `main` wrappers should turn the result into an exit
/// code.
pub fn run_worker(
    transport: Transport,
    addr: &str,
    worker: u32,
    config: &JobConfig,
    mapper: &dyn Mapper,
    reducer: &dyn Reducer,
) -> Result<(), MrError> {
    let mut stream = Stream::connect_retry(transport, addr, CONNECT_DEADLINE)?;
    write_msg(
        &mut stream,
        &Msg::Hello {
            worker,
            wire_caps: CAP_LZ,
        },
    )?;
    loop {
        write_msg(&mut stream, &Msg::TaskRequest)?;
        match read_msg(&mut stream)? {
            Msg::MapTask {
                task,
                attempt,
                credits,
                split,
            } => run_map_attempt(
                &mut stream,
                config,
                task as usize,
                attempt,
                credits,
                &split,
                mapper,
            )?,
            Msg::ReduceTask { task, attempt } => {
                if run_reduce_attempt(&mut stream, config, task as usize, attempt, reducer)? {
                    return Ok(()); // shutdown arrived mid-fetch (job aborted)
                }
            }
            Msg::Shutdown => return Ok(()),
            other => {
                return Err(MrError::Net(format!(
                    "worker {worker}: unexpected {} while awaiting an assignment",
                    other.name()
                )))
            }
        }
    }
}

/// One map attempt: fault gate, user map function, then push each
/// partition's segment to the shuffle service. Pushes spend credits
/// granted in the assignment; the coordinator returns one credit per
/// received segment, and the worker drains its window back to full
/// before `MapDone` so no credit frame is left in flight between tasks.
fn run_map_attempt(
    stream: &mut Stream,
    config: &JobConfig,
    task: usize,
    attempt: u32,
    window: u32,
    split: &InputSplit,
    mapper: &dyn Mapper,
) -> Result<(), MrError> {
    let harness = Counters::new();
    let local = Counters::new();
    let outcome =
        runner::fault_gate(config, &harness, task as u64, attempt, false).and_then(|()| {
            catch(task, attempt, || {
                runner::run_map_task(config, task, split, mapper, &local)
            })
        });
    let segments = match outcome {
        Ok(segments) => segments,
        Err(e) => {
            write_msg(stream, &task_failed_msg(task, attempt, false, &e, &harness))?;
            return Ok(());
        }
    };
    let mut credits = window;
    for (partition, seg) in segments {
        if credits == 0 {
            expect_credit(stream)?;
            credits += 1;
        }
        write_msg(
            stream,
            &Msg::MapSegment {
                partition: partition as u32,
                data: seg.data,
            },
        )?;
        credits -= 1;
    }
    while credits < window {
        expect_credit(stream)?;
        credits += 1;
    }
    write_msg(
        stream,
        &Msg::MapDone {
            task: task as u32,
            attempt,
            local: local.snapshot(),
            harness: harness.snapshot(),
        },
    )?;
    Ok(())
}

/// One reduce attempt: fault gate (before any fetch, so an injected
/// reduce error costs no shuffle traffic — matching the local path,
/// where `fault_gate` runs before segments are taken), then fetch all
/// segments for the partition, then merge/group/reduce. Returns `true`
/// if the coordinator shut the job down mid-fetch.
///
/// Wire corruption is the coordinator's job: `run_reduce_task` is
/// called with `apply_corruption = false` because the bytes in `segs`
/// were already corrupted in transit at the same (task, attempt, index)
/// coordinates the local path uses.
fn run_reduce_attempt(
    stream: &mut Stream,
    config: &JobConfig,
    task: usize,
    attempt: u32,
    reducer: &dyn Reducer,
) -> Result<bool, MrError> {
    let harness = Counters::new();
    if let Err(e) = runner::fault_gate(config, &harness, task as u64, attempt, true) {
        write_msg(stream, &task_failed_msg(task, attempt, true, &e, &harness))?;
        return Ok(false);
    }
    write_msg(
        stream,
        &Msg::FetchStart {
            credits: super::DEFAULT_FETCH_CREDITS,
        },
    )?;
    let mut segs: Vec<Vec<u8>> = Vec::new();
    let mut current: Vec<u8> = Vec::new();
    let mut decompress_nanos = 0u64;
    // A wire-compressed segment that fails to inflate is real
    // corruption (the lz frame's CRC over the wire bytes caught it).
    // The fetch stream is drained to completion first — bailing
    // mid-stream would desync the credit protocol — then the attempt
    // fails as a checksum error, retryable like any detected corruption.
    let mut fetch_err: Option<MrError> = None;
    loop {
        match read_msg(stream)? {
            Msg::SegChunk {
                index,
                last,
                comp,
                orig_len,
                data,
            } => {
                if index as usize != segs.len() {
                    return Err(MrError::Net(format!(
                        "reduce {task}: segment chunk for index {index} but {} segments assembled",
                        segs.len()
                    )));
                }
                current.extend_from_slice(&data);
                if last {
                    let assembled = std::mem::take(&mut current);
                    let seg = if comp {
                        let t0 = Instant::now();
                        let inflated = lz::decompress(&assembled);
                        decompress_nanos += t0.elapsed().as_nanos() as u64;
                        match inflated {
                            Ok(logical) if logical.len() == orig_len as usize => logical,
                            Ok(logical) => {
                                fetch_err.get_or_insert(MrError::Checksum(format!(
                                    "reduce {task}: wire segment {index} inflated to {} bytes, \
                                     header says {orig_len}",
                                    logical.len()
                                )));
                                logical
                            }
                            Err(e) => {
                                fetch_err.get_or_insert(MrError::Checksum(format!(
                                    "reduce {task}: wire segment {index} corrupt: {e}"
                                )));
                                Vec::new()
                            }
                        }
                    } else {
                        assembled
                    };
                    segs.push(seg);
                }
                write_msg(stream, &Msg::Credit)?;
            }
            Msg::SegmentsDone { count } => {
                if count as usize != segs.len() || !current.is_empty() {
                    return Err(MrError::Net(format!(
                        "reduce {task}: coordinator announced {count} segments, assembled {} \
                         ({} stray bytes)",
                        segs.len(),
                        current.len()
                    )));
                }
                break;
            }
            Msg::Shutdown => return Ok(true),
            other => {
                return Err(MrError::Net(format!(
                    "reduce {task}: unexpected {} during segment fetch",
                    other.name()
                )))
            }
        }
    }
    if let Some(e) = fetch_err {
        write_msg(stream, &task_failed_msg(task, attempt, true, &e, &harness))?;
        return Ok(false);
    }
    let local = Counters::new();
    if decompress_nanos > 0 {
        local.add(Counter::LzDecompressNanos, decompress_nanos);
    }
    let outcome = catch(task, attempt, || {
        runner::run_reduce_task(config, task, &segs, reducer, &local, attempt, false)
    });
    match outcome {
        Ok(outputs) => write_msg(
            stream,
            &Msg::ReduceDone {
                task: task as u32,
                attempt,
                local: local.snapshot(),
                harness: harness.snapshot(),
                outputs,
            },
        )?,
        Err(e) => write_msg(stream, &task_failed_msg(task, attempt, true, &e, &harness))?,
    }
    Ok(false)
}

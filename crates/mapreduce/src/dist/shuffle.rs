//! In-coordinator shuffle store: completed map outputs, indexed by
//! (partition, map task), handed to reduce-serving threads as each map
//! task lands.
//!
//! The store preserves the engine's canonical segment order — for a
//! partition, segments are always consumed in map-task-id order — so a
//! reducer fetched over the wire sees byte-for-byte the same segment
//! sequence as the local thread-pool path builds in memory. That is
//! what lets per-index wire corruption from a [`crate::fault`] plan hit
//! the same bytes in both runtimes.
//!
//! Segments are retained until the job ends (not freed after a first
//! fetch) so a retried reduce attempt can re-fetch the same bytes.

use crate::error::MrError;
use std::sync::{Arc, Condvar, Mutex};

struct StoreState {
    /// `segs[partition][map_task]` — `None` until published, and still
    /// `None` at the end for map tasks that produced no data for the
    /// partition.
    segs: Vec<Vec<Option<Arc<Vec<u8>>>>>,
    /// Whether each map task's outputs have been committed.
    done: Vec<bool>,
    aborted: bool,
}

/// Shared shuffle state between the coordinator's connection threads.
pub(crate) struct ShuffleStore {
    state: Mutex<StoreState>,
    ready: Condvar,
}

impl ShuffleStore {
    pub(crate) fn new(num_partitions: usize, num_maps: usize) -> ShuffleStore {
        ShuffleStore {
            state: Mutex::new(StoreState {
                segs: vec![vec![None; num_maps]; num_partitions],
                done: vec![false; num_maps],
                aborted: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Commit one map task's segments atomically. Outputs arrive as
    /// `(partition, bytes)` pairs; the task is only marked done once
    /// all of them are stored, so a fetcher never observes a partial
    /// set. Republishing (a retried map attempt whose predecessor was
    /// counted failed) replaces the previous attempt's segments.
    pub(crate) fn publish(&self, map_task: usize, outputs: Vec<(usize, Vec<u8>)>) {
        let mut state = self.lock_state();
        for slot in state.segs.iter_mut() {
            slot[map_task] = None;
        }
        for (partition, data) in outputs {
            state.segs[partition][map_task] = Some(Arc::new(data));
        }
        state.done[map_task] = true;
        self.ready.notify_all();
    }

    /// Block until `map_task`'s outputs are committed, then return its
    /// segment for `partition` (`None` if the task emitted nothing for
    /// that partition). Errors out if the job aborts while waiting.
    pub(crate) fn segment_when_ready(
        &self,
        partition: usize,
        map_task: usize,
    ) -> Result<Option<Arc<Vec<u8>>>, MrError> {
        let mut state = self.lock_state();
        loop {
            if state.aborted {
                return Err(MrError::Net("job aborted while awaiting map output".into()));
            }
            if state.done[map_task] {
                return Ok(state.segs[partition][map_task].clone());
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Unblock all waiters with an error; called when the job fails.
    pub(crate) fn abort(&self) {
        self.lock_state().aborted = true;
        self.ready.notify_all();
    }

    /// Total bytes across all committed segments (the distributed
    /// run's `ShuffleBytes`).
    pub(crate) fn total_bytes(&self) -> u64 {
        let state = self.lock_state();
        state
            .segs
            .iter()
            .flat_map(|slot| slot.iter())
            .filter_map(|seg| seg.as_ref())
            .map(|seg| seg.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_blocks_until_publish_and_preserves_task_order() {
        let store = Arc::new(ShuffleStore::new(2, 3));
        let fetcher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for task in 0..3 {
                    if let Some(seg) = store.segment_when_ready(1, task).unwrap() {
                        got.push(seg.as_ref().clone());
                    }
                }
                got
            })
        };
        // Publish out of order; the fetcher still consumes in task order.
        store.publish(1, vec![(1, b"one".to_vec())]);
        store.publish(2, vec![(0, b"zero-only".to_vec())]);
        store.publish(0, vec![(0, b"z".to_vec()), (1, b"nought".to_vec())]);
        let got = fetcher.join().unwrap();
        assert_eq!(got, vec![b"nought".to_vec(), b"one".to_vec()]);
        assert_eq!(store.total_bytes(), 3 + 9 + 1 + 6);
    }

    #[test]
    fn republish_replaces_a_failed_attempts_segments() {
        let store = ShuffleStore::new(1, 1);
        store.publish(0, vec![(0, b"bad".to_vec())]);
        store.publish(0, vec![(0, b"good".to_vec())]);
        let seg = store.segment_when_ready(0, 0).unwrap().unwrap();
        assert_eq!(seg.as_ref(), b"good");
        assert_eq!(store.total_bytes(), 4);
    }

    #[test]
    fn abort_wakes_blocked_fetchers_with_an_error() {
        let store = Arc::new(ShuffleStore::new(1, 1));
        let fetcher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.segment_when_ready(0, 0))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.abort();
        let err = fetcher.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("aborted"), "{err}");
    }
}
